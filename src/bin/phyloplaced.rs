//! `phyloplaced` — the hardened placement daemon.
//!
//! ```text
//! phyloplaced --tree REF.nwk --ref-msa REF.fasta \
//!     [--aa] [--maxmem SIZE|auto] [--gamma ALPHA|--no-gamma] \
//!     [--chunk N] [--threads N] [--strategy ...] [--no-lookup] \
//!     [--stdio | --unix SOCKET | --tcp HOST:PORT] \
//!     [--queue-cap N] [--batch-max N]
//! ```
//!
//! Loads the reference once (tree, model, CLV slot arena, preplacement
//! lookup), then serves newline-delimited JSON placement requests.
//! Responses are byte-identical to `phyloplace place` over the same
//! inputs.
//!
//! Exit codes: `0` clean drain (SIGTERM / first SIGINT / stdin EOF —
//! every in-flight request finishes with a valid response first), `1`
//! runtime error, `2` usage or input error, `130` aborted by a second
//! SIGINT during the drain.

use phylo_shard::{Phase, Shutdown, EXIT_ABORTED};
use std::sync::atomic::{AtomicU32, Ordering};

/// Incremented (only) by the signal handler; the watchdog mirrors it
/// into the [`Shutdown`] machine. First signal drains; second aborts.
static SIGNALS: AtomicU32 = AtomicU32::new(0);

extern "C" fn on_signal(_signum: i32) {
    SIGNALS.fetch_add(1, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn spawn_signal_watchdog(shutdown: Shutdown) {
    std::thread::spawn(move || loop {
        if shutdown.record_signals(SIGNALS.load(Ordering::SeqCst)) == Phase::Aborting {
            std::process::exit(EXIT_ABORTED);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    });
}

fn main() {
    if let Err(msg) = phylo_faults::arm_from_env() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match phyloplace::serve_cli::parse_serve(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    install_signal_handlers();
    let shutdown = Shutdown::new();
    spawn_signal_watchdog(shutdown.clone());
    if let Err(e) = phyloplace::serve_cli::run_serve(&opts, &shutdown) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
    // run_serve returning Ok means the drain completed: every admitted
    // request got its response. That is success, exit 0 — unlike
    // `place`, where an interrupt leaves work undone (exit 3).
}
