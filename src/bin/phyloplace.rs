//! The `phyloplace` command-line tool.
//!
//! ```text
//! phyloplace place --tree ref.nwk --ref-msa ref.fasta --queries q.fasta \
//!     [--aa] [--maxmem MIB|auto] [--gamma ALPHA|--no-gamma] \
//!     [--chunk N] [--threads N] [--out out.jplace]
//! ```

use phyloplace::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, out_path) = match cli::parse_cli(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match cli::run_placement(&opts) {
        Ok((jplace, summary)) => {
            eprintln!("{summary}");
            match out_path {
                Some(path) => {
                    // Atomic write: a crash mid-write must not leave a
                    // truncated jplace behind.
                    let p = std::path::Path::new(&path);
                    if let Err(e) = phyloplace::place::result::write_jplace_atomic(p, &jplace) {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {path}");
                }
                None => print!("{jplace}"),
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
