//! The `phyloplace` command-line tool.
//!
//! ```text
//! phyloplace place --tree ref.nwk --ref-msa ref.fasta --queries q.fasta \
//!     [--aa] [--maxmem SIZE[K|M|G|T]|auto] [--gamma ALPHA|--no-gamma] \
//!     [--chunk N] [--threads N] [--out out.jplace] \
//!     [--strategy cost|lru|mru|fifo|random|cost-lru] [--slot-trace TRACE.txt] \
//!     [--checkpoint DIR | --resume DIR] [--deadline SECS]
//! phyloplace replay --trace TRACE.txt [--slots N,M,...] [--policies LIST|all] \
//!     [--threshold PCT] [--verify METRICS.json]
//! ```
//!
//! Exit codes: `0` success, `1` runtime error, `2` usage error, `3`
//! interrupted (SIGINT/SIGTERM or `--deadline`) — the partial jplace
//! was still written and the checkpoint journal holds every finished
//! chunk, so a `--resume` run completes the work.

use phylo_amc::CancelToken;
use phyloplace::cli;
use std::sync::atomic::{AtomicBool, Ordering};

/// Exit status for a run cancelled by signal or deadline.
const EXIT_INTERRUPTED: i32 = 3;

/// Set (only) by the signal handler; a watchdog thread converts it into
/// a cancel-token arm. Storing a flag is the entire handler body — the
/// async-signal-safe subset.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers via the libc `signal(2)` that std
/// already links — no new dependency. Failure to install (exotic
/// platforms) degrades to default signal behavior, not an error.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("replay") {
        // The replay lab is offline: no signal plumbing, no placement.
        let opts = match phyloplace::replay_cli::parse_replay(&args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        match phyloplace::replay_cli::run_replay(&opts) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    let (opts, out_path) = match cli::parse_cli(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    install_signal_handlers();
    let cancel = CancelToken::new();
    {
        // Watchdog: polls the handler's flag and arms the cooperative
        // token. Detached on purpose — it dies with the process.
        let cancel = cancel.clone();
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                cancel.cancel();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    match cli::run_placement_with(&opts, cancel) {
        Ok(out) => {
            eprintln!("{}", out.summary);
            match out_path {
                Some(path) => {
                    // Atomic, durable write: a crash mid-write must not
                    // leave a truncated jplace behind, and the rename
                    // must survive power loss (file + dir fsync).
                    let p = std::path::Path::new(&path);
                    if let Err(e) = phyloplace::place::result::write_jplace_atomic(p, &out.jplace) {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {path}{}", if out.completed { "" } else { " (partial)" });
                }
                None => print!("{}", out.jplace),
            }
            if !out.completed {
                std::process::exit(EXIT_INTERRUPTED);
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
