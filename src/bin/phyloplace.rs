//! The `phyloplace` command-line tool.
//!
//! ```text
//! phyloplace place --tree ref.nwk --ref-msa ref.fasta --queries q.fasta \
//!     [--aa] [--maxmem SIZE[K|M|G|T]|auto] [--gamma ALPHA|--no-gamma] \
//!     [--chunk N] [--threads N] [--out out.jplace] \
//!     [--strategy cost|lru|mru|fifo|random|cost-lru] [--slot-trace TRACE.txt] \
//!     [--checkpoint DIR | --resume DIR] [--deadline SECS] [--heartbeat]
//! phyloplace shard --tree ref.nwk --ref-msa ref.fasta --queries q.fasta \
//!     --out out.jplace --workdir DIR --shards N [placement flags...] \
//!     [--workers N] [--heartbeat-timeout SECS] [--straggler-factor F] \
//!     [--max-shard-retries N] [--deadline SECS] [--metrics-json M.json]
//! phyloplace replay --trace TRACE.txt [--slots N,M,...] [--policies LIST|all] \
//!     [--threshold PCT] [--verify METRICS.json]
//! ```
//!
//! Exit codes: `0` success, `1` runtime error, `2` usage/input error, `3`
//! interrupted (SIGINT/SIGTERM or `--deadline` — the checkpoint journal
//! holds every finished chunk, so a `--resume` run completes the work),
//! `130` aborted by a second SIGINT during a graceful drain.

use phylo_amc::CancelToken;
use phylo_shard::{Phase, Shutdown, EXIT_ABORTED, EXIT_INTERRUPTED};
use phyloplace::cli;
use std::sync::atomic::{AtomicU32, Ordering};

/// Incremented (only) by the signal handler; a watchdog thread mirrors
/// it into the [`Shutdown`] state machine. One signal drains
/// gracefully; a second abandons the drain (exit 130). Counting is the
/// entire handler body — the async-signal-safe subset.
static SIGNALS: AtomicU32 = AtomicU32::new(0);

extern "C" fn on_signal(_signum: i32) {
    SIGNALS.fetch_add(1, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers via the libc `signal(2)` that std
/// already links — no new dependency. Failure to install (exotic
/// platforms) degrades to default signal behavior, not an error.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Spawns the detached watchdog that forwards handler-counted signals
/// into `shutdown`. At the second signal the process exits 130 on the
/// spot: the user asked twice, so no more graceful anything. Because
/// this exit bypasses the supervision loop's own kill paths, any live
/// worker subprocesses are SIGKILLed from the pid registry first —
/// a hung fleet must not outlive an aborted coordinator.
fn spawn_signal_watchdog(shutdown: Shutdown) {
    std::thread::spawn(move || loop {
        if shutdown.record_signals(SIGNALS.load(Ordering::SeqCst)) == Phase::Aborting {
            phylo_shard::kill_registered_workers();
            std::process::exit(EXIT_ABORTED);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    });
}

fn main() {
    // A malformed fault spec means the requested chaos experiment is
    // not the one that would run — refuse rather than half-arm.
    if let Err(msg) = phylo_faults::arm_from_env() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("replay") {
        // The replay lab is offline: no signal plumbing, no placement.
        let opts = match phyloplace::replay_cli::parse_replay(&args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        match phyloplace::replay_cli::run_replay(&opts) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    if args.first().map(String::as_str) == Some("serve") {
        // Alias for the `phyloplaced` daemon binary: same flags, same
        // exit-code contract (a completed drain is success, exit 0).
        let opts = match phyloplace::serve_cli::parse_serve(&args[1..]) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        install_signal_handlers();
        let shutdown = Shutdown::new();
        spawn_signal_watchdog(shutdown.clone());
        if let Err(e) = phyloplace::serve_cli::run_serve(&opts, &shutdown) {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
        return;
    }
    if args.first().map(String::as_str) == Some("shard") {
        let opts = match phyloplace::shard_cli::parse_shard(&args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        install_signal_handlers();
        let shutdown = Shutdown::new();
        spawn_signal_watchdog(shutdown.clone());
        match phyloplace::shard_cli::run_shard(&opts, &shutdown) {
            Ok(summary) => {
                eprintln!("{summary}");
                eprintln!("wrote {}", opts.out_path);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        }
        return;
    }
    let (opts, out_path) = match cli::parse_cli(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    install_signal_handlers();
    let cancel = CancelToken::new();
    // The shutdown machine shares the run's cancel token: the first
    // signal arms cooperative cancellation (the run drains to a durable
    // chunk boundary and exits 3), the second aborts at exit 130.
    spawn_signal_watchdog(Shutdown::with_cancel(cancel.clone()));
    match cli::run_placement_with(&opts, cancel) {
        Ok(out) => {
            eprintln!("{}", out.summary);
            match out_path {
                Some(path) => {
                    // Atomic, durable write: a crash mid-write must not
                    // leave a truncated jplace behind, and the rename
                    // must survive power loss (file + dir fsync).
                    let p = std::path::Path::new(&path);
                    if let Err(e) = phyloplace::place::result::write_jplace_atomic(p, &out.jplace) {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {path}{}", if out.completed { "" } else { " (partial)" });
                }
                None => print!("{}", out.jplace),
            }
            if !out.completed {
                std::process::exit(EXIT_INTERRUPTED);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
