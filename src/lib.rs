//! # phyloplace
//!
//! Memory-managed maximum-likelihood phylogenetic placement — a complete
//! Rust reproduction of *Barbera & Stamatakis, "Efficient Memory
//! Management in Likelihood-based Phylogenetic Placement" (IPPS 2021)*.
//!
//! The crate re-exports the workspace's public API in one namespace:
//!
//! * [`tree`] — unrooted binary phylogenies, Newick I/O, traversal
//!   planning, random tree generators;
//! * [`seq`] — alphabets, sequences, alignments, FASTA, site-pattern
//!   compression;
//! * [`models`] — substitution models (GTR family, amino acid),
//!   eigendecomposition, discrete-Γ rates;
//! * [`kernel`] — CLV compute kernels with numerical scaling;
//! * [`amc`] — **the paper's contribution**: the Active Management of
//!   CLVs (slot manager, replacement strategies, pinning, the
//!   `⌈log₂ n⌉ + 2` constrained Felsenstein traversal, memory budgeting);
//! * [`engine`] — the likelihood engine tying the above together;
//! * [`place`] — the EPA-NG-style placement pipeline (preplacement
//!   lookup, chunks, branch blocks, `--maxmem`);
//! * [`baseline`] — the pplacer-style comparator with file-backed CLVs;
//! * [`datasets`] — synthetic analogues of the paper's evaluation data.
//!
//! ## Quickstart
//!
//! ```
//! use phyloplace::prelude::*;
//!
//! // A tiny synthetic dataset (reference tree + alignment + queries).
//! let spec = phyloplace::datasets::neotrop(Scale::Ci);
//! let ds = phyloplace::datasets::generate(&spec);
//!
//! // Compress the reference and assemble the likelihood engine.
//! let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
//! let ctx = ReferenceContext::new(
//!     ds.tree.clone(),
//!     ds.model.clone(),
//!     ds.spec.alphabet.alphabet(),
//!     &patterns,
//! )
//! .unwrap();
//!
//! // Place all queries under a memory budget of 8 MiB.
//! let cfg = EpaConfig::default().with_maxmem_mib(8.0);
//! let placer = Placer::new(ctx, patterns.site_to_pattern().to_vec(), cfg).unwrap();
//! let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
//! let (results, report) = placer.place(&batch).unwrap();
//!
//! assert_eq!(results.len(), ds.queries.len());
//! println!("peak memory: {} B, slots: {}", report.peak_memory, report.slots);
//! ```

pub mod cli;
pub mod replay_cli;
pub mod serve_cli;
pub mod shard_cli;

pub use epa_place as place;
pub use phylo_amc as amc;
pub use phylo_datasets as datasets;
pub use phylo_engine as engine;
pub use phylo_journal as journal;
pub use phylo_kernel as kernel;
pub use phylo_models as models;
pub use phylo_replay as replay;
pub use phylo_seq as seq;
pub use phylo_serve as serve;
pub use phylo_shard as shard;
pub use phylo_tree as tree;
pub use pplacer_mmap as baseline;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use epa_place::{
        EpaConfig, PlaceOutcome, PlacementResult, Placer, QueryBatch, RunControl, RunReport,
    };
    pub use phylo_amc::{CancelToken, SlotManager, StrategyKind};
    pub use phylo_datasets::{generate as generate_dataset, Scale};
    pub use phylo_engine::{ManagedStore, ReferenceContext};
    pub use phylo_models::{DiscreteGamma, SubstModel};
    pub use phylo_seq::{Msa, Sequence};
    pub use phylo_tree::{Tree, TreeBuilder};
}
