//! The `phyloplace shard` coordinator CLI: sharded, supervised,
//! fault-tolerant placement in one command.
//!
//! ```text
//! phyloplace shard --tree REF.nwk --ref-msa REF.fasta --queries Q.fasta \
//!     --out OUT.jplace --workdir DIR --shards N [placement flags...] \
//!     [--workers N] [--heartbeat-timeout SECS] [--straggler-factor F] \
//!     [--max-shard-retries N] [--deadline SECS] [--metrics-json M.json]
//! ```
//!
//! The coordinator splits the queries, launches one checkpoint-enabled
//! worker per shard, supervises them (crash/hang/straggler detection,
//! backoff re-queue with journal resume), and merges the per-shard
//! jplace outputs into `--out` — byte-identical to a single-process
//! run. Rerunning with the same `--workdir` resumes after a
//! coordinator crash; a workdir whose inputs no longer match is
//! refused (exit 2).

use phylo_shard::{run_coordinator, CoordinatorConfig, ShardConfig, ShardError, Shutdown};
use std::time::Duration;

/// Parsed `phyloplace shard` options.
#[derive(Debug, Clone)]
pub struct ShardCliOptions {
    /// Reference tree path.
    pub tree_path: String,
    /// Reference MSA path.
    pub ref_path: String,
    /// Unsplit query FASTA path.
    pub query_path: String,
    /// Merged jplace destination (required: stdout belongs to nobody in
    /// a multi-process run).
    pub out_path: String,
    /// Coordinator state directory.
    pub workdir: String,
    /// Requested shard count (clamped to the query count).
    pub n_shards: usize,
    /// Placement flags forwarded verbatim to every worker.
    pub passthrough: Vec<String>,
    /// Concurrent workers (0 = one per shard).
    pub max_workers: usize,
    /// Seconds of worker silence before a hang kill.
    pub heartbeat_timeout_secs: f64,
    /// Fleet-median rate divisor for straggler kills.
    pub straggler_factor: f64,
    /// Re-queues allowed per shard.
    pub max_retries: u32,
    /// Wall-clock budget for the whole sharded run.
    pub deadline_secs: Option<f64>,
    /// Write fleet metrics as JSON here.
    pub metrics_json: Option<String>,
}

/// Parses `phyloplace shard` arguments (`args[0]` must be `"shard"`).
pub fn parse_shard(args: &[String]) -> Result<ShardCliOptions, String> {
    const USAGE: &str =
        "usage: phyloplace shard --tree REF.nwk --ref-msa REF.fasta --queries Q.fasta \
  --out OUT.jplace --workdir DIR --shards N \
  [--aa] [--maxmem SIZE[K|M|G|T] | --maxmem auto] [--gamma ALPHA | --no-gamma] \
  [--chunk N] [--threads N] [--kernel-tier auto|reference|fixed|simd] \
  [--strategy cost|lru|mru|fifo|random|cost-lru] [--no-lookup] \
  [--workers N] [--heartbeat-timeout SECS] [--straggler-factor F] \
  [--max-shard-retries N] [--deadline SECS] [--metrics-json METRICS.json]";
    if args.first().map(String::as_str) != Some("shard") {
        return Err(USAGE.to_string());
    }
    let mut tree_path = None;
    let mut ref_path = None;
    let mut query_path = None;
    let mut out_path = None;
    let mut workdir = None;
    let mut n_shards = None;
    let mut passthrough: Vec<String> = Vec::new();
    let mut max_workers = 0usize;
    let mut heartbeat_timeout_secs = 30.0f64;
    let mut straggler_factor = 8.0f64;
    let mut max_retries = 3u32;
    let mut deadline_secs = None;
    let mut metrics_json = None;
    let mut it = args.iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--tree" => tree_path = Some(value()?),
            "--ref-msa" => ref_path = Some(value()?),
            "--queries" => query_path = Some(value()?),
            "--out" => out_path = Some(value()?),
            "--workdir" => workdir = Some(value()?),
            "--shards" => {
                let v = value()?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards {v:?}\n{USAGE}"))?;
                if n == 0 {
                    return Err(format!("bad --shards {v:?}: need at least one\n{USAGE}"));
                }
                n_shards = Some(n);
            }
            // Worker passthrough: validated here so a typo fails the
            // coordinator (exit 2), not every worker (N failures).
            "--aa" | "--no-gamma" | "--no-lookup" => passthrough.push(flag.clone()),
            "--maxmem" => {
                let v = value()?;
                crate::cli::parse_maxmem(&v).map_err(|e| format!("{e}\n{USAGE}"))?;
                passthrough.extend(["--maxmem".to_string(), v]);
            }
            "--gamma" => {
                let v = value()?;
                v.parse::<f64>().map_err(|_| format!("bad --gamma {v:?}\n{USAGE}"))?;
                passthrough.extend(["--gamma".to_string(), v]);
            }
            "--chunk" | "--threads" => {
                let v = value()?;
                v.parse::<usize>().map_err(|_| format!("bad {flag} {v:?}\n{USAGE}"))?;
                passthrough.extend([flag.clone(), v]);
            }
            "--kernel-tier" => {
                let v = value()?;
                phylo_kernel::TierChoice::parse(&v)
                    .ok_or_else(|| format!("bad --kernel-tier {v:?}\n{USAGE}"))?;
                passthrough.extend(["--kernel-tier".to_string(), v]);
            }
            "--strategy" => {
                let v = value()?;
                phylo_amc::StrategyKind::parse(&v)
                    .ok_or_else(|| format!("bad --strategy {v:?}\n{USAGE}"))?;
                passthrough.extend(["--strategy".to_string(), v]);
            }
            "--workers" => {
                let v = value()?;
                max_workers = v.parse().map_err(|_| format!("bad --workers {v:?}\n{USAGE}"))?;
            }
            "--heartbeat-timeout" => {
                let v = value()?;
                let secs: f64 =
                    v.parse().map_err(|_| format!("bad --heartbeat-timeout {v:?}\n{USAGE}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("bad --heartbeat-timeout {v:?}: must be > 0\n{USAGE}"));
                }
                heartbeat_timeout_secs = secs;
            }
            "--straggler-factor" => {
                let v = value()?;
                let f: f64 =
                    v.parse().map_err(|_| format!("bad --straggler-factor {v:?}\n{USAGE}"))?;
                if !f.is_finite() || f <= 1.0 {
                    return Err(format!(
                        "bad --straggler-factor {v:?}: must be > 1 (smaller is more \
                         trigger-happy)\n{USAGE}"
                    ));
                }
                straggler_factor = f;
            }
            "--max-shard-retries" => {
                let v = value()?;
                max_retries =
                    v.parse().map_err(|_| format!("bad --max-shard-retries {v:?}\n{USAGE}"))?;
            }
            "--deadline" => {
                let v = value()?;
                let secs: f64 = v.parse().map_err(|_| format!("bad --deadline {v:?}\n{USAGE}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("bad --deadline {v:?}: must be >= 0\n{USAGE}"));
                }
                deadline_secs = Some(secs);
            }
            "--metrics-json" => metrics_json = Some(value()?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let require = |v: Option<String>, what: &str| -> Result<String, String> {
        v.ok_or_else(|| format!("{what} is required\n{USAGE}"))
    };
    Ok(ShardCliOptions {
        tree_path: require(tree_path, "--tree")?,
        ref_path: require(ref_path, "--ref-msa")?,
        query_path: require(query_path, "--queries")?,
        out_path: require(out_path, "--out")?,
        workdir: require(workdir, "--workdir")?,
        n_shards: n_shards.ok_or_else(|| format!("--shards is required\n{USAGE}"))?,
        passthrough,
        max_workers,
        heartbeat_timeout_secs,
        straggler_factor,
        max_retries,
        deadline_secs,
        metrics_json,
    })
}

/// Runs a sharded placement and writes the merged jplace (and metrics).
/// Returns a one-line human-readable summary.
pub fn run_shard(opts: &ShardCliOptions, shutdown: &Shutdown) -> Result<String, ShardError> {
    // Deadline watchdog: arming the shutdown token moves the supervisor
    // to the Draining phase, which SIGTERMs workers so each writes its
    // durable prefix. Detached; dies with the process.
    if let Some(secs) = opts.deadline_secs {
        let cancel = shutdown.cancel_token();
        let deadline = std::time::Instant::now() + Duration::from_secs_f64(secs);
        std::thread::spawn(move || {
            while std::time::Instant::now() < deadline {
                if cancel.is_cancelled() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            cancel.cancel();
        });
    }
    let cfg = CoordinatorConfig {
        workdir: std::path::PathBuf::from(&opts.workdir),
        tree_path: opts.tree_path.clone(),
        ref_path: opts.ref_path.clone(),
        query_path: opts.query_path.clone(),
        worker_exe: std::env::current_exe()
            .map_err(|e| ShardError::Runtime(format!("cannot locate own binary: {e}")))?,
        passthrough: opts.passthrough.clone(),
        shard: ShardConfig {
            n_shards: opts.n_shards,
            max_workers: opts.max_workers,
            heartbeat_timeout: Duration::from_secs_f64(opts.heartbeat_timeout_secs),
            straggler_factor: opts.straggler_factor,
            max_retries: opts.max_retries,
            ..ShardConfig::default()
        },
    };
    let outcome = run_coordinator(&cfg, shutdown)?;
    crate::place::result::write_jplace_atomic(
        std::path::Path::new(&opts.out_path),
        &outcome.jplace,
    )
    .map_err(|e| ShardError::Runtime(format!("{}: {e}", opts.out_path)))?;
    if let Some(path) = &opts.metrics_json {
        // Authoritative fleet counters are injected from the report, so
        // the metrics file is meaningful even without the `obs` feature
        // (same pattern as the per-run metrics in `cli.rs`).
        let mut snap = phylo_obs::Snapshot::default();
        snap.set_counter("shard.launched", outcome.report.launched);
        snap.set_counter("shard.requeues", outcome.report.requeues);
        snap.set_counter("shard.crashes", outcome.report.crashes);
        snap.set_counter("shard.hangs", outcome.report.hangs);
        snap.set_counter("shard.stragglers", outcome.report.stragglers);
        snap.set_gauge("shard.n_shards", outcome.n_shards as i64);
        snap.set_gauge("shard.n_queries", outcome.n_queries as i64);
        std::fs::write(path, snap.to_json())
            .map_err(|e| ShardError::Runtime(format!("{path}: {e}")))?;
    }
    let trouble = if outcome.report.requeues > 0 {
        format!(
            " ({} re-queues: {} crashes, {} hangs, {} stragglers)",
            outcome.report.requeues,
            outcome.report.crashes,
            outcome.report.hangs,
            outcome.report.stragglers
        )
    } else {
        String::new()
    };
    Ok(format!(
        "placed {} queries across {} shards with {} worker launches{}",
        outcome.n_queries, outcome.n_shards, outcome.report.launched, trouble
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(extra: &[&str]) -> Vec<String> {
        let mut v: Vec<String> = [
            "shard",
            "--tree",
            "t.nwk",
            "--ref-msa",
            "r.fasta",
            "--queries",
            "q.fasta",
            "--out",
            "o.jplace",
            "--workdir",
            "wd",
            "--shards",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn parses_and_validates() {
        let opts = parse_shard(&base(&[])).unwrap();
        assert_eq!(opts.n_shards, 4);
        assert_eq!(opts.max_retries, 3);
        assert!(opts.passthrough.is_empty());

        let opts = parse_shard(&base(&[
            "--maxmem",
            "2G",
            "--chunk",
            "16",
            "--aa",
            "--heartbeat-timeout",
            "2.5",
            "--max-shard-retries",
            "7",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.passthrough, vec!["--maxmem", "2G", "--chunk", "16", "--aa"]);
        assert_eq!(opts.heartbeat_timeout_secs, 2.5);
        assert_eq!(opts.max_retries, 7);
        assert_eq!(opts.max_workers, 2);
    }

    #[test]
    fn rejects_garbage() {
        for (drop_flag, _) in [("--tree", 1)] {
            let args: Vec<String> = base(&[])
                .into_iter()
                .scan(false, |skip, a| {
                    Some(if *skip {
                        *skip = false;
                        None
                    } else if a == drop_flag {
                        *skip = true;
                        None
                    } else {
                        Some(a)
                    })
                })
                .flatten()
                .collect();
            assert!(parse_shard(&args).unwrap_err().contains("--tree is required"));
        }
        assert!(parse_shard(&base(&["--shards", "0"])).is_err());
        assert!(parse_shard(&base(&["--heartbeat-timeout", "0"])).is_err());
        assert!(parse_shard(&base(&["--straggler-factor", "1.0"])).is_err());
        assert!(parse_shard(&base(&["--maxmem", "-2G"])).is_err());
        assert!(parse_shard(&base(&["--bogus"])).is_err());
        assert!(parse_shard(&["place".to_string()]).is_err());
    }
}
