//! CLI surface for the placement daemon (`phyloplaced`, also reachable
//! as `phyloplace serve`): parse the daemon flags, build the warm
//! engine once, and hand off to the `phylo-serve` server loop.
//!
//! The scoring-relevant flags (`--aa`, `--gamma`, `--maxmem`, `--chunk`,
//! `--threads`, `--strategy`, `--no-lookup`) are the same names with the
//! same semantics as `phyloplace place`, because the daemon's contract
//! is byte-identical responses to a cold `place` run over the same
//! inputs.

use phylo_seq::alphabet::AlphabetKind;
use phylo_serve::{EngineSettings, ServeConfig, Transport, WarmEngine};
use phylo_shard::Shutdown;

/// Parsed daemon invocation.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    pub tree_path: String,
    pub ref_path: String,
    pub settings: EngineSettings,
    pub config: ServeConfig,
    pub transport: Transport,
}

const USAGE: &str = "usage: phyloplaced --tree REF.nwk --ref-msa REF.fasta \
  [--aa] [--maxmem SIZE[K|M|G|T] | --maxmem auto] [--gamma ALPHA | --no-gamma] \
  [--chunk N] [--threads N] [--strategy cost|lru|mru|fifo|random|cost-lru] [--no-lookup] \
  [--stdio | --unix SOCKET.path | --tcp HOST:PORT] [--queue-cap N] [--batch-max N]\n\
Serves newline-delimited JSON placement requests against a warm reference.\n\
Exit codes: 0 clean drain (SIGTERM/SIGINT or stdin EOF), 1 runtime error, \
2 usage/input error, 130 aborted by a second SIGINT.";

/// Parses daemon flags. `args` excludes the leading `serve` token when
/// invoked through `phyloplace serve`.
pub fn parse_serve(args: &[String]) -> Result<ServeOptions, String> {
    let mut settings = EngineSettings::default();
    let mut config = ServeConfig::default();
    let mut transport = Transport::Stdio;
    let mut tree_path = None;
    let mut ref_path = None;
    let mut maxmem: Option<f64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--tree" => tree_path = Some(value()?),
            "--ref-msa" => ref_path = Some(value()?),
            "--aa" => settings.alphabet = AlphabetKind::Protein,
            "--maxmem" => {
                let v = value()?;
                maxmem = Some(crate::cli::parse_maxmem(&v).map_err(|e| format!("{e}\n{USAGE}"))?);
            }
            "--gamma" => {
                let v = value()?;
                settings.gamma_alpha =
                    Some(v.parse::<f64>().map_err(|_| format!("bad --gamma {v:?}\n{USAGE}"))?);
            }
            "--no-gamma" => settings.gamma_alpha = None,
            "--chunk" => {
                let v = value()?;
                settings.chunk_size =
                    v.parse().map_err(|_| format!("bad --chunk {v:?}\n{USAGE}"))?;
            }
            "--threads" => {
                let v = value()?;
                settings.threads =
                    v.parse().map_err(|_| format!("bad --threads {v:?}\n{USAGE}"))?;
            }
            "--strategy" => {
                let v = value()?;
                settings.strategy = phylo_amc::StrategyKind::parse(&v).ok_or_else(|| {
                    format!(
                        "bad --strategy {v:?} (expected cost, lru, mru, fifo, \
                         random, cost-lru)\n{USAGE}"
                    )
                })?;
            }
            "--no-lookup" => settings.no_lookup = true,
            "--stdio" => transport = Transport::Stdio,
            "--unix" => transport = Transport::Unix(std::path::PathBuf::from(value()?)),
            "--tcp" => transport = Transport::Tcp(value()?),
            "--queue-cap" => {
                let v = value()?;
                config.queue_cap =
                    v.parse().map_err(|_| format!("bad --queue-cap {v:?}\n{USAGE}"))?;
            }
            "--batch-max" => {
                let v = value()?;
                let n: usize = v.parse().map_err(|_| format!("bad --batch-max {v:?}\n{USAGE}"))?;
                if n == 0 {
                    return Err(format!("bad --batch-max 0: must be >= 1\n{USAGE}"));
                }
                config.batch_max = n;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let tree_path = tree_path.ok_or_else(|| format!("--tree is required\n{USAGE}"))?;
    let ref_path = ref_path.ok_or_else(|| format!("--ref-msa is required\n{USAGE}"))?;
    settings.max_memory = match maxmem {
        None => None,
        Some(mib) if mib <= 0.0 => epa_place::memplan::detect_available_memory(),
        Some(mib) => Some(
            phylo_amc::budget::mib_to_bytes(mib).map_err(|e| format!("--maxmem: {e}\n{USAGE}"))?,
        ),
    };
    Ok(ServeOptions { tree_path, ref_path, settings, config, transport })
}

/// Usage-vs-runtime error split for the binary's exit code.
pub enum ServeError {
    /// Bad inputs (exit 2): unreadable/unparseable reference files.
    Input(String),
    /// Runtime failure (exit 1): transport/bind errors, executor panic.
    Runtime(String),
}

impl ServeError {
    pub fn exit_code(&self) -> i32 {
        match self {
            ServeError::Input(_) => 2,
            ServeError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Input(m) | ServeError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

/// Loads the reference inputs, warms the engine, and serves until
/// drained. Returns only after a clean drain.
pub fn run_serve(opts: &ServeOptions, shutdown: &Shutdown) -> Result<(), ServeError> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| ServeError::Input(format!("{path}: {e}")))
    };
    let tree_text = read(&opts.tree_path)?;
    let ref_fasta = read(&opts.ref_path)?;
    let t0 = std::time::Instant::now();
    let engine =
        WarmEngine::build(&tree_text, &ref_fasta, &opts.settings).map_err(ServeError::Input)?;
    eprintln!("phyloplaced: warm in {:.1?}", t0.elapsed());
    phylo_serve::run(engine, opts.config.clone(), opts.transport.clone(), shutdown.clone())
        .map_err(ServeError::Runtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_the_full_flag_surface() {
        let o = parse_serve(&argv(
            "--tree t.nwk --ref-msa r.fa --aa --no-gamma --chunk 128 --threads 2 \
             --strategy lru --no-lookup --unix /tmp/pp.sock --queue-cap 9 --batch-max 3",
        ))
        .unwrap();
        assert_eq!(o.tree_path, "t.nwk");
        assert_eq!(o.settings.alphabet, AlphabetKind::Protein);
        assert_eq!(o.settings.gamma_alpha, None);
        assert_eq!(o.settings.chunk_size, 128);
        assert_eq!(o.settings.threads, 2);
        assert_eq!(o.settings.strategy, phylo_amc::StrategyKind::Lru);
        assert!(o.settings.no_lookup);
        assert!(matches!(o.transport, Transport::Unix(_)));
        assert_eq!(o.config.queue_cap, 9);
        assert_eq!(o.config.batch_max, 3);
    }

    #[test]
    fn defaults_mirror_the_place_cli() {
        let o = parse_serve(&argv("--tree t.nwk --ref-msa r.fa")).unwrap();
        assert_eq!(o.settings.alphabet, AlphabetKind::Dna);
        assert_eq!(o.settings.gamma_alpha, Some(1.0));
        assert_eq!(o.settings.chunk_size, 5000);
        assert_eq!(o.settings.threads, 1);
        assert_eq!(o.settings.strategy, phylo_amc::StrategyKind::CostBased);
        assert!(!o.settings.no_lookup);
        assert!(matches!(o.transport, Transport::Stdio));
        assert_eq!(o.config.queue_cap, 64);
        assert_eq!(o.config.batch_max, 8);
    }

    #[test]
    fn rejects_missing_inputs_and_bad_values() {
        assert!(parse_serve(&argv("--ref-msa r.fa")).is_err(), "--tree required");
        assert!(parse_serve(&argv("--tree t.nwk")).is_err(), "--ref-msa required");
        assert!(parse_serve(&argv("--tree t --ref-msa r --batch-max 0")).is_err());
        assert!(parse_serve(&argv("--tree t --ref-msa r --queue-cap x")).is_err());
        assert!(parse_serve(&argv("--tree t --ref-msa r --bogus")).is_err());
        assert!(parse_serve(&argv("--tree t --ref-msa r --tcp")).is_err(), "value-less flag");
    }
}
