//! The `phyloplace` command-line pipeline: files in, `jplace` out.
//!
//! This is the shape in which EPA-NG is actually consumed: a reference
//! tree (Newick), a reference alignment (FASTA), and aligned query
//! sequences (FASTA), producing placements in the `jplace` interchange
//! format — here with the paper's `--maxmem` memory management surface.

use crate::place::result::to_jplace;
use crate::place::{memplan, EpaConfig, Placer, QueryBatch};
use phylo_engine::ReferenceContext;
use phylo_models::gamma::GammaMode;
use phylo_models::{aa, dna, DiscreteGamma, SubstModel};
use phylo_seq::alphabet::AlphabetKind;
use phylo_seq::{compress, fasta, Msa};

/// Parsed command-line options for `phyloplace place`.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Newick reference tree text.
    pub tree_text: String,
    /// FASTA reference alignment text.
    pub ref_fasta: String,
    /// FASTA aligned query text.
    pub query_fasta: String,
    /// Alphabet (DNA default; `--aa` switches).
    pub alphabet: AlphabetKind,
    /// Memory budget in MiB (`None` = unlimited; `Some(0)` = autodetect).
    pub maxmem_mib: Option<f64>,
    /// Γ shape (4 categories); `None` = rate-homogeneous.
    pub gamma_alpha: Option<f64>,
    /// Queries per chunk.
    pub chunk_size: usize,
    /// Worker threads.
    pub threads: usize,
    /// Write the run's metrics snapshot as JSON to this path.
    pub metrics_json: Option<String>,
    /// Record phase spans and write a Chrome-trace JSON to this path.
    pub trace_path: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            tree_text: String::new(),
            ref_fasta: String::new(),
            query_fasta: String::new(),
            alphabet: AlphabetKind::Dna,
            maxmem_mib: None,
            gamma_alpha: Some(1.0),
            chunk_size: 5000,
            threads: 1,
            metrics_json: None,
            trace_path: None,
        }
    }
}

/// Runs the full pipeline and returns the `jplace` document plus a short
/// human-readable run summary.
pub fn run_placement(opts: &CliOptions) -> Result<(String, String), String> {
    let tree =
        phylo_tree::newick::parse(&opts.tree_text).map_err(|e| format!("reference tree: {e}"))?;
    let ref_rows = fasta::parse(&opts.ref_fasta, opts.alphabet)
        .map_err(|e| format!("reference alignment: {e}"))?;
    let msa = Msa::new(ref_rows).map_err(|e| format!("reference alignment: {e}"))?;
    let queries =
        fasta::parse(&opts.query_fasta, opts.alphabet).map_err(|e| format!("queries: {e}"))?;
    let patterns = compress(&msa).map_err(|e| format!("compression: {e}"))?;

    // Model: +F empirical frequencies over the reference, Γ4 if requested.
    let gamma = match opts.gamma_alpha {
        Some(alpha) => {
            DiscreteGamma::new(alpha, 4, GammaMode::Mean).map_err(|e| format!("gamma: {e}"))?
        }
        None => DiscreteGamma::none(),
    };
    let alphabet = opts.alphabet.alphabet();
    let model = match opts.alphabet {
        AlphabetKind::Dna => {
            let f = dna::empirical_freqs(alphabet, msa.rows().iter().map(|r| r.codes()));
            let freqs: [f64; 4] = [f[0], f[1], f[2], f[3]];
            SubstModel::new(&dna::gtr(&[1.0; 6], &freqs).map_err(|e| format!("model: {e}"))?, gamma)
                .map_err(|e| format!("model: {e}"))?
        }
        AlphabetKind::Protein => {
            SubstModel::new(&aa::synthetic_aa(0).map_err(|e| format!("model: {e}"))?, gamma)
                .map_err(|e| format!("model: {e}"))?
        }
    };

    let ctx = ReferenceContext::new(tree.clone(), model, alphabet, &patterns)
        .map_err(|e| format!("engine: {e}"))?;
    let max_memory = match opts.maxmem_mib {
        None => None,
        Some(mib) if mib <= 0.0 => memplan::detect_available_memory(),
        Some(mib) => Some(phylo_amc::budget::mib_to_bytes(mib)),
    };
    let cfg = EpaConfig {
        max_memory,
        chunk_size: opts.chunk_size,
        threads: opts.threads,
        ..Default::default()
    };
    let placer = Placer::new(ctx, patterns.site_to_pattern().to_vec(), cfg)
        .map_err(|e| format!("config: {e}"))?;
    let batch = QueryBatch::new(&queries, msa.n_sites()).map_err(|e| format!("queries: {e}"))?;
    if (opts.metrics_json.is_some() || opts.trace_path.is_some()) && !phylo_obs::enabled() {
        // Slot-traffic and degradation counters are always collected, so
        // the metrics file is still useful — but kernel timings, wait
        // histograms, and trace spans need the compiled-in probes.
        eprintln!(
            "phyloplace: warning: built without the `obs` feature; \
             metrics are limited to slot counters and the trace will be empty"
        );
    }
    if opts.trace_path.is_some() {
        phylo_obs::trace::start();
    }
    let (results, report) = placer.place(&batch).map_err(|e| format!("placement: {e}"))?;
    if let Some(path) = &opts.trace_path {
        phylo_obs::trace::stop();
        let json = phylo_obs::trace::chrome_json(&phylo_obs::trace::drain());
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &opts.metrics_json {
        std::fs::write(path, report.metrics.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    let summary = format!(
        "placed {} queries on {} branches in {:.2}s (peak {:.1} MiB, {} CLV slots, lookup {}, {} CLV computations)",
        report.n_queries,
        tree.n_edges(),
        report.total_time.as_secs_f64(),
        report.peak_memory as f64 / (1024.0 * 1024.0),
        report.slots,
        if report.used_lookup { "on" } else { "off" },
        report.slot_stats.misses,
    );
    Ok((to_jplace(&tree, &results), summary))
}

/// Parses `phyloplace place` arguments. Returns `Err(usage)` on any
/// problem.
pub fn parse_cli(args: &[String]) -> Result<(CliOptions, Option<String>), String> {
    const USAGE: &str =
        "usage: phyloplace place --tree REF.nwk --ref-msa REF.fasta --queries Q.fasta \
  [--aa] [--maxmem MIB | --maxmem auto] [--gamma ALPHA | --no-gamma] \
  [--chunk N] [--threads N] [--out OUT.jplace] \
  [--metrics-json METRICS.json] [--trace TRACE.json]";
    let mut opts = CliOptions::default();
    let mut out: Option<String> = None;
    let mut tree_path = None;
    let mut ref_path = None;
    let mut query_path = None;
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("place") => {}
        _ => return Err(USAGE.to_string()),
    }
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--tree" => tree_path = Some(value()?),
            "--ref-msa" => ref_path = Some(value()?),
            "--queries" => query_path = Some(value()?),
            "--out" => out = Some(value()?),
            "--aa" => opts.alphabet = AlphabetKind::Protein,
            "--maxmem" => {
                let v = value()?;
                opts.maxmem_mib = if v == "auto" {
                    Some(0.0)
                } else {
                    Some(v.parse::<f64>().map_err(|_| format!("bad --maxmem {v:?}\n{USAGE}"))?)
                };
            }
            "--gamma" => {
                let v = value()?;
                opts.gamma_alpha =
                    Some(v.parse::<f64>().map_err(|_| format!("bad --gamma {v:?}\n{USAGE}"))?);
            }
            "--no-gamma" => opts.gamma_alpha = None,
            "--chunk" => {
                let v = value()?;
                opts.chunk_size = v.parse().map_err(|_| format!("bad --chunk {v:?}\n{USAGE}"))?;
            }
            "--threads" => {
                let v = value()?;
                opts.threads = v.parse().map_err(|_| format!("bad --threads {v:?}\n{USAGE}"))?;
            }
            "--metrics-json" => opts.metrics_json = Some(value()?),
            "--trace" => opts.trace_path = Some(value()?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let tree_path = tree_path.ok_or_else(|| format!("--tree is required\n{USAGE}"))?;
    let ref_path = ref_path.ok_or_else(|| format!("--ref-msa is required\n{USAGE}"))?;
    let query_path = query_path.ok_or_else(|| format!("--queries is required\n{USAGE}"))?;
    opts.tree_text =
        std::fs::read_to_string(&tree_path).map_err(|e| format!("{tree_path}: {e}"))?;
    opts.ref_fasta = std::fs::read_to_string(&ref_path).map_err(|e| format!("{ref_path}: {e}"))?;
    opts.query_fasta =
        std::fs::read_to_string(&query_path).map_err(|e| format!("{query_path}: {e}"))?;
    Ok((opts, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_opts() -> CliOptions {
        CliOptions {
            tree_text: "((A:0.1,B:0.2):0.05,(C:0.15,D:0.1):0.05,E:0.3);".into(),
            ref_fasta:
                ">A\nACGTACGTAC\n>B\nACGTACGTCC\n>C\nACTTACGAAC\n>D\nACTTACGTAC\n>E\nGCTTACGTAA\n"
                    .into(),
            query_fasta: ">q1\nACGTACGTAC\n>q2\nACTTACG-AC\n".into(),
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_pipeline_from_text() {
        let (jplace, summary) = run_placement(&demo_opts()).unwrap();
        assert!(jplace.contains("\"version\": 3"));
        assert!(jplace.contains("q1"));
        assert!(jplace.contains("q2"));
        assert!(summary.contains("placed 2 queries"));
    }

    #[test]
    fn identical_query_places_on_own_pendant() {
        let (jplace, _) = run_placement(&demo_opts()).unwrap();
        // q1 == A's sequence; its best placement must be A's pendant edge.
        // Find A's edge number from the tree string: "A:0.1{N}".
        let tree_line = jplace.lines().find(|l| l.contains("\"tree\"")).unwrap();
        let a_pos = tree_line.find("A:").unwrap();
        let edge_num: u32 = tree_line[a_pos..]
            .split('{')
            .nth(1)
            .unwrap()
            .split('}')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // q1's first (best) placement entry starts with that edge number.
        let q1_line = jplace.lines().find(|l| l.contains("q1")).unwrap();
        let first_field: u32 =
            q1_line.split("[[").nth(1).unwrap().split(',').next().unwrap().trim().parse().unwrap();
        assert_eq!(first_field, edge_num, "q1 should sit on A's pendant branch");
    }

    #[test]
    fn budgeted_run_matches_unlimited() {
        let unlimited = run_placement(&demo_opts()).unwrap().0;
        let mut opts = demo_opts();
        opts.maxmem_mib = Some(1.0);
        opts.chunk_size = 1;
        let budgeted = run_placement(&opts).unwrap().0;
        // Same best edges for both runs (compare the placement arrays).
        let pick = |s: &str| -> Vec<String> {
            s.lines().filter(|l| l.contains("\"p\"")).map(|l| l.to_string()).collect()
        };
        assert_eq!(pick(&unlimited).len(), pick(&budgeted).len());
    }

    #[test]
    fn aa_pipeline_works() {
        let opts = CliOptions {
            tree_text: "(P1:0.1,P2:0.2,(P3:0.1,P4:0.2):0.1);".into(),
            ref_fasta: ">P1\nMKVLAARNDC\n>P2\nMKVLAARNDW\n>P3\nMRVLAGRNDC\n>P4\nMRVLAGRNEC\n"
                .into(),
            query_fasta: ">qa\nMKVLAARNDC\n".into(),
            alphabet: AlphabetKind::Protein,
            ..Default::default()
        };
        let (jplace, _) = run_placement(&opts).unwrap();
        assert!(jplace.contains("qa"));
    }

    #[test]
    fn parse_cli_rejects_garbage() {
        let args: Vec<String> = vec!["place".into(), "--bogus".into()];
        assert!(parse_cli(&args).is_err());
        let args: Vec<String> = vec!["place".into()];
        assert!(parse_cli(&args).unwrap_err().contains("--tree is required"));
        let args: Vec<String> = vec!["somethingelse".into()];
        assert!(parse_cli(&args).is_err());
    }

    #[test]
    fn bad_inputs_are_reported() {
        let mut opts = demo_opts();
        opts.tree_text = "not a tree".into();
        assert!(run_placement(&opts).unwrap_err().contains("reference tree"));
        let mut opts = demo_opts();
        opts.query_fasta = ">q\nACGT\n".into(); // wrong length
        assert!(run_placement(&opts).unwrap_err().contains("queries"));
        let mut opts = demo_opts();
        opts.ref_fasta = ">A\nACGT\n".into(); // missing taxa
        assert!(run_placement(&opts).is_err());
    }
}
