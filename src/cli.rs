//! The `phyloplace` command-line pipeline: files in, `jplace` out.
//!
//! This is the shape in which EPA-NG is actually consumed: a reference
//! tree (Newick), a reference alignment (FASTA), and aligned query
//! sequences (FASTA), producing placements in the `jplace` interchange
//! format — here with the paper's `--maxmem` memory management surface.

use crate::place::result::to_jplace_with;
use crate::place::run::{HeartbeatEvent, HeartbeatFn, RunControl};
use crate::place::{memplan, EpaConfig, Placer, PreplacementMode, QueryBatch};
use phylo_amc::CancelToken;
use phylo_engine::ReferenceContext;
use phylo_journal::{fnv1a64, JournalError, Manifest, RunJournal, MANIFEST_FORMAT};
use phylo_models::gamma::GammaMode;
use phylo_models::{aa, dna, DiscreteGamma, SubstModel};
use phylo_seq::alphabet::AlphabetKind;
use phylo_seq::{compress, fasta, Msa};

/// A pipeline failure, typed by who is at fault so the binary can keep
/// its exit-code contract: bad input (malformed files, a checkpoint
/// manifest that no longer matches the run) exits 2, runtime failures
/// (I/O, placement internals) exit 1.
#[derive(Debug)]
pub enum CliError {
    /// The inputs or flags are wrong; retrying without changing them
    /// cannot succeed. Exit 2.
    BadInput(String),
    /// The environment failed the run (I/O, internal error). Exit 1.
    Runtime(String),
}

impl CliError {
    /// The process exit status this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::BadInput(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::BadInput(msg) | CliError::Runtime(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Classifies a journal-session error: I/O is the environment's fault,
/// everything else (missing/mismatched/unparseable manifest, bad frame)
/// means the user pointed the run at the wrong checkpoint.
fn journal_error(context: &str, e: JournalError) -> CliError {
    match e {
        JournalError::Io { .. } => CliError::Runtime(format!("{context}: {e}")),
        _ => CliError::BadInput(format!("{context}: {e}")),
    }
}

/// Parsed command-line options for `phyloplace place`.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Newick reference tree text.
    pub tree_text: String,
    /// FASTA reference alignment text.
    pub ref_fasta: String,
    /// FASTA aligned query text.
    pub query_fasta: String,
    /// Alphabet (DNA default; `--aa` switches).
    pub alphabet: AlphabetKind,
    /// Memory budget in MiB (`None` = unlimited; `Some(0)` = autodetect).
    pub maxmem_mib: Option<f64>,
    /// Γ shape (4 categories); `None` = rate-homogeneous.
    pub gamma_alpha: Option<f64>,
    /// Queries per chunk.
    pub chunk_size: usize,
    /// Worker threads.
    pub threads: usize,
    /// Kernel tier request (`--kernel-tier auto|reference|fixed|simd`).
    pub kernel_tier: phylo_kernel::TierChoice,
    /// Replacement strategy for the CLV slot cache
    /// (`--strategy cost|lru|mru|fifo|random|cost-lru`; the paper's
    /// cost-based heuristic is the default).
    pub strategy: phylo_amc::StrategyKind,
    /// Never build the preplacement lookup table (`--no-lookup`) —
    /// exposes the slow recompute path for eviction-policy ablation and
    /// trace capture under real slot pressure.
    pub no_lookup: bool,
    /// Write the run's slot-access trace (for `phyloplace replay`) to
    /// this path.
    pub slot_trace: Option<String>,
    /// Write the run's metrics snapshot as JSON to this path.
    pub metrics_json: Option<String>,
    /// Record phase spans and write a Chrome-trace JSON to this path.
    pub trace_path: Option<String>,
    /// Start a fresh checkpoint journal in this directory.
    pub checkpoint_dir: Option<String>,
    /// Resume from the checkpoint journal in this directory (and keep
    /// journaling into it).
    pub resume_dir: Option<String>,
    /// Cancel the run after this many wall-clock seconds and emit the
    /// completed prefix as a partial result.
    pub deadline_secs: Option<f64>,
    /// Emit `HB` progress lines on stdout (one at run start, one per
    /// durable chunk) for a supervising `phyloplace shard` coordinator.
    /// Requires `--out` (the jplace must not share the channel).
    pub heartbeat: bool,
    /// Demotion storage tiers for evicted CLVs, assembled from
    /// `--storage-tiers` / `--tier-dir` / `--tier-budget`. `None` keeps
    /// the paper's pure recompute-on-miss AMC.
    pub tiers: Option<phylo_amc::tier::TierConfig>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            tree_text: String::new(),
            ref_fasta: String::new(),
            query_fasta: String::new(),
            alphabet: AlphabetKind::Dna,
            maxmem_mib: None,
            gamma_alpha: Some(1.0),
            chunk_size: 5000,
            threads: 1,
            kernel_tier: phylo_kernel::TierChoice::Auto,
            strategy: phylo_amc::StrategyKind::CostBased,
            no_lookup: false,
            slot_trace: None,
            metrics_json: None,
            trace_path: None,
            checkpoint_dir: None,
            resume_dir: None,
            deadline_secs: None,
            heartbeat: false,
            tiers: None,
        }
    }
}

/// What one pipeline invocation produced.
#[derive(Debug)]
pub struct RunOutput {
    /// The `jplace` document (the durable prefix when interrupted).
    pub jplace: String,
    /// Human-readable one-line run summary.
    pub summary: String,
    /// False when the run was cancelled (signal or `--deadline`) before
    /// placing every query; the caller should exit with status 3.
    pub completed: bool,
}

/// Parses a `--maxmem` value into MiB. Accepts a bare number (MiB, the
/// historical unit), a binary-unit suffix (`512M`, `2G`, `0.5G`,
/// `1024K`, `1T`, optionally with a trailing `B`/`iB` as in `2GiB`),
/// or `auto` (returned as `0.0`, the autodetect sentinel). Rejects
/// non-positive, NaN, and infinite budgets — a budget of zero bytes is
/// never what the user meant, and NaN would poison every comparison in
/// the memory planner.
pub fn parse_maxmem(s: &str) -> Result<f64, String> {
    parse_size("--maxmem", s)
}

/// The shared size-spec parser behind `--maxmem` and `--tier-budget`.
fn parse_size(flag: &str, s: &str) -> Result<f64, String> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("auto") {
        return Ok(0.0);
    }
    let bad = |why: &str| format!("bad {flag} value {s:?}: {why}");
    let lower = t.to_ascii_lowercase();
    let core = lower.strip_suffix("ib").or_else(|| lower.strip_suffix('b')).unwrap_or(&lower);
    let (num, mult_mib) = if let Some(n) = core.strip_suffix('k') {
        (n, 1.0 / 1024.0)
    } else if let Some(n) = core.strip_suffix('m') {
        (n, 1.0)
    } else if let Some(n) = core.strip_suffix('g') {
        (n, 1024.0)
    } else if let Some(n) = core.strip_suffix('t') {
        (n, 1024.0 * 1024.0)
    } else {
        (core, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| bad("expected a number with optional K/M/G/T suffix, or `auto`"))?;
    if v.is_nan() {
        return Err(bad("NaN is not a budget"));
    }
    if !v.is_finite() {
        return Err(bad("must be finite"));
    }
    let mib = v * mult_mib;
    if mib <= 0.0 {
        return Err(bad("must be positive"));
    }
    Ok(mib)
}

/// Runs the full pipeline with an inert cancel token (never interrupted
/// unless `--deadline` fires).
pub fn run_placement(opts: &CliOptions) -> Result<RunOutput, CliError> {
    run_placement_with(opts, CancelToken::new())
}

/// Runs the full pipeline under an externally armed cancel token (the
/// binary wires SIGINT/SIGTERM to it) and returns the `jplace` document
/// plus a short human-readable run summary. A cancelled run is *not* an
/// error: the durable prefix comes back with `completed == false`.
pub fn run_placement_with(opts: &CliOptions, cancel: CancelToken) -> Result<RunOutput, CliError> {
    let bad = |msg: String| CliError::BadInput(msg);
    let tree = phylo_tree::newick::parse(&opts.tree_text)
        .map_err(|e| bad(format!("reference tree: {e}")))?;
    let ref_rows = fasta::parse(&opts.ref_fasta, opts.alphabet)
        .map_err(|e| bad(format!("reference alignment: {e}")))?;
    let msa = Msa::new(ref_rows).map_err(|e| bad(format!("reference alignment: {e}")))?;
    let queries =
        fasta::parse(&opts.query_fasta, opts.alphabet).map_err(|e| bad(format!("queries: {e}")))?;
    let patterns = compress(&msa).map_err(|e| bad(format!("compression: {e}")))?;

    // Model: +F empirical frequencies over the reference, Γ4 if requested.
    let gamma = match opts.gamma_alpha {
        Some(alpha) => {
            DiscreteGamma::new(alpha, 4, GammaMode::Mean).map_err(|e| bad(format!("gamma: {e}")))?
        }
        None => DiscreteGamma::none(),
    };
    let alphabet = opts.alphabet.alphabet();
    let model = match opts.alphabet {
        AlphabetKind::Dna => {
            let f = dna::empirical_freqs(alphabet, msa.rows().iter().map(|r| r.codes()));
            let freqs: [f64; 4] = [f[0], f[1], f[2], f[3]];
            SubstModel::new(
                &dna::gtr(&[1.0; 6], &freqs).map_err(|e| bad(format!("model: {e}")))?,
                gamma,
            )
            .map_err(|e| bad(format!("model: {e}")))?
        }
        AlphabetKind::Protein => {
            SubstModel::new(&aa::synthetic_aa(0).map_err(|e| bad(format!("model: {e}")))?, gamma)
                .map_err(|e| bad(format!("model: {e}")))?
        }
    };

    let ctx = ReferenceContext::new(tree.clone(), model, alphabet, &patterns)
        .map_err(|e| CliError::Runtime(format!("engine: {e}")))?;
    let max_memory = match opts.maxmem_mib {
        None => None,
        Some(mib) if mib <= 0.0 => memplan::detect_available_memory(),
        // Checked conversion: an unrepresentable budget (NaN leaking in
        // programmatically, or a size past the address space) is the
        // user's input problem, not a runtime failure.
        Some(mib) => {
            Some(phylo_amc::budget::mib_to_bytes(mib).map_err(|e| bad(format!("--maxmem: {e}")))?)
        }
    };
    let cfg = EpaConfig {
        max_memory,
        chunk_size: opts.chunk_size,
        threads: opts.threads,
        kernel_tier: opts.kernel_tier,
        strategy: opts.strategy,
        preplacement: if opts.no_lookup { PreplacementMode::Off } else { PreplacementMode::Auto },
        tiers: opts.tiers.clone(),
        ..Default::default()
    };
    let placer = Placer::new(ctx, patterns.site_to_pattern().to_vec(), cfg)
        .map_err(|e| bad(format!("config: {e}")))?;
    let batch =
        QueryBatch::new(&queries, msa.n_sites()).map_err(|e| bad(format!("queries: {e}")))?;

    // Checkpoint journal: the manifest fingerprints the input texts and
    // the *effective* chunk geometry (post-memory-plan), so `--resume`
    // refuses any run whose chunk boundaries or scoring would differ.
    let journal = match (&opts.checkpoint_dir, &opts.resume_dir) {
        (Some(_), Some(_)) => {
            return Err(bad("--checkpoint and --resume are mutually exclusive; \
                        --resume keeps journaling into its directory"
                .to_string()))
        }
        (None, None) => None,
        (ckpt, res) => {
            let plan = placer
                .memory_plan(&batch)
                .map_err(|e| CliError::Runtime(format!("memory planning: {e}")))?;
            let epa = placer.config();
            let manifest = Manifest {
                format: MANIFEST_FORMAT,
                tree_hash: fnv1a64(opts.tree_text.as_bytes()),
                ref_msa_hash: fnv1a64(opts.ref_fasta.as_bytes()),
                query_hash: fnv1a64(opts.query_fasta.as_bytes()),
                alphabet: match opts.alphabet {
                    AlphabetKind::Dna => "dna".to_string(),
                    AlphabetKind::Protein => "protein".to_string(),
                },
                gamma_alpha_bits: opts.gamma_alpha.map(f64::to_bits),
                chunk_size: plan.chunk_size,
                n_queries: batch.len(),
                thorough_fraction_bits: epa.thorough_fraction.to_bits(),
                thorough_min: epa.thorough_min,
                blo_iterations: epa.blo_iterations,
            };
            Some(match (ckpt, res) {
                (Some(dir), _) => RunJournal::create(std::path::Path::new(dir), &manifest)
                    .map_err(|e| journal_error("checkpoint", e))?,
                (_, Some(dir)) => RunJournal::resume(std::path::Path::new(dir), &manifest)
                    .map_err(|e| journal_error("resume", e))?,
                (None, None) => unreachable!(),
            })
        }
    };

    // Deadline watchdog: a detached poller arms the shared token once
    // the wall-clock budget is spent; the run then unwinds at its next
    // cancellation point. The thread dies with the process.
    if let Some(secs) = opts.deadline_secs {
        let cancel = cancel.clone();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(secs);
        std::thread::spawn(move || {
            while std::time::Instant::now() < deadline {
                if cancel.is_cancelled() {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            cancel.cancel();
        });
    }
    if (opts.metrics_json.is_some() || opts.trace_path.is_some()) && !phylo_obs::enabled() {
        // Slot-traffic and degradation counters are always collected, so
        // the metrics file is still useful — but kernel timings, wait
        // histograms, and trace spans need the compiled-in probes.
        eprintln!(
            "phyloplace: warning: built without the `obs` feature; \
             metrics are limited to slot counters and the trace will be empty"
        );
    }
    if opts.trace_path.is_some() {
        phylo_obs::trace::start();
    }
    let slot_trace = opts
        .slot_trace
        .as_ref()
        .map(|_| std::sync::Arc::new(phylo_obs::slottrace::SlotTrace::new()));
    // Heartbeats for a supervising coordinator: one line per durable
    // chunk on stdout (freed by --out). The three shard::* fault sites
    // let the chaos tests force, at an exact chunk boundary, a worker
    // that hangs, goes silent, or dies right after its durable append.
    let heartbeat: Option<HeartbeatFn> = opts.heartbeat.then(|| {
        Box::new(|ev: HeartbeatEvent| {
            if phylo_faults::fire("shard::worker_hang") {
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(60));
                }
            }
            if !phylo_faults::fire("shard::heartbeat_lost") {
                use std::io::Write;
                let mut out = std::io::stdout().lock();
                let hb = phylo_shard::Heartbeat {
                    chunks_done: ev.chunks_done,
                    n_chunks: ev.n_chunks,
                    queries_done: ev.queries_done,
                    n_queries: ev.n_queries,
                };
                // stdout is block-buffered on a pipe; an unflushed beat
                // is a beat the supervisor never sees.
                let _ = writeln!(out, "{}", phylo_shard::format_heartbeat(&hb));
                let _ = out.flush();
            }
            if phylo_faults::fire("shard::worker_crash") {
                // The chunk is durable and the beat is out: the most
                // adversarial instant to die.
                std::process::abort();
            }
        }) as HeartbeatFn
    });
    let outcome = placer
        .place_run(
            &batch,
            RunControl { cancel, journal, slot_trace: slot_trace.clone(), heartbeat },
        )
        .map_err(|e| CliError::Runtime(format!("placement: {e}")))?;
    if let (Some(path), Some(trace)) = (&opts.slot_trace, &slot_trace) {
        // Crash-atomic like every other run artifact: a trace consumer
        // (phyloplace replay) must never see a torn file.
        phylo_journal::write_text_atomic(std::path::Path::new(path), &trace.snapshot().to_text())
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    }
    if let Some(path) = &opts.trace_path {
        phylo_obs::trace::stop();
        let json = phylo_obs::trace::chrome_json(&phylo_obs::trace::drain());
        // Same crash-atomic helper as every other run artifact: a
        // consumer polling for the file must never see a torn JSON.
        phylo_journal::write_text_atomic(std::path::Path::new(path), &json)
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    }
    let report = &outcome.report;
    if let Some(path) = &opts.metrics_json {
        phylo_journal::write_text_atomic(std::path::Path::new(path), &report.metrics.to_json())
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    }
    let resumed = if report.resumed_chunks > 0 {
        format!(", {} chunks restored from checkpoint", report.resumed_chunks)
    } else {
        String::new()
    };
    let summary = if outcome.completed {
        format!(
            "placed {} queries on {} branches in {:.2}s (peak {:.1} MiB, {} CLV slots, lookup {}, {} CLV computations{})",
            report.n_queries,
            tree.n_edges(),
            report.total_time.as_secs_f64(),
            report.peak_memory as f64 / (1024.0 * 1024.0),
            report.slots,
            if report.used_lookup { "on" } else { "off" },
            report.slot_stats.misses,
            resumed,
        )
    } else {
        format!(
            "interrupted: placed {} of {} queries in {:.2}s{}; every finished chunk is durable — \
             rerun with --resume to complete",
            outcome.queries_done,
            report.n_queries,
            report.total_time.as_secs_f64(),
            resumed,
        )
    };
    Ok(RunOutput {
        jplace: to_jplace_with(&tree, &outcome.results, outcome.completed),
        summary,
        completed: outcome.completed,
    })
}

/// Parses `phyloplace place` arguments. Returns `Err(usage)` on any
/// problem.
pub fn parse_cli(args: &[String]) -> Result<(CliOptions, Option<String>), String> {
    const USAGE: &str =
        "usage: phyloplace place --tree REF.nwk --ref-msa REF.fasta --queries Q.fasta \
  [--aa] [--maxmem SIZE[K|M|G|T] | --maxmem auto] [--gamma ALPHA | --no-gamma] \
  [--chunk N] [--threads N] [--kernel-tier auto|reference|fixed|simd] [--out OUT.jplace] \
  [--strategy cost|lru|mru|fifo|random|cost-lru] [--no-lookup] [--slot-trace TRACE.txt] \
  [--checkpoint DIR | --resume DIR] [--deadline SECS] [--heartbeat] \
  [--storage-tiers ram,compressed,disk] [--tier-dir DIR] [--tier-budget SIZE[K|M|G|T]] \
  [--metrics-json METRICS.json] [--trace TRACE.json]";
    let mut opts = CliOptions::default();
    let mut out: Option<String> = None;
    let mut tree_path = None;
    let mut ref_path = None;
    let mut query_path = None;
    let mut tier_spec: Option<String> = None;
    let mut tier_dir: Option<String> = None;
    let mut tier_budget: Option<String> = None;
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("place") => {}
        _ => return Err(USAGE.to_string()),
    }
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--tree" => tree_path = Some(value()?),
            "--ref-msa" => ref_path = Some(value()?),
            "--queries" => query_path = Some(value()?),
            "--out" => out = Some(value()?),
            "--aa" => opts.alphabet = AlphabetKind::Protein,
            "--maxmem" => {
                let v = value()?;
                opts.maxmem_mib = Some(parse_maxmem(&v).map_err(|e| format!("{e}\n{USAGE}"))?);
            }
            "--gamma" => {
                let v = value()?;
                opts.gamma_alpha =
                    Some(v.parse::<f64>().map_err(|_| format!("bad --gamma {v:?}\n{USAGE}"))?);
            }
            "--no-gamma" => opts.gamma_alpha = None,
            "--chunk" => {
                let v = value()?;
                opts.chunk_size = v.parse().map_err(|_| format!("bad --chunk {v:?}\n{USAGE}"))?;
            }
            "--threads" => {
                let v = value()?;
                opts.threads = v.parse().map_err(|_| format!("bad --threads {v:?}\n{USAGE}"))?;
            }
            "--kernel-tier" => {
                let v = value()?;
                opts.kernel_tier = phylo_kernel::TierChoice::parse(&v)
                    .ok_or_else(|| format!("bad --kernel-tier {v:?}\n{USAGE}"))?;
            }
            "--strategy" => {
                let v = value()?;
                opts.strategy = phylo_amc::StrategyKind::parse(&v).ok_or_else(|| {
                    format!(
                        "bad --strategy {v:?} (expected one of cost, lru, mru, fifo, \
                         random, cost-lru)\n{USAGE}"
                    )
                })?;
            }
            "--no-lookup" => opts.no_lookup = true,
            "--storage-tiers" => tier_spec = Some(value()?),
            "--tier-dir" => tier_dir = Some(value()?),
            "--tier-budget" => tier_budget = Some(value()?),
            "--slot-trace" => opts.slot_trace = Some(value()?),
            "--metrics-json" => opts.metrics_json = Some(value()?),
            "--trace" => opts.trace_path = Some(value()?),
            "--checkpoint" => opts.checkpoint_dir = Some(value()?),
            "--resume" => opts.resume_dir = Some(value()?),
            "--heartbeat" => opts.heartbeat = true,
            "--deadline" => {
                let v = value()?;
                let secs: f64 = v.parse().map_err(|_| format!("bad --deadline {v:?}\n{USAGE}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("bad --deadline {v:?}: must be >= 0\n{USAGE}"));
                }
                opts.deadline_secs = Some(secs);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if opts.heartbeat && out.is_none() {
        return Err(format!(
            "--heartbeat needs --out: heartbeat lines own stdout, the jplace needs a file\n{USAGE}"
        ));
    }
    match tier_spec {
        None => {
            if tier_dir.is_some() || tier_budget.is_some() {
                return Err(format!("--tier-dir/--tier-budget need --storage-tiers\n{USAGE}"));
            }
        }
        Some(spec) => {
            let mut cfg =
                phylo_amc::tier::TierConfig::parse(&spec).map_err(|e| format!("{e}\n{USAGE}"))?;
            if let Some(dir) = tier_dir {
                cfg = cfg.with_dir(std::path::PathBuf::from(dir));
            }
            if let Some(b) = tier_budget {
                if b.trim().eq_ignore_ascii_case("auto") {
                    return Err(format!("--tier-budget has no auto mode\n{USAGE}"));
                }
                let mib = parse_size("--tier-budget", &b).map_err(|e| format!("{e}\n{USAGE}"))?;
                let bytes = phylo_amc::budget::mib_to_bytes(mib)
                    .map_err(|e| format!("--tier-budget: {e}\n{USAGE}"))?;
                cfg = cfg.with_budget(bytes);
            }
            cfg.validate().map_err(|e| format!("{e}\n{USAGE}"))?;
            opts.tiers = Some(cfg);
        }
    }
    let tree_path = tree_path.ok_or_else(|| format!("--tree is required\n{USAGE}"))?;
    let ref_path = ref_path.ok_or_else(|| format!("--ref-msa is required\n{USAGE}"))?;
    let query_path = query_path.ok_or_else(|| format!("--queries is required\n{USAGE}"))?;
    opts.tree_text =
        std::fs::read_to_string(&tree_path).map_err(|e| format!("{tree_path}: {e}"))?;
    opts.ref_fasta = std::fs::read_to_string(&ref_path).map_err(|e| format!("{ref_path}: {e}"))?;
    opts.query_fasta =
        std::fs::read_to_string(&query_path).map_err(|e| format!("{query_path}: {e}"))?;
    Ok((opts, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_opts() -> CliOptions {
        CliOptions {
            tree_text: "((A:0.1,B:0.2):0.05,(C:0.15,D:0.1):0.05,E:0.3);".into(),
            ref_fasta:
                ">A\nACGTACGTAC\n>B\nACGTACGTCC\n>C\nACTTACGAAC\n>D\nACTTACGTAC\n>E\nGCTTACGTAA\n"
                    .into(),
            query_fasta: ">q1\nACGTACGTAC\n>q2\nACTTACG-AC\n".into(),
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_pipeline_from_text() {
        let out = run_placement(&demo_opts()).unwrap();
        assert!(out.jplace.contains("\"version\": 3"));
        assert!(out.jplace.contains("q1"));
        assert!(out.jplace.contains("q2"));
        assert!(out.jplace.contains("\"completed\": true"));
        assert!(out.completed);
        assert!(out.summary.contains("placed 2 queries"));
    }

    #[test]
    fn identical_query_places_on_own_pendant() {
        let jplace = run_placement(&demo_opts()).unwrap().jplace;
        // q1 == A's sequence; its best placement must be A's pendant edge.
        // Find A's edge number from the tree string: "A:0.1{N}".
        let tree_line = jplace.lines().find(|l| l.contains("\"tree\"")).unwrap();
        let a_pos = tree_line.find("A:").unwrap();
        let edge_num: u32 = tree_line[a_pos..]
            .split('{')
            .nth(1)
            .unwrap()
            .split('}')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // q1's first (best) placement entry starts with that edge number.
        let q1_line = jplace.lines().find(|l| l.contains("q1")).unwrap();
        let first_field: u32 =
            q1_line.split("[[").nth(1).unwrap().split(',').next().unwrap().trim().parse().unwrap();
        assert_eq!(first_field, edge_num, "q1 should sit on A's pendant branch");
    }

    #[test]
    fn budgeted_run_matches_unlimited() {
        let unlimited = run_placement(&demo_opts()).unwrap().jplace;
        let mut opts = demo_opts();
        opts.maxmem_mib = Some(1.0);
        opts.chunk_size = 1;
        let budgeted = run_placement(&opts).unwrap().jplace;
        // Same best edges for both runs (compare the placement arrays).
        let pick = |s: &str| -> Vec<String> {
            s.lines().filter(|l| l.contains("\"p\"")).map(|l| l.to_string()).collect()
        };
        assert_eq!(pick(&unlimited).len(), pick(&budgeted).len());
    }

    #[test]
    fn aa_pipeline_works() {
        let opts = CliOptions {
            tree_text: "(P1:0.1,P2:0.2,(P3:0.1,P4:0.2):0.1);".into(),
            ref_fasta: ">P1\nMKVLAARNDC\n>P2\nMKVLAARNDW\n>P3\nMRVLAGRNDC\n>P4\nMRVLAGRNEC\n"
                .into(),
            query_fasta: ">qa\nMKVLAARNDC\n".into(),
            alphabet: AlphabetKind::Protein,
            ..Default::default()
        };
        let jplace = run_placement(&opts).unwrap().jplace;
        assert!(jplace.contains("qa"));
    }

    #[test]
    fn parse_maxmem_accepts_units_and_bare_mib() {
        assert_eq!(parse_maxmem("512"), Ok(512.0));
        assert_eq!(parse_maxmem("512M"), Ok(512.0));
        assert_eq!(parse_maxmem("512m"), Ok(512.0));
        assert_eq!(parse_maxmem("512MB"), Ok(512.0));
        assert_eq!(parse_maxmem("512MiB"), Ok(512.0));
        assert_eq!(parse_maxmem("2G"), Ok(2048.0));
        assert_eq!(parse_maxmem("0.5G"), Ok(512.0));
        assert_eq!(parse_maxmem("2GiB"), Ok(2048.0));
        assert_eq!(parse_maxmem("1024K"), Ok(1.0));
        assert_eq!(parse_maxmem("1T"), Ok(1024.0 * 1024.0));
        assert_eq!(parse_maxmem(" 64 "), Ok(64.0));
        assert_eq!(parse_maxmem("auto"), Ok(0.0));
        assert_eq!(parse_maxmem("AUTO"), Ok(0.0));
    }

    #[test]
    fn parse_maxmem_rejects_nonsense() {
        for bad in
            ["0", "-1", "-0.5G", "0K", "nan", "NaN", "inf", "-inf", "infG", "", "G", "B", "12Q"]
        {
            assert!(parse_maxmem(bad).is_err(), "{bad:?} should be rejected");
        }
        // The message names the offending value and stays actionable.
        let msg = parse_maxmem("-2G").unwrap_err();
        assert!(msg.contains("-2G") && msg.contains("positive"), "{msg}");
        let msg = parse_maxmem("nan").unwrap_err();
        assert!(msg.contains("NaN"), "{msg}");
    }

    #[test]
    fn parse_cli_accepts_lifecycle_flags() {
        let dir = std::env::temp_dir().join(format!("phyloplace-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tree = dir.join("t.nwk");
        let msa = dir.join("r.fasta");
        let q = dir.join("q.fasta");
        std::fs::write(&tree, "(A:0.1,B:0.2,C:0.3);").unwrap();
        std::fs::write(&msa, ">A\nACGT\n>B\nACGA\n>C\nACTA\n").unwrap();
        std::fs::write(&q, ">x\nACGT\n").unwrap();
        let base = |extra: &[&str]| -> Vec<String> {
            let mut v: Vec<String> = vec![
                "place".into(),
                "--tree".into(),
                tree.to_str().unwrap().into(),
                "--ref-msa".into(),
                msa.to_str().unwrap().into(),
                "--queries".into(),
                q.to_str().unwrap().into(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        let (opts, _) =
            parse_cli(&base(&["--checkpoint", "ck", "--deadline", "1.5", "--maxmem", "2G"]))
                .unwrap();
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("ck"));
        assert_eq!(opts.deadline_secs, Some(1.5));
        assert_eq!(opts.maxmem_mib, Some(2048.0));
        let (opts, _) = parse_cli(&base(&["--resume", "ck"])).unwrap();
        assert_eq!(opts.resume_dir.as_deref(), Some("ck"));
        assert!(parse_cli(&base(&["--deadline", "-1"])).is_err());
        assert!(parse_cli(&base(&["--maxmem", "0"])).is_err());
        for (flag, want) in [
            ("auto", phylo_kernel::TierChoice::Auto),
            ("reference", phylo_kernel::TierChoice::Reference),
            ("fixed", phylo_kernel::TierChoice::Fixed),
            ("simd", phylo_kernel::TierChoice::Simd),
        ] {
            let (opts, _) = parse_cli(&base(&["--kernel-tier", flag])).unwrap();
            assert_eq!(opts.kernel_tier, want);
        }
        assert!(parse_cli(&base(&["--kernel-tier", "avx9000"])).is_err());
        // Every strategy name round-trips through the flag.
        for kind in phylo_amc::StrategyKind::all() {
            let name = kind.to_string();
            let (opts, _) = parse_cli(&base(&["--strategy", &name])).unwrap();
            assert_eq!(opts.strategy, kind, "--strategy {name}");
        }
        assert!(parse_cli(&base(&["--strategy", "belady"])).is_err(), "oracle is replay-only");
        let (opts, _) = parse_cli(&base(&["--no-lookup"])).unwrap();
        assert!(opts.no_lookup);
        let (opts, _) = parse_cli(&base(&["--slot-trace", "trace.txt"])).unwrap();
        assert_eq!(opts.slot_trace.as_deref(), Some("trace.txt"));
        // Tiered CLV storage surface.
        let (opts, _) = parse_cli(&base(&[
            "--storage-tiers",
            "compressed,disk",
            "--tier-dir",
            "tdir",
            "--tier-budget",
            "64M",
        ]))
        .unwrap();
        let tiers = opts.tiers.expect("--storage-tiers must configure tiers");
        assert_eq!(tiers.kinds, vec![phylo_amc::TierKind::Compressed, phylo_amc::TierKind::Disk]);
        assert_eq!(tiers.dir.as_deref(), Some(std::path::Path::new("tdir")));
        assert_eq!(tiers.budget_bytes, Some(64 * 1024 * 1024));
        let (opts, _) = parse_cli(&base(&["--storage-tiers", "ram"])).unwrap();
        assert_eq!(opts.tiers.unwrap().kinds, vec![phylo_amc::TierKind::Ram]);
        // Rejects: unknown tier, dependent flags without the enabler,
        // a dir without a disk tier, and the autodetect sentinel.
        assert!(parse_cli(&base(&["--storage-tiers", "tape"])).is_err());
        assert!(parse_cli(&base(&["--tier-dir", "tdir"])).is_err());
        assert!(parse_cli(&base(&["--tier-budget", "64M"])).is_err());
        assert!(parse_cli(&base(&["--storage-tiers", "ram", "--tier-dir", "tdir"])).is_err());
        assert!(parse_cli(&base(&["--storage-tiers", "disk", "--tier-budget", "auto"])).is_err());
        assert!(parse_cli(&base(&["--storage-tiers", "disk", "--tier-budget", "0"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_cli_rejects_garbage() {
        let args: Vec<String> = vec!["place".into(), "--bogus".into()];
        assert!(parse_cli(&args).is_err());
        let args: Vec<String> = vec!["place".into()];
        assert!(parse_cli(&args).unwrap_err().contains("--tree is required"));
        let args: Vec<String> = vec!["somethingelse".into()];
        assert!(parse_cli(&args).is_err());
    }

    #[test]
    fn bad_inputs_are_reported() {
        let mut opts = demo_opts();
        opts.tree_text = "not a tree".into();
        let err = run_placement(&opts).unwrap_err();
        assert!(err.to_string().contains("reference tree"));
        assert_eq!(err.exit_code(), 2, "malformed input is the user's fault");
        let mut opts = demo_opts();
        opts.query_fasta = ">q\nACGT\n".into(); // wrong length
        assert!(run_placement(&opts).unwrap_err().to_string().contains("queries"));
        let mut opts = demo_opts();
        opts.ref_fasta = ">A\nACGT\n".into(); // missing taxa
        assert!(run_placement(&opts).is_err());
    }

    #[test]
    fn checkpoint_mismatch_is_bad_input() {
        let dir = std::env::temp_dir().join(format!("phyloplace-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = demo_opts();
        opts.checkpoint_dir = Some(dir.to_str().unwrap().to_string());
        run_placement(&opts).unwrap();
        // Resuming with different queries must refuse with exit code 2.
        let mut opts = demo_opts();
        opts.resume_dir = Some(dir.to_str().unwrap().to_string());
        opts.query_fasta = ">other\nACGTACGTAC\n".into();
        let err = run_placement(&opts).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("resume"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_flag_requires_out() {
        let dir = std::env::temp_dir().join(format!("phyloplace-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tree = dir.join("t.nwk");
        std::fs::write(&tree, "(A:0.1,B:0.2,C:0.3);").unwrap();
        let msa = dir.join("r.fasta");
        std::fs::write(&msa, ">A\nACGT\n>B\nACGA\n>C\nACTA\n").unwrap();
        let q = dir.join("q.fasta");
        std::fs::write(&q, ">x\nACGT\n").unwrap();
        let mk = |extra: &[&str]| -> Vec<String> {
            let mut v: Vec<String> = vec![
                "place".into(),
                "--tree".into(),
                tree.to_str().unwrap().into(),
                "--ref-msa".into(),
                msa.to_str().unwrap().into(),
                "--queries".into(),
                q.to_str().unwrap().into(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        assert!(parse_cli(&mk(&["--heartbeat"])).unwrap_err().contains("--out"));
        let (opts, out) = parse_cli(&mk(&["--heartbeat", "--out", "o.jplace"])).unwrap();
        assert!(opts.heartbeat);
        assert_eq!(out.as_deref(), Some("o.jplace"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
