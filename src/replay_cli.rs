//! The `phyloplace replay` subcommand: the offline replacement-policy
//! lab over a captured slot-access trace (`place --slot-trace FILE`).
//!
//! Two modes:
//!
//! * **Sweep** (default): replay the trace for every requested policy ×
//!   slot count, print the miss-curve table with the Belady oracle
//!   floor, and recommend the smallest slot count (and the arena bytes
//!   it costs) where the captured policy is within `--threshold` of the
//!   oracle.
//! * **Verify** (`--verify METRICS.json`): replay the trace at the
//!   captured policy and slot count, compare the simulated counters
//!   against the live run's `slot.*` metrics **exactly**, and check the
//!   oracle bound — the differential contract every eviction change is
//!   tested against (`scripts/ci.sh`).

use phylo_replay::{
    crossover_cost, min_feasible_slots, recommend, simulate, simulate_tiers, slot_count_ladder,
    sweep, Policy, SimStats, TierModel, Trace,
};

/// Parsed `phyloplace replay` options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// The captured trace file.
    pub trace_path: String,
    /// Slot counts to sweep (`None` = the automatic ladder).
    pub slots: Option<Vec<usize>>,
    /// Policies to replay (`None` = all, including the oracle).
    pub policies: Option<Vec<Policy>>,
    /// Oracle-proximity threshold for the recommendation, percent.
    pub threshold_pct: f64,
    /// Metrics JSON of the captured run: switches to verify mode.
    pub verify_metrics: Option<String>,
    /// Tier what-if model (`--tier-reload` enables it).
    pub tier: Option<TierModel>,
}

const USAGE: &str = "usage: phyloplace replay --trace TRACE.txt \
  [--slots N[,M,...]] [--policies cost,lru,...,belady|all] \
  [--threshold PCT] [--verify METRICS.json] \
  [--tier-reload NS [--tier-rate NS_PER_COST] [--tier-cap BYTES]]";

/// Parses `phyloplace replay` arguments (the leading `replay` token
/// included). Returns `Err(usage)` on any problem.
pub fn parse_replay(args: &[String]) -> Result<ReplayOptions, String> {
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("replay") => {}
        _ => return Err(USAGE.to_string()),
    }
    let mut trace_path = None;
    let mut opts = ReplayOptions {
        trace_path: String::new(),
        slots: None,
        policies: None,
        threshold_pct: 10.0,
        verify_metrics: None,
        tier: None,
    };
    let mut tier_reload: Option<f64> = None;
    let mut tier_rate: f64 = 0.0;
    let mut tier_cap: Option<u64> = None;
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--trace" => trace_path = Some(value()?),
            "--slots" => {
                let v = value()?;
                let counts = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad --slots entry {t:?}\n{USAGE}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                opts.slots = Some(counts);
            }
            "--policies" => {
                let v = value()?;
                if v == "all" {
                    opts.policies = None;
                } else {
                    let ps = v
                        .split(',')
                        .map(|t| {
                            Policy::parse(t.trim()).ok_or_else(|| {
                                format!(
                                    "bad --policies entry {t:?} (expected cost, lru, mru, \
                                     fifo, random, cost-lru, or belady)\n{USAGE}"
                                )
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    opts.policies = Some(ps);
                }
            }
            "--threshold" => {
                let v = value()?;
                let pct: f64 = v.parse().map_err(|_| format!("bad --threshold {v:?}\n{USAGE}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("bad --threshold {v:?}: must be >= 0\n{USAGE}"));
                }
                opts.threshold_pct = pct;
            }
            "--verify" => opts.verify_metrics = Some(value()?),
            "--tier-reload" | "--tier-rate" => {
                let v = value()?;
                let ns: f64 = v.parse().map_err(|_| format!("bad {flag} {v:?}\n{USAGE}"))?;
                if !ns.is_finite() || ns < 0.0 {
                    return Err(format!("bad {flag} {v:?}: must be >= 0\n{USAGE}"));
                }
                if flag == "--tier-reload" {
                    tier_reload = Some(ns);
                } else {
                    tier_rate = ns;
                }
            }
            "--tier-cap" => {
                let v = value()?;
                let cap: u64 = v.parse().map_err(|_| format!("bad --tier-cap {v:?}\n{USAGE}"))?;
                if cap == 0 {
                    return Err(format!("bad --tier-cap {v:?}: must be positive\n{USAGE}"));
                }
                tier_cap = Some(cap);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    opts.trace_path = trace_path.ok_or_else(|| format!("--trace is required\n{USAGE}"))?;
    match tier_reload {
        Some(reload_ns) => {
            opts.tier = Some(TierModel {
                reload_ns,
                recompute_ns_per_cost: tier_rate,
                capacity_bytes: tier_cap,
                entry_bytes: None,
            });
        }
        None if tier_rate != 0.0 || tier_cap.is_some() => {
            return Err(format!("--tier-rate/--tier-cap need --tier-reload\n{USAGE}"));
        }
        None => {}
    }
    Ok(opts)
}

/// Pulls one integer counter out of a `--metrics-json` document without
/// a JSON parser: finds the quoted key, then `: <digits>`.
fn json_counter(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The live counters a verify pass compares against.
fn live_stats(doc: &str) -> Result<SimStats, String> {
    let get = |key: &str| {
        json_counter(doc, key).ok_or_else(|| format!("metrics JSON has no {key:?} counter"))
    };
    Ok(SimStats {
        hits: get("slot.hits")?,
        misses: get("slot.misses")?,
        evictions: get("slot.evictions")?,
        installs: get("slot.installs")?,
        acquires: get("slot.acquires")?,
    })
}

fn fmt_stats(s: &SimStats) -> String {
    format!(
        "hits={} misses={} evictions={} installs={} acquires={}",
        s.hits, s.misses, s.evictions, s.installs, s.acquires
    )
}

/// Runs the replay lab; returns the report text to print.
pub fn run_replay(opts: &ReplayOptions) -> Result<String, String> {
    let text = std::fs::read_to_string(&opts.trace_path)
        .map_err(|e| format!("{}: {e}", opts.trace_path))?;
    let trace = Trace::parse(&text).map_err(|e| format!("{}: {e}", opts.trace_path))?;
    if trace.events.is_empty() {
        return Err(format!("{}: trace has no events", opts.trace_path));
    }
    let mut out = String::new();
    let meta = &trace.meta;
    out.push_str(&format!(
        "trace: {} events, {} distinct CLVs demanded, captured with strategy={} n_slots={}\n",
        trace.events.len(),
        trace.distinct_acquired(),
        if meta.strategy.is_empty() { "?" } else { &meta.strategy },
        meta.n_slots,
    ));

    if let Some(model) = &opts.tier {
        out.push_str(&tier_what_if(&trace, opts, model)?);
    }

    if let Some(metrics_path) = &opts.verify_metrics {
        return verify(&trace, opts, metrics_path, out);
    }

    let policies = opts.policies.clone().unwrap_or_else(Policy::all);
    let slot_counts = opts.slots.clone().unwrap_or_else(|| slot_count_ladder(&trace));
    out.push_str(&format!(
        "feasibility floor: {} slots (peak pinned set + 1)\n\n",
        min_feasible_slots(&trace)
    ));
    let rows = sweep(&trace, &slot_counts, &policies);

    // Miss-curve table: one line per slot count, one column per policy.
    out.push_str(&format!("{:>8} ", "slots"));
    for p in &policies {
        out.push_str(&format!("{:>10} ", p.to_string()));
    }
    out.push('\n');
    for &n in &slot_counts {
        out.push_str(&format!("{n:>8} "));
        for p in &policies {
            let cell = rows
                .iter()
                .find(|r| r.n_slots == n && r.policy == *p)
                .map(|r| match &r.outcome {
                    Ok(s) => s.misses.to_string(),
                    Err(_) => "stuck".to_string(),
                })
                .unwrap_or_default();
            out.push_str(&format!("{cell:>10} "));
        }
        out.push('\n');
    }

    // Recommendation for the captured policy (or the first requested
    // live policy when the trace carries no strategy name).
    let captured = Policy::parse(&meta.strategy)
        .or_else(|| policies.iter().find(|p| **p != Policy::Belady).copied());
    if let Some(policy) = captured {
        // The oracle cells may not have been swept explicitly; make sure
        // they exist for the recommendation.
        let rows = if policies.contains(&Policy::Belady) {
            rows
        } else {
            let mut all = rows;
            all.extend(sweep(&trace, &slot_counts, &[Policy::Belady]));
            all
        };
        match recommend(&rows, policy, opts.threshold_pct, meta.bytes_per_slot) {
            Some(rec) => {
                out.push_str(&format!(
                    "\nrecommendation: {} slots brings {} within {}% of the oracle \
                     ({} vs {} misses)",
                    rec.n_slots,
                    rec.policy,
                    opts.threshold_pct,
                    rec.policy_misses,
                    rec.oracle_misses,
                ));
                if rec.arena_bytes > 0 {
                    out.push_str(&format!(
                        " — slot arena ≈ {:.1} MiB (--maxmem floor)",
                        rec.arena_bytes as f64 / (1024.0 * 1024.0)
                    ));
                }
                out.push('\n');
            }
            None => out.push_str(&format!(
                "\nno swept slot count brings {policy} within {}% of the oracle; \
                 widen --slots or raise --threshold\n",
                opts.threshold_pct
            )),
        }
    }
    Ok(out)
}

/// The tier what-if block: model a tiered store against the captured
/// (or first requested) policy and slot count, and report how the
/// misses would have split into reloads vs recomputations.
fn tier_what_if(trace: &Trace, opts: &ReplayOptions, model: &TierModel) -> Result<String, String> {
    let meta = &trace.meta;
    let policy = Policy::parse(&meta.strategy)
        .or_else(|| {
            opts.policies.as_ref().and_then(|ps| ps.iter().find(|p| **p != Policy::Belady).copied())
        })
        .ok_or_else(|| "tier what-if needs a live policy (trace meta or --policies)".to_string())?;
    let n_slots =
        match meta.n_slots as usize {
            0 => *opts.slots.as_ref().and_then(|s| s.first()).ok_or_else(|| {
                "tier what-if needs a slot count (trace meta or --slots)".to_string()
            })?,
            n => n,
        };
    let s = simulate_tiers(trace, n_slots, policy, model).map_err(|e| e.to_string())?;
    let mut out = format!(
        "tier what-if ({policy}, {n_slots} slots, reload={:.0}ns):\n  \
         demotions={} drops_cost={} drops_budget={} reloads={} recomputes={}\n",
        model.reload_ns, s.demotions, s.drops_cost, s.drops_budget, s.reloads, s.recomputes,
    );
    if model.recompute_ns_per_cost > 0.0 {
        out.push_str(&format!(
            "  modeled miss time: {:.3}ms tiered vs {:.3}ms untiered (saved {:.3}ms)\n",
            (s.reload_ns_total + s.recompute_ns_total) as f64 / 1e6,
            s.untiered_ns_total as f64 / 1e6,
            s.saved_ns() as f64 / 1e6,
        ));
    }
    if let Some(c) = crossover_cost(model) {
        out.push_str(&format!(
            "  crossover: demotion pays above recompute cost {c:.2} (trace cost units)\n"
        ));
    }
    out.push('\n');
    Ok(out)
}

/// The differential pass: exact counter equality at the captured
/// configuration, plus the oracle bound over every live policy.
fn verify(
    trace: &Trace,
    opts: &ReplayOptions,
    metrics_path: &str,
    mut out: String,
) -> Result<String, String> {
    let meta = &trace.meta;
    let doc = std::fs::read_to_string(metrics_path).map_err(|e| format!("{metrics_path}: {e}"))?;
    let live = live_stats(&doc)?;
    let policy = Policy::parse(&meta.strategy)
        .ok_or_else(|| format!("trace names unknown strategy {:?}", meta.strategy))?;
    let n_slots = meta.n_slots as usize;
    if n_slots == 0 {
        return Err("trace meta has no slot count".to_string());
    }
    let sim = simulate(trace, n_slots, policy).map_err(|e| e.to_string())?;
    if sim != live {
        return Err(format!(
            "differential MISMATCH for {policy} at {n_slots} slots:\n  simulated: {}\n  live:      {}",
            fmt_stats(&sim),
            fmt_stats(&live)
        ));
    }
    out.push_str(&format!(
        "verified: simulated counters match the live run exactly ({policy}, {n_slots} slots: {})\n",
        fmt_stats(&sim)
    ));

    // Per-policy miss line at the captured slot count, oracle last.
    let policies = opts.policies.clone().unwrap_or_else(Policy::all);
    let mut oracle_misses = None;
    for p in &policies {
        match simulate(trace, n_slots, *p) {
            Ok(s) => {
                let tag = if *p == Policy::Belady { "  (oracle floor)" } else { "" };
                out.push_str(&format!(
                    "  {:<10} misses={:<8} miss-rate={:.4}{tag}\n",
                    p.to_string(),
                    s.misses,
                    s.miss_rate()
                ));
                if *p == Policy::Belady {
                    oracle_misses = Some(s.misses);
                }
            }
            Err(e) => out.push_str(&format!("  {:<10} {e}\n", p.to_string())),
        }
    }
    let oracle = match oracle_misses {
        Some(m) => m,
        None => simulate(trace, n_slots, Policy::Belady).map_err(|e| e.to_string())?.misses,
    };
    if oracle > live.misses {
        return Err(format!(
            "oracle bound VIOLATED: belady simulated {oracle} misses > live {} — \
             the oracle must never lose",
            live.misses
        ));
    }
    out.push_str(&format!("oracle bound holds: belady {oracle} <= live {} misses\n", live.misses));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_requires_trace() {
        let args: Vec<String> = vec!["replay".into()];
        assert!(parse_replay(&args).unwrap_err().contains("--trace is required"));
        let args: Vec<String> = vec!["place".into()];
        assert!(parse_replay(&args).is_err());
    }

    #[test]
    fn parse_accepts_the_full_surface() {
        let args: Vec<String> = [
            "replay",
            "--trace",
            "t.txt",
            "--slots",
            "2,4,8",
            "--policies",
            "lru,belady",
            "--threshold",
            "5",
            "--verify",
            "m.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_replay(&args).unwrap();
        assert_eq!(o.trace_path, "t.txt");
        assert_eq!(o.slots, Some(vec![2, 4, 8]));
        assert_eq!(o.policies, Some(vec![Policy::parse("lru").unwrap(), Policy::Belady]));
        assert_eq!(o.threshold_pct, 5.0);
        assert_eq!(o.verify_metrics.as_deref(), Some("m.json"));
    }

    #[test]
    fn parse_rejects_bad_values() {
        let base = |extra: &[&str]| -> Vec<String> {
            ["replay", "--trace", "t.txt"].iter().chain(extra).map(|s| s.to_string()).collect()
        };
        assert!(parse_replay(&base(&["--slots", "0"])).is_err());
        assert!(parse_replay(&base(&["--slots", "2,x"])).is_err());
        assert!(parse_replay(&base(&["--policies", "optimal-ish"])).is_err());
        assert!(parse_replay(&base(&["--threshold", "-1"])).is_err());
        assert!(parse_replay(&base(&["--bogus"])).is_err());
    }

    #[test]
    fn parse_tier_flags_build_a_model() {
        let base = |extra: &[&str]| -> Vec<String> {
            ["replay", "--trace", "t.txt"].iter().chain(extra).map(|s| s.to_string()).collect()
        };
        let o = parse_replay(&base(&[
            "--tier-reload",
            "5000",
            "--tier-rate",
            "12.5",
            "--tier-cap",
            "1000000",
        ]))
        .unwrap();
        let m = o.tier.unwrap();
        assert_eq!(m.reload_ns, 5000.0);
        assert_eq!(m.recompute_ns_per_cost, 12.5);
        assert_eq!(m.capacity_bytes, Some(1_000_000));
        // Dependent flags without the enabler must be rejected.
        assert!(parse_replay(&base(&["--tier-rate", "1"])).is_err());
        assert!(parse_replay(&base(&["--tier-cap", "0", "--tier-reload", "1"])).is_err());
        assert!(parse_replay(&base(&["--tier-reload", "-3"])).is_err());
    }

    #[test]
    fn tier_what_if_renders_in_sweep_mode() {
        let dir = std::env::temp_dir().join(format!("phyloplace-tiersim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        let mut text = String::from(
            "#phylo-slot-trace v1\n#meta n_clvs=6 n_slots=2 strategy=lru bytes_per_slot=1000\n#costs 4.0 4.0 4.0 4.0 4.0 4.0\n",
        );
        for _ in 0..5 {
            for clv in 0..6 {
                text.push_str(&format!("a {clv}\n"));
            }
        }
        std::fs::write(&path, &text).unwrap();
        let opts = ReplayOptions {
            trace_path: path.to_str().unwrap().into(),
            slots: None,
            policies: Some(vec![Policy::parse("lru").unwrap(), Policy::Belady]),
            threshold_pct: 10.0,
            verify_metrics: None,
            tier: Some(TierModel {
                reload_ns: 100.0,
                recompute_ns_per_cost: 1000.0,
                capacity_bytes: None,
                entry_bytes: None,
            }),
        };
        let out = run_replay(&opts).unwrap();
        assert!(out.contains("tier what-if"), "{out}");
        assert!(out.contains("crossover"), "{out}");
        assert!(out.contains("saved"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_counter_handles_the_metrics_format() {
        let doc = "{\n  \"counters\": {\n    \"slot.misses\": 42,\n    \"slot.hits\": 7\n  }\n}";
        assert_eq!(json_counter(doc, "slot.misses"), Some(42));
        assert_eq!(json_counter(doc, "slot.hits"), Some(7));
        assert_eq!(json_counter(doc, "slot.evictions"), None);
    }

    #[test]
    fn sweep_mode_renders_a_table_and_recommendation() {
        let dir = std::env::temp_dir().join(format!("phyloplace-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        let mut text = String::from(
            "#phylo-slot-trace v1\n#meta n_clvs=6 n_slots=2 strategy=lru bytes_per_slot=1000\n",
        );
        for _ in 0..5 {
            for clv in 0..6 {
                text.push_str(&format!("a {clv}\n"));
            }
        }
        std::fs::write(&path, &text).unwrap();
        let opts = ReplayOptions {
            trace_path: path.to_str().unwrap().into(),
            slots: None,
            policies: Some(vec![Policy::parse("lru").unwrap(), Policy::Belady]),
            threshold_pct: 10.0,
            verify_metrics: None,
            tier: None,
        };
        let out = run_replay(&opts).unwrap();
        assert!(out.contains("belady"), "{out}");
        assert!(out.contains("recommendation"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_mode_matches_a_hand_built_run() {
        // Trace: 0 1 2 0 over 2 slots, lru -> misses 0,1,2 then 0 misses
        // again (evicted by 2). hits=0 misses=4 evictions=2.
        let dir = std::env::temp_dir().join(format!("phyloplace-verify-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tpath = dir.join("t.txt");
        std::fs::write(
            &tpath,
            "#phylo-slot-trace v1\n#meta n_clvs=3 n_slots=2 strategy=lru bytes_per_slot=0\na 0\na 1\na 2\na 0\n",
        )
        .unwrap();
        let mpath = dir.join("m.json");
        std::fs::write(
            &mpath,
            "{\n  \"counters\": {\n    \"slot.hits\": 0,\n    \"slot.misses\": 4,\n    \"slot.evictions\": 2,\n    \"slot.installs\": 4,\n    \"slot.acquires\": 4\n  }\n}",
        )
        .unwrap();
        let opts = ReplayOptions {
            trace_path: tpath.to_str().unwrap().into(),
            slots: None,
            policies: None,
            threshold_pct: 10.0,
            verify_metrics: Some(mpath.to_str().unwrap().into()),
            tier: None,
        };
        let out = run_replay(&opts).unwrap();
        assert!(out.contains("verified"), "{out}");
        assert!(out.contains("oracle bound holds"), "{out}");
        // A doctored metrics file must fail loudly.
        std::fs::write(
            &mpath,
            "{\n  \"counters\": {\n    \"slot.hits\": 1,\n    \"slot.misses\": 3,\n    \"slot.evictions\": 2,\n    \"slot.installs\": 4,\n    \"slot.acquires\": 4\n  }\n}",
        )
        .unwrap();
        let err = run_replay(&opts).unwrap_err();
        assert!(err.contains("MISMATCH"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
