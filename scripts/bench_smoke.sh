#!/usr/bin/env bash
# Bench smoke: compile every benchmark, then run the kernel suite in
# quick mode and record the JSON baseline next to this script's repo
# root. Intended for CI and for refreshing BENCH_kernels.json after
# kernel changes.
#
# Usage: scripts/bench_smoke.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
# Absolute path: cargo runs the bench binary with the package dir as
# cwd, so a relative path would land in crates/bench/.
out="$(pwd)/${1:-BENCH_kernels.json}"

# All benchmarks must at least compile.
cargo bench --no-run

# Short measurement pass over the kernel suite; writes $out.
CRITERION_QUICK=1 CRITERION_JSON="$out" cargo bench -p bench --bench kernels

echo "wrote $out"
