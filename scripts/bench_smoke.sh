#!/usr/bin/env bash
# Bench smoke: compile every benchmark, then run the kernel suite in
# quick mode and record the JSON baseline next to this script's repo
# root. Intended for CI and for refreshing BENCH_kernels.json after
# kernel changes.
#
# Usage: scripts/bench_smoke.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
# Absolute path: cargo runs the bench binary with the package dir as
# cwd, so a relative path would land in crates/bench/.
out="$(pwd)/${1:-BENCH_kernels.json}"

# All benchmarks must at least compile.
cargo bench --no-run

# Short measurement pass over the kernel suite; writes $out.
CRITERION_QUICK=1 CRITERION_JSON="$out" cargo bench -p bench --bench kernels

echo "wrote $out"

# Per-tier throughput summary straight from the JSON export: one line
# per workload with the reference/fixed/simd rates side by side, so a
# tier regression is visible in the CI log without opening the file.
python3 - "$out" <<'EOF'
import json, sys
from collections import defaultdict
rows = [r for r in json.load(open(sys.argv[1])) if r["group"] == "kernel_tier"]
by_workload = defaultdict(dict)
for r in rows:
    tier, workload = r["bench"].split("/", 1)
    by_workload[workload][tier] = r["throughput_per_sec"]
for workload, tiers in sorted(by_workload.items()):
    parts = [f"{t}={tiers[t] / 1e6:.1f} Melem/s" for t in ("reference", "fixed", "simd") if t in tiers]
    print(f"kernel tiers [{workload}]: " + "  ".join(parts))
EOF

# Observability smoke: an end-to-end CLI run under a tight --maxmem must
# emit a metrics JSON that parses and shows real slot traffic (non-zero
# slot.misses — CLVs were recomputed under the budget).
echo "==> observability smoke (--metrics-json under tight --maxmem)"
cargo build --release --features obs --bin phyloplace
obsdir="$(mktemp -d -t obs_smoke.XXXXXX)"
trap 'rm -rf "$obsdir"' EXIT
cat > "$obsdir/ref.nwk" <<'EOF'
((A:0.1,B:0.2):0.05,(C:0.15,D:0.1):0.05,E:0.3);
EOF
cat > "$obsdir/ref.fasta" <<'EOF'
>A
ACGTACGTAC
>B
ACGTACGTCC
>C
ACTTACGAAC
>D
ACTTACGTAC
>E
GCTTACGTAA
EOF
cat > "$obsdir/q.fasta" <<'EOF'
>q1
ACGTACGTAC
>q2
ACTTACG-AC
EOF
target/release/phyloplace place \
  --tree "$obsdir/ref.nwk" --ref-msa "$obsdir/ref.fasta" --queries "$obsdir/q.fasta" \
  --maxmem 1 --chunk 1 \
  --out "$obsdir/out.jplace" \
  --metrics-json "$obsdir/metrics.json" --trace "$obsdir/trace.json"
python3 - "$obsdir/metrics.json" "$obsdir/trace.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
misses = metrics["counters"]["slot.misses"]
assert misses > 0, f"expected non-zero slot.misses, got {misses}"
hits = metrics["counters"]["slot.hits"]
acquires = metrics["counters"]["slot.acquires"]
assert hits + misses == acquires, f"{hits} + {misses} != {acquires}"
trace = json.load(open(sys.argv[2]))
names = {e["name"] for e in trace["traceEvents"]}
assert "prescore" in names and "thorough" in names, f"missing phase spans: {sorted(names)}"
print(f"metrics OK: hits={hits} misses={misses} acquires={acquires}; "
      f"trace OK: {len(trace['traceEvents'])} events")
EOF

# Checkpoint-journal overhead: the same CI-scale run with and without
# --checkpoint, reported as % wall-clock. The journal fsyncs one frame
# per chunk; this keeps an eye on that cost as chunk/frame sizes evolve.
echo "==> checkpoint journal overhead (journal on vs off)"
cargo build --release --bin phyloplace
cargo build --release -q --example export_dataset
jdir="$(mktemp -d -t journal_smoke.XXXXXX)"
trap 'rm -rf "$obsdir" "$jdir"' EXIT
target/release/examples/export_dataset "$jdir"
journal_args=(place --tree "$jdir/ref.nwk" --ref-msa "$jdir/ref.fasta"
              --queries "$jdir/query.fasta" --chunk 4)
bin=target/release/phyloplace
# Warm-up, then 3 timed repeats of each mode (best-of to damp noise).
"$bin" "${journal_args[@]}" --out "$jdir/warm.jplace"
best_ns() { # best_ns <label> [extra args...]
    local label="$1"; shift
    local best=""
    for _ in 1 2 3; do
        local t0 t1 dt
        t0=$(date +%s%N)
        "$bin" "${journal_args[@]}" "$@" --out "$jdir/$label.jplace" >/dev/null 2>&1
        t1=$(date +%s%N)
        dt=$((t1 - t0))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
    done
    echo "$best"
}
off_ns=$(best_ns off)
rm -rf "$jdir/ckpt"
on_ns=$(best_ns on --checkpoint "$jdir/ckpt")
cmp "$jdir/off.jplace" "$jdir/on.jplace" \
    || { echo "journaling changed the output"; exit 1; }
python3 - "$off_ns" "$on_ns" <<'EOF'
import sys
off, on = int(sys.argv[1]), int(sys.argv[2])
pct = 100.0 * (on - off) / off if off else float("nan")
print(f"journal overhead: off={off/1e6:.1f} ms, on={on/1e6:.1f} ms, "
      f"delta={pct:+.1f}% wall-clock (best of 3)")
EOF

# Storage-tier bench: drive the real demote/reload pipeline per tier on
# one DNA and one protein reference and refresh BENCH_tiers.json — the
# measured reload latencies and the recompute-vs-reload crossover the
# demote-vs-drop cost model steers by. One summary line per
# dataset × tier lands in the CI log.
echo "==> storage-tier reload latency vs recompute crossover"
tiers_out="$(pwd)/BENCH_tiers.json"
cargo run --release -q --example bench_tiers -- "$tiers_out"
python3 - "$tiers_out" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
assert rows, "bench_tiers produced no rows"
for r in rows:
    assert r["reload_ns"] > 0, f"unmeasured reload latency: {r}"
    print(f"tier [{r['dataset']}/{r['alphabet']}/{r['tier']}]: "
          f"reload={r['reload_ns']/1e3:.1f}us  "
          f"recompute={r['recompute_ns_per_cost']:.0f}ns/cost  "
          f"crossover@cost={r['crossover_cost']:.0f}")
EOF

# Daemon warm-vs-cold latency: the speedup the placement service exists
# for, refreshed into BENCH_serve.json. The warm (daemon request path)
# mean must beat the cold rebuild-per-request mean, or serving is
# pointless and the bench fails.
echo "==> daemon warm-request latency vs cold start"
serve_out="$(pwd)/BENCH_serve.json"
cargo run --release -q --example bench_serve -- "$serve_out"
python3 - "$serve_out" <<'EOF'
import json, sys
rows = {r["mode"]: r for r in json.load(open(sys.argv[1]))}
warm, cold = rows["warm"], rows["cold_engine"]
assert warm["mean_ns"] < cold["mean_ns"], \
    f"warm requests ({warm['mean_ns']:.0f}ns) not faster than cold ({cold['mean_ns']:.0f}ns)"
speedup = cold["mean_ns"] / warm["mean_ns"]
line = f"serve speedup: warm={warm['mean_ns']/1e3:.1f}us cold={cold['mean_ns']/1e3:.1f}us ({speedup:.1f}x)"
if "cold_process" in rows:
    line += f"  cold_process={rows['cold_process']['mean_ns']/1e6:.1f}ms"
print(line)
EOF

# Replacement-policy smoke: one tight-budget traced run per policy, then
# the offline replay reports that policy's miss rate next to the Belady
# oracle's floor at the same slot count — the paper's eviction ablation
# in one screenful, with each line backed by a bit-exact differential
# (`replay --verify` fails unless simulator and live counters agree).
echo "==> replacement-policy miss rates (live vs clairvoyant oracle)"
for policy in cost lru mru fifo random cost-lru; do
    "$bin" place --tree "$jdir/ref.nwk" --ref-msa "$jdir/ref.fasta" \
        --queries "$jdir/query.fasta" --chunk 7 --maxmem 300K --no-lookup \
        --strategy "$policy" --slot-trace "$jdir/$policy.trace" \
        --metrics-json "$jdir/$policy.metrics.json" \
        --out "$jdir/$policy.jplace" >/dev/null 2>&1
    "$bin" replay --trace "$jdir/$policy.trace" \
        --verify "$jdir/$policy.metrics.json" \
        | grep -E "^  ($policy|belady) " \
        || { echo "$policy: replay differential failed"; exit 1; }
done
