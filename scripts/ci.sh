#!/usr/bin/env bash
# The full CI gate: release build, the test suite, formatting, and a
# single-iteration bench smoke pass (compiles every benchmark and runs
# the kernel suite in quick mode, writing the baseline to a throwaway
# file so the committed BENCH_kernels.json is not churned).
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --features faults --test faults (fault matrix)"
cargo test -q --features faults --test faults

echo "==> cargo test -q --features obs (suite again with live observability probes)"
cargo test -q --features obs

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (single quick pass)"
scripts/bench_smoke.sh "$(mktemp -t bench_smoke.XXXXXX.json)"

echo "==> CI OK"
