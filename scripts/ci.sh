#!/usr/bin/env bash
# The full CI gate: release build, the test suite, formatting, and a
# single-iteration bench smoke pass (compiles every benchmark and runs
# the kernel suite in quick mode, writing the baseline to a throwaway
# file so the committed BENCH_kernels.json is not churned).
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> cargo test -q"
cargo test -q

# The kernel crate's differential + proptest suite, once per tier: the
# dispatch must be correct no matter what PHYLO_KERNEL_TIER pins, and
# the forced-fallback run (simd tier + portable backend) is what a
# non-AVX2 host executes, so it is exercised on every CI machine.
for tier in reference fixed simd; do
    echo "==> cargo test -q -p phylo-kernel (PHYLO_KERNEL_TIER=$tier)"
    PHYLO_KERNEL_TIER="$tier" cargo test -q -p phylo-kernel
done
echo "==> cargo test -q -p phylo-kernel (simd tier, forced portable fallback)"
PHYLO_KERNEL_TIER=simd PHYLO_SIMD_PORTABLE=1 cargo test -q -p phylo-kernel

echo "==> cargo test -q --features faults --test faults (fault matrix)"
cargo test -q --features faults --test faults

echo "==> cargo test -q --features faults --test crash_resume (kill-and-resume matrix)"
cargo test -q --features faults --test crash_resume

echo "==> shell-level interrupt + resume smoke (deadline -> exit 3 -> --resume -> byte-compare)"
smoke_dir=$(mktemp -d -t crash_smoke.XXXXXX)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q --example export_dataset -- "$smoke_dir"
bin=target/release/phyloplace
place_args=(place --tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta"
            --queries "$smoke_dir/query.fasta" --chunk 7)
"$bin" "${place_args[@]}" --out "$smoke_dir/full.jplace"
# A zero deadline cancels at the first chunk boundary: the run must
# exit 3, leave a valid partial jplace, and a replayable journal.
rc=0
"$bin" "${place_args[@]}" --checkpoint "$smoke_dir/ckpt" --deadline 0 \
    --out "$smoke_dir/partial.jplace" || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 from interrupted run, got $rc"; exit 1; }
grep -q '"completed": false' "$smoke_dir/partial.jplace" \
    || { echo "partial jplace not marked incomplete"; exit 1; }
"$bin" "${place_args[@]}" --resume "$smoke_dir/ckpt" --out "$smoke_dir/resumed.jplace"
cmp "$smoke_dir/full.jplace" "$smoke_dir/resumed.jplace" \
    || { echo "resumed jplace differs from uninterrupted run"; exit 1; }
echo "    interrupt/resume smoke OK (resumed output byte-identical)"

echo "==> replay differential (capture -> replay -> exact counter compare, per policy)"
# A tight budget with the lookup table disabled forces real eviction
# traffic; the offline simulator must then reproduce the live slot.*
# counters bit-exactly from the captured trace (DESIGN.md §10).
for policy in cost lru mru fifo random cost-lru; do
    "$bin" "${place_args[@]}" --maxmem 300K --no-lookup --strategy "$policy" \
        --slot-trace "$smoke_dir/$policy.trace" \
        --metrics-json "$smoke_dir/$policy.metrics.json" \
        --out "$smoke_dir/$policy.jplace" >/dev/null 2>&1
    grep -q '"slot.evictions": 0' "$smoke_dir/$policy.metrics.json" \
        && { echo "$policy: no evictions — the differential run is not under pressure"; exit 1; }
    "$bin" replay --trace "$smoke_dir/$policy.trace" \
        --verify "$smoke_dir/$policy.metrics.json" \
        | grep -E 'verified|oracle bound holds' \
        || { echo "$policy: replay differential failed"; exit 1; }
done
echo "    replay differential OK (all policies bit-exact, oracle bound holds)"

echo "==> tiered-storage pass (tight --maxmem + compressed/disk tiers -> byte-compare)"
# A slot budget below the working set with demotion to a compressed RAM
# tier and a disk arena: the tiers may only change *where* CLV bytes
# wait, never the likelihoods — the jplace must match the unconstrained
# run byte-for-byte, and the metrics must show real demotion traffic.
tier_dir="$smoke_dir/tiers"
mkdir -p "$tier_dir"
"$bin" "${place_args[@]}" --maxmem 300K --no-lookup \
    --storage-tiers compressed,disk --tier-dir "$tier_dir" \
    --metrics-json "$smoke_dir/tiered.metrics.json" \
    --out "$smoke_dir/tiered.jplace" >/dev/null 2>&1
cmp "$smoke_dir/full.jplace" "$smoke_dir/tiered.jplace" \
    || { echo "tiered run differs from unconstrained run"; exit 1; }
grep -q '"tier.demotions": 0' "$smoke_dir/tiered.metrics.json" \
    && { echo "tiered run demoted nothing — the pass is not under pressure"; exit 1; }
grep -q '"tier.demotions"' "$smoke_dir/tiered.metrics.json" \
    || { echo "tier counters missing from metrics JSON"; exit 1; }
# Same run under a tiny tier budget: demotions become drops, output
# still byte-identical (drops degrade to recomputation, not to wrong
# likelihoods).
"$bin" "${place_args[@]}" --maxmem 300K --no-lookup \
    --storage-tiers compressed,disk --tier-dir "$tier_dir" --tier-budget 1K \
    --metrics-json "$smoke_dir/tiercap.metrics.json" \
    --out "$smoke_dir/tiercap.jplace" >/dev/null 2>&1
cmp "$smoke_dir/full.jplace" "$smoke_dir/tiercap.jplace" \
    || { echo "budget-capped tiered run differs from unconstrained run"; exit 1; }
grep -q '"tier.drops_budget": 0' "$smoke_dir/tiercap.metrics.json" \
    && { echo "1K tier budget dropped nothing"; exit 1; }
echo "    tiered-storage OK (demotions under pressure, output byte-identical)"

echo "==> cargo test -q --features faults --test shard_supervision (fleet chaos matrix)"
cargo test -q --features faults --test shard_supervision

echo "==> shell-level shard chaos (crash + hang injection -> requeue -> byte-compare)"
# The release binary has no fault hooks, so the chaos fleet runs the
# faults-enabled debug binary end-to-end: a worker SIGKILL-dies right
# after journaling a chunk, another hangs silently; the coordinator
# must requeue both and still merge output byte-identical to a serial
# run of the same binary.
cargo build -q --features faults
fbin=target/debug/phyloplace
shard_args=(shard --tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta"
            --queries "$smoke_dir/query.fasta" --chunk 7 --shards 3)
"$fbin" place --tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta" \
    --queries "$smoke_dir/query.fasta" --chunk 7 --out "$smoke_dir/fserial.jplace"
PHYLO_FAULTS_SHARD_0="shard::worker_crash=once:1" \
    "$fbin" "${shard_args[@]}" --workdir "$smoke_dir/chaos-crash" \
    --out "$smoke_dir/chaos-crash.jplace" --metrics-json "$smoke_dir/chaos-crash.metrics.json"
cmp "$smoke_dir/fserial.jplace" "$smoke_dir/chaos-crash.jplace" \
    || { echo "crash-injected shard run differs from serial"; exit 1; }
grep -q '"shard.requeues": 0' "$smoke_dir/chaos-crash.metrics.json" \
    && { echo "crashed worker was not requeued"; exit 1; }
PHYLO_FAULTS_SHARD_1="shard::worker_hang=once" \
    "$fbin" "${shard_args[@]}" --workdir "$smoke_dir/chaos-hang" --heartbeat-timeout 1 \
    --out "$smoke_dir/chaos-hang.jplace" --metrics-json "$smoke_dir/chaos-hang.metrics.json"
cmp "$smoke_dir/fserial.jplace" "$smoke_dir/chaos-hang.jplace" \
    || { echo "hang-injected shard run differs from serial"; exit 1; }
grep -q '"shard.hangs": 0' "$smoke_dir/chaos-hang.metrics.json" \
    && { echo "hung worker was not detected"; exit 1; }
echo "    shard chaos OK (crash + hang requeued, merged output byte-identical)"

echo "==> daemon pass (phyloplaced: typed per-request errors, byte-identity, SIGTERM drain)"
# The service contract end-to-end: concurrent requests where one is past
# its deadline and one is malformed must each get a typed response, the
# good response must be byte-identical to a cold `phyloplace place` run,
# and SIGTERM during an open session must drain to exit 0.
dbin=target/release/phyloplaced
serve_dir="$smoke_dir/serve"
mkdir -p "$serve_dir"
python3 - "$smoke_dir/query.fasta" "$serve_dir" <<'PY'
import json, sys
qfa, outdir = sys.argv[1], sys.argv[2]
recs = ['>' + r for r in open(qfa).read().split('>') if r.strip()]
open(outdir + '/q0.fasta', 'w').write(recs[0])
with open(outdir + '/requests.ndjson', 'w') as f:
    f.write(json.dumps({"id": "good", "op": "place", "queries": recs[0]}) + "\n")
    f.write(json.dumps({"id": "late", "op": "place", "queries": recs[1],
                        "deadline_ms": -1}) + "\n")
    f.write("this is not a request\n")
    f.write(json.dumps({"id": "st", "op": "status"}) + "\n")
PY
serve_args=(--tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta")
"$dbin" "${serve_args[@]}" < "$serve_dir/requests.ndjson" \
    > "$serve_dir/responses.ndjson" 2>/dev/null \
    || { echo "daemon EOF drain did not exit 0"; exit 1; }
"$bin" place "${serve_args[@]}" --queries "$serve_dir/q0.fasta" \
    > "$serve_dir/cold.jplace" 2>/dev/null
python3 - "$serve_dir" <<'PY'
import json, sys
d = sys.argv[1]
codes, jplace = {}, None
for line in open(d + '/responses.ndjson'):
    r = json.loads(line)
    codes[r.get('id', '')] = r['code']
    if r.get('id') == 'good':
        jplace = r['jplace']
assert codes.get('good') == 'Ok', codes
assert codes.get('late') == 'Deadline', codes
assert codes.get('') == 'BadRequest', codes
assert codes.get('st') == 'Ok', codes
open(d + '/warm.jplace', 'w').write(jplace)
PY
cmp "$serve_dir/cold.jplace" "$serve_dir/warm.jplace" \
    || { echo "daemon response differs from cold place run"; exit 1; }
# SIGTERM drain: stdin stays open through a fifo; the daemon must answer
# the in-flight request, then exit 0 on SIGTERM without waiting for EOF.
mkfifo "$serve_dir/in"
"$dbin" "${serve_args[@]}" < "$serve_dir/in" > "$serve_dir/drain.ndjson" 2>/dev/null &
dpid=$!
exec 3> "$serve_dir/in"
head -1 "$serve_dir/requests.ndjson" >&3
for _ in $(seq 1 300); do [ -s "$serve_dir/drain.ndjson" ] && break; sleep 0.1; done
[ -s "$serve_dir/drain.ndjson" ] || { echo "daemon never answered"; exit 1; }
kill -TERM "$dpid"
rc=0; wait "$dpid" || rc=$?
exec 3>&-
[ "$rc" -eq 0 ] || { echo "SIGTERM drain exited $rc, want 0"; exit 1; }
grep -q '"code":"Ok"' "$serve_dir/drain.ndjson" \
    || { echo "drained daemon lost its in-flight response"; exit 1; }
echo "    daemon pass OK (typed codes, byte-identity, SIGTERM drain -> 0)"

echo "==> daemon chaos (mid-request crash isolated to its request)"
# The faults-enabled debug build through the `phyloplace serve` alias:
# one injected mid-request panic must yield exactly one typed Internal
# error while every other concurrent request still gets its bytes.
python3 - "$smoke_dir/query.fasta" "$serve_dir" <<'PY'
import json, sys
recs = ['>' + r for r in open(sys.argv[1]).read().split('>') if r.strip()]
with open(sys.argv[2] + '/chaos.ndjson', 'w') as f:
    for i in range(3):
        f.write(json.dumps({"id": f"c{i}", "op": "place", "queries": recs[i]}) + "\n")
PY
PHYLO_FAULTS="serve::mid_request_crash=once" \
    "$fbin" serve "${serve_args[@]}" < "$serve_dir/chaos.ndjson" \
    > "$serve_dir/chaos-out.ndjson" 2>/dev/null \
    || { echo "chaos daemon did not drain to exit 0"; exit 1; }
python3 - "$serve_dir/chaos-out.ndjson" <<'PY'
import json, sys
codes = [json.loads(l)['code'] for l in open(sys.argv[1])]
assert sorted(codes) == ['Internal', 'Ok', 'Ok'], codes
PY
echo "    daemon chaos OK (one Internal, siblings served)"

echo "==> cargo test -q --features obs (suite again with live observability probes)"
cargo test -q --features obs

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (single quick pass)"
scripts/bench_smoke.sh "$(mktemp -t bench_smoke.XXXXXX.json)"

echo "==> CI OK"
