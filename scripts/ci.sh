#!/usr/bin/env bash
# The full CI gate: release build, the test suite, formatting, and a
# single-iteration bench smoke pass (compiles every benchmark and runs
# the kernel suite in quick mode, writing the baseline to a throwaway
# file so the committed BENCH_kernels.json is not churned).
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> cargo test -q"
cargo test -q

# The kernel crate's differential + proptest suite, once per tier: the
# dispatch must be correct no matter what PHYLO_KERNEL_TIER pins, and
# the forced-fallback run (simd tier + portable backend) is what a
# non-AVX2 host executes, so it is exercised on every CI machine.
for tier in reference fixed simd; do
    echo "==> cargo test -q -p phylo-kernel (PHYLO_KERNEL_TIER=$tier)"
    PHYLO_KERNEL_TIER="$tier" cargo test -q -p phylo-kernel
done
echo "==> cargo test -q -p phylo-kernel (simd tier, forced portable fallback)"
PHYLO_KERNEL_TIER=simd PHYLO_SIMD_PORTABLE=1 cargo test -q -p phylo-kernel

echo "==> cargo test -q --features faults --test faults (fault matrix)"
cargo test -q --features faults --test faults

echo "==> cargo test -q --features faults --test crash_resume (kill-and-resume matrix)"
cargo test -q --features faults --test crash_resume

echo "==> shell-level interrupt + resume smoke (deadline -> exit 3 -> --resume -> byte-compare)"
smoke_dir=$(mktemp -d -t crash_smoke.XXXXXX)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q --example export_dataset -- "$smoke_dir"
bin=target/release/phyloplace
place_args=(place --tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta"
            --queries "$smoke_dir/query.fasta" --chunk 7)
"$bin" "${place_args[@]}" --out "$smoke_dir/full.jplace"
# A zero deadline cancels at the first chunk boundary: the run must
# exit 3, leave a valid partial jplace, and a replayable journal.
rc=0
"$bin" "${place_args[@]}" --checkpoint "$smoke_dir/ckpt" --deadline 0 \
    --out "$smoke_dir/partial.jplace" || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 from interrupted run, got $rc"; exit 1; }
grep -q '"completed": false' "$smoke_dir/partial.jplace" \
    || { echo "partial jplace not marked incomplete"; exit 1; }
"$bin" "${place_args[@]}" --resume "$smoke_dir/ckpt" --out "$smoke_dir/resumed.jplace"
cmp "$smoke_dir/full.jplace" "$smoke_dir/resumed.jplace" \
    || { echo "resumed jplace differs from uninterrupted run"; exit 1; }
echo "    interrupt/resume smoke OK (resumed output byte-identical)"

echo "==> replay differential (capture -> replay -> exact counter compare, per policy)"
# A tight budget with the lookup table disabled forces real eviction
# traffic; the offline simulator must then reproduce the live slot.*
# counters bit-exactly from the captured trace (DESIGN.md §10).
for policy in cost lru mru fifo random cost-lru; do
    "$bin" "${place_args[@]}" --maxmem 300K --no-lookup --strategy "$policy" \
        --slot-trace "$smoke_dir/$policy.trace" \
        --metrics-json "$smoke_dir/$policy.metrics.json" \
        --out "$smoke_dir/$policy.jplace" >/dev/null 2>&1
    grep -q '"slot.evictions": 0' "$smoke_dir/$policy.metrics.json" \
        && { echo "$policy: no evictions — the differential run is not under pressure"; exit 1; }
    "$bin" replay --trace "$smoke_dir/$policy.trace" \
        --verify "$smoke_dir/$policy.metrics.json" \
        | grep -E 'verified|oracle bound holds' \
        || { echo "$policy: replay differential failed"; exit 1; }
done
echo "    replay differential OK (all policies bit-exact, oracle bound holds)"

echo "==> tiered-storage pass (tight --maxmem + compressed/disk tiers -> byte-compare)"
# A slot budget below the working set with demotion to a compressed RAM
# tier and a disk arena: the tiers may only change *where* CLV bytes
# wait, never the likelihoods — the jplace must match the unconstrained
# run byte-for-byte, and the metrics must show real demotion traffic.
tier_dir="$smoke_dir/tiers"
mkdir -p "$tier_dir"
"$bin" "${place_args[@]}" --maxmem 300K --no-lookup \
    --storage-tiers compressed,disk --tier-dir "$tier_dir" \
    --metrics-json "$smoke_dir/tiered.metrics.json" \
    --out "$smoke_dir/tiered.jplace" >/dev/null 2>&1
cmp "$smoke_dir/full.jplace" "$smoke_dir/tiered.jplace" \
    || { echo "tiered run differs from unconstrained run"; exit 1; }
grep -q '"tier.demotions": 0' "$smoke_dir/tiered.metrics.json" \
    && { echo "tiered run demoted nothing — the pass is not under pressure"; exit 1; }
grep -q '"tier.demotions"' "$smoke_dir/tiered.metrics.json" \
    || { echo "tier counters missing from metrics JSON"; exit 1; }
# Same run under a tiny tier budget: demotions become drops, output
# still byte-identical (drops degrade to recomputation, not to wrong
# likelihoods).
"$bin" "${place_args[@]}" --maxmem 300K --no-lookup \
    --storage-tiers compressed,disk --tier-dir "$tier_dir" --tier-budget 1K \
    --metrics-json "$smoke_dir/tiercap.metrics.json" \
    --out "$smoke_dir/tiercap.jplace" >/dev/null 2>&1
cmp "$smoke_dir/full.jplace" "$smoke_dir/tiercap.jplace" \
    || { echo "budget-capped tiered run differs from unconstrained run"; exit 1; }
grep -q '"tier.drops_budget": 0' "$smoke_dir/tiercap.metrics.json" \
    && { echo "1K tier budget dropped nothing"; exit 1; }
echo "    tiered-storage OK (demotions under pressure, output byte-identical)"

echo "==> cargo test -q --features faults --test shard_supervision (fleet chaos matrix)"
cargo test -q --features faults --test shard_supervision

echo "==> shell-level shard chaos (crash + hang injection -> requeue -> byte-compare)"
# The release binary has no fault hooks, so the chaos fleet runs the
# faults-enabled debug binary end-to-end: a worker SIGKILL-dies right
# after journaling a chunk, another hangs silently; the coordinator
# must requeue both and still merge output byte-identical to a serial
# run of the same binary.
cargo build -q --features faults
fbin=target/debug/phyloplace
shard_args=(shard --tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta"
            --queries "$smoke_dir/query.fasta" --chunk 7 --shards 3)
"$fbin" place --tree "$smoke_dir/ref.nwk" --ref-msa "$smoke_dir/ref.fasta" \
    --queries "$smoke_dir/query.fasta" --chunk 7 --out "$smoke_dir/fserial.jplace"
PHYLO_FAULTS_SHARD_0="shard::worker_crash=once:1" \
    "$fbin" "${shard_args[@]}" --workdir "$smoke_dir/chaos-crash" \
    --out "$smoke_dir/chaos-crash.jplace" --metrics-json "$smoke_dir/chaos-crash.metrics.json"
cmp "$smoke_dir/fserial.jplace" "$smoke_dir/chaos-crash.jplace" \
    || { echo "crash-injected shard run differs from serial"; exit 1; }
grep -q '"shard.requeues": 0' "$smoke_dir/chaos-crash.metrics.json" \
    && { echo "crashed worker was not requeued"; exit 1; }
PHYLO_FAULTS_SHARD_1="shard::worker_hang=once" \
    "$fbin" "${shard_args[@]}" --workdir "$smoke_dir/chaos-hang" --heartbeat-timeout 1 \
    --out "$smoke_dir/chaos-hang.jplace" --metrics-json "$smoke_dir/chaos-hang.metrics.json"
cmp "$smoke_dir/fserial.jplace" "$smoke_dir/chaos-hang.jplace" \
    || { echo "hang-injected shard run differs from serial"; exit 1; }
grep -q '"shard.hangs": 0' "$smoke_dir/chaos-hang.metrics.json" \
    && { echo "hung worker was not detected"; exit 1; }
echo "    shard chaos OK (crash + hang requeued, merged output byte-identical)"

echo "==> cargo test -q --features obs (suite again with live observability probes)"
cargo test -q --features obs

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (single quick pass)"
scripts/bench_smoke.sh "$(mktemp -t bench_smoke.XXXXXX.json)"

echo "==> CI OK"
