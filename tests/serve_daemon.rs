//! The daemon contract, exercised through the real `phyloplaced`
//! binary: byte-identity of served placements with `phyloplace place`,
//! typed per-request errors that never take the process down, immediate
//! overload shedding, and the SIGTERM/EOF drain to exit 0.
//!
//! The chaos half (`#[cfg(feature = "faults")]`) arms the `serve::*`
//! fault sites through `PHYLO_FAULTS` and proves each injected failure
//! is isolated to the request (or accept attempt) that hit it.

use phyloplace::prelude::Scale;
use phyloplace::serve::proto;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn daemon_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phyloplaced"))
}

fn place_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phyloplace"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("phyloplace-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Writes the synthetic CI dataset and returns per-query FASTA payloads.
fn export(dir: &Path) -> Vec<String> {
    let ds = phyloplace::datasets::generate(&phyloplace::datasets::neotrop(Scale::Ci));
    std::fs::write(dir.join("ref.nwk"), phyloplace::tree::newick::write(&ds.tree)).unwrap();
    std::fs::write(
        dir.join("ref.fasta"),
        phyloplace::seq::fasta::to_string(ds.reference.rows(), 70),
    )
    .unwrap();
    ds.queries
        .iter()
        .map(|q| phyloplace::seq::fasta::to_string(std::slice::from_ref(q), 70))
        .collect()
}

/// A running daemon on stdio with line-oriented send/recv.
struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(dir: &Path, extra: &[&str], env: &[(&str, &str)]) -> Daemon {
        let mut cmd = daemon_bin();
        cmd.arg("--tree")
            .arg(dir.join("ref.nwk"))
            .arg("--ref-msa")
            .arg(dir.join("ref.fasta"))
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().unwrap();
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon { child, stdin: Some(stdin), stdout }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin.as_mut().unwrap(), "{line}").unwrap();
    }

    fn recv(&mut self) -> BTreeMap<String, proto::Value> {
        let mut line = String::new();
        assert_ne!(self.stdout.read_line(&mut line).unwrap(), 0, "daemon closed stdout");
        proto::parse_object(line.trim_end()).unwrap_or_else(|e| panic!("{e}: {line:?}"))
    }

    /// Closes stdin (EOF drain) and waits; returns the exit code.
    fn finish(mut self) -> i32 {
        drop(self.stdin.take());
        self.child.wait().unwrap().code().unwrap()
    }
}

fn place_req(id: &str, fasta: &str, deadline_ms: Option<f64>) -> String {
    let dl = deadline_ms.map(|d| format!(",\"deadline_ms\":{d}")).unwrap_or_default();
    format!("{{\"id\":\"{id}\",\"op\":\"place\",\"queries\":\"{}\"{dl}}}", proto::escape(fasta))
}

fn field<'a>(obj: &'a BTreeMap<String, proto::Value>, key: &str) -> &'a str {
    obj.get(key).and_then(|v| v.as_str()).unwrap_or_else(|| panic!("no {key} in {obj:?}"))
}

/// Cold reference run: `phyloplace place` over the same inputs, stdout
/// captured (exactly the bytes the daemon must reproduce).
fn cold_place(dir: &Path, query_fasta: &str) -> String {
    let qpath =
        dir.join(format!("q-{}.fasta", phyloplace::journal::fnv1a64(query_fasta.as_bytes())));
    std::fs::write(&qpath, query_fasta).unwrap();
    let out = place_bin()
        .args(["place", "--tree"])
        .arg(dir.join("ref.nwk"))
        .arg("--ref-msa")
        .arg(dir.join("ref.fasta"))
        .arg("--queries")
        .arg(&qpath)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "cold place failed: {out:?}");
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn served_responses_are_byte_identical_to_cold_place_runs() {
    let dir = tmpdir("identity");
    let queries = export(&dir);
    let mut d = Daemon::spawn(&dir, &[], &[]);
    // Fire several concurrently so the executor can micro-batch them:
    // merged scoring must not change any request's bytes.
    for (i, q) in queries.iter().take(3).enumerate() {
        d.send(&place_req(&format!("r{i}"), q, None));
    }
    let mut got: BTreeMap<String, String> = BTreeMap::new();
    for _ in 0..3 {
        let resp = d.recv();
        assert_eq!(field(&resp, "code"), "Ok", "{resp:?}");
        got.insert(field(&resp, "id").to_string(), field(&resp, "jplace").to_string());
    }
    assert_eq!(d.finish(), 0, "EOF drain must exit 0");
    for (i, q) in queries.iter().take(3).enumerate() {
        let cold = cold_place(&dir, q);
        assert_eq!(got[&format!("r{i}")], cold, "query {i}: daemon bytes != cold place bytes");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn typed_request_errors_leave_the_daemon_serving() {
    let dir = tmpdir("typed");
    let queries = export(&dir);
    let mut d = Daemon::spawn(&dir, &[], &[]);

    // Malformed line: typed BadRequest.
    d.send("not json at all");
    assert_eq!(field(&d.recv(), "code"), "BadRequest");
    // Well-formed JSON, bad payload (wrong alignment width).
    d.send(&place_req("w", ">q\nACGT\n", None));
    let resp = d.recv();
    assert_eq!(field(&resp, "code"), "BadRequest");
    assert_eq!(field(&resp, "id"), "w", "error carries the request id");
    // Already-expired deadline: typed, immediate, never queued.
    d.send(&place_req("late", &queries[0], Some(-1.0)));
    assert_eq!(field(&d.recv(), "code"), "Deadline");
    // Unknown op.
    d.send(r#"{"id":"x","op":"explode"}"#);
    assert_eq!(field(&d.recv(), "code"), "BadRequest");
    // After all of that, a good request still gets its bytes.
    d.send(&place_req("good", &queries[0], Some(60000.0)));
    assert_eq!(field(&d.recv(), "code"), "Ok");

    // Status reflects the history.
    d.send(r#"{"id":"s","op":"status"}"#);
    let st = d.recv();
    assert_eq!(field(&st, "phase"), "running");
    assert!(!field(&st, "fingerprint").is_empty());
    assert_eq!(st["served"], proto::Value::Num(1.0));
    assert!(st["bad_request"].as_num().unwrap() >= 3.0, "{st:?}");
    assert_eq!(st["deadline_expired"], proto::Value::Num(1.0));
    assert_eq!(d.finish(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_queue_sheds_immediately_with_typed_overloaded() {
    let dir = tmpdir("overload");
    let queries = export(&dir);
    // cap 0: deterministic total overload.
    let mut d = Daemon::spawn(&dir, &["--queue-cap", "0"], &[]);
    let t0 = Instant::now();
    d.send(&place_req("r", &queries[0], None));
    let resp = d.recv();
    assert_eq!(field(&resp, "code"), "Overloaded");
    assert!(t0.elapsed() < Duration::from_secs(10), "shed must not queue-wait");
    // Liveness keeps answering under total overload.
    d.send(r#"{"id":"s","op":"status"}"#);
    let st = d.recv();
    assert_eq!(st["shed"], proto::Value::Num(1.0));
    assert_eq!(st["queue_depth"], proto::Value::Num(0.0));
    assert_eq!(d.finish(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigterm_drains_queued_requests_and_exits_zero_without_eof() {
    let dir = tmpdir("drain");
    let queries = export(&dir);
    let mut d = Daemon::spawn(&dir, &["--batch-max", "1"], &[]);
    // Prove liveness, then load the queue and SIGTERM mid-stream with
    // stdin still open: every admitted request must still get a valid
    // response and the process must exit 0 without waiting for EOF.
    d.send(&place_req("warm", &queries[0], None));
    assert_eq!(field(&d.recv(), "code"), "Ok");
    for (i, q) in queries.iter().take(4).enumerate() {
        d.send(&place_req(&format!("r{i}"), q, None));
    }
    let pid = d.child.id();
    let term = Command::new("kill").args(["-TERM", &pid.to_string()]).status().unwrap();
    assert!(term.success());
    // Responses for everything admitted before the signal. Admission
    // racing the signal is fine either way: each request ends as Ok or
    // a typed Draining rejection, never silence.
    let mut ok = 0;
    let mut draining = 0;
    for _ in 0..4 {
        match field(&d.recv(), "code") {
            "Ok" => ok += 1,
            "Draining" => draining += 1,
            other => panic!("unexpected code {other}"),
        }
    }
    assert_eq!(ok + draining, 4);
    let status = d.child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit 0");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_subcommand_is_an_alias_for_the_daemon() {
    let dir = tmpdir("alias");
    let queries = export(&dir);
    let mut cmd = place_bin();
    cmd.arg("serve")
        .arg("--tree")
        .arg(dir.join("ref.nwk"))
        .arg("--ref-msa")
        .arg(dir.join("ref.fasta"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap();
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "{}", place_req("a", &queries[0], None)).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let line = String::from_utf8(out.stdout).unwrap();
    let resp = proto::parse_object(line.trim_end()).unwrap();
    assert_eq!(field(&resp, "code"), "Ok");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_usage_and_input_errors_exit_2() {
    // Missing required flags.
    let out = daemon_bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unreadable reference input.
    let out = daemon_bin().args(["--tree", "/nope.nwk", "--ref-msa", "/nope.fa"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unix_socket_transport_serves_concurrent_connections() {
    let dir = tmpdir("unix");
    let queries = export(&dir);
    let sock = dir.join("pp.sock");
    let mut child = daemon_bin()
        .arg("--tree")
        .arg(dir.join("ref.nwk"))
        .arg("--ref-msa")
        .arg(dir.join("ref.fasta"))
        .arg("--unix")
        .arg(&sock)
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Wait for the socket to appear.
    let t0 = Instant::now();
    while !sock.exists() {
        assert!(t0.elapsed() < Duration::from_secs(60), "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    let connect = || std::os::unix::net::UnixStream::connect(&sock).unwrap();
    let conns: Vec<String> = (0..2)
        .map(|i| {
            let s = connect();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut w = s;
            writeln!(w, "{}", place_req(&format!("c{i}"), &queries[i], None)).unwrap();
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            line
        })
        .collect();
    for (i, line) in conns.iter().enumerate() {
        let resp = proto::parse_object(line.trim_end()).unwrap();
        assert_eq!(field(&resp, "code"), "Ok", "conn {i}");
        assert_eq!(field(&resp, "id"), format!("c{i}"));
    }
    let term = Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
    assert!(term.success());
    assert_eq!(child.wait().unwrap().code(), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The chaos matrix: each `serve::*` fault fires inside the daemon and
/// must be isolated to the request (or accept attempt) it hit.
#[cfg(feature = "faults")]
mod chaos {
    use super::*;

    #[test]
    fn mid_request_crash_is_isolated_to_one_request() {
        let dir = tmpdir("chaos-crash");
        let queries = export(&dir);
        // `once:0`: the first rendered request panics; its sibling in
        // the same micro-batch and every later request must be clean.
        let mut d = Daemon::spawn(&dir, &[], &[("PHYLO_FAULTS", "serve::mid_request_crash=once")]);
        d.send(&place_req("a", &queries[0], None));
        d.send(&place_req("b", &queries[1], None));
        let mut codes: BTreeMap<String, String> = BTreeMap::new();
        for _ in 0..2 {
            let resp = d.recv();
            codes.insert(field(&resp, "id").to_string(), field(&resp, "code").to_string());
        }
        let internals = codes.values().filter(|c| c.as_str() == "Internal").count();
        let oks = codes.values().filter(|c| c.as_str() == "Ok").count();
        assert_eq!((internals, oks), (1, 1), "exactly one victim: {codes:?}");
        // The daemon survives and the next request is byte-correct.
        d.send(&place_req("after", &queries[2], None));
        let resp = d.recv();
        assert_eq!(field(&resp, "code"), "Ok");
        assert_eq!(field(&resp, "jplace"), cold_place(&dir, &queries[2]));
        assert_eq!(d.finish(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_parse_failure_is_a_typed_bad_request() {
        let dir = tmpdir("chaos-parse");
        let queries = export(&dir);
        let mut d = Daemon::spawn(&dir, &[], &[("PHYLO_FAULTS", "serve::request_parse=once")]);
        // A perfectly valid request hits the injected parse failure.
        d.send(&place_req("a", &queries[0], None));
        assert_eq!(field(&d.recv(), "code"), "BadRequest");
        // The very same bytes succeed once the fault is spent.
        d.send(&place_req("a", &queries[0], None));
        assert_eq!(field(&d.recv(), "code"), "Ok");
        assert_eq!(d.finish(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slow_client_stalls_only_its_own_responses() {
        let dir = tmpdir("chaos-slow");
        let queries = export(&dir);
        let mut d = Daemon::spawn(&dir, &[], &[("PHYLO_FAULTS", "serve::slow_client=once")]);
        let t0 = Instant::now();
        d.send(&place_req("slow", &queries[0], None));
        let resp = d.recv();
        // The response is delayed by the injected stall but still
        // arrives complete — slow clients degrade latency, not
        // correctness, and the drain still exits 0.
        assert_eq!(field(&resp, "code"), "Ok");
        assert!(t0.elapsed() >= Duration::from_millis(1400), "stall should be observable");
        assert_eq!(d.finish(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn accept_error_does_not_kill_the_listener() {
        let dir = tmpdir("chaos-accept");
        let queries = export(&dir);
        let sock = dir.join("pp.sock");
        let mut child = daemon_bin()
            .arg("--tree")
            .arg(dir.join("ref.nwk"))
            .arg("--ref-msa")
            .arg(dir.join("ref.fasta"))
            .arg("--unix")
            .arg(&sock)
            .env("PHYLO_FAULTS", "serve::accept_error=once")
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let t0 = Instant::now();
        while !sock.exists() {
            assert!(t0.elapsed() < Duration::from_secs(60), "socket never appeared");
            std::thread::sleep(Duration::from_millis(20));
        }
        // The first accept poll hits the injected error; the daemon
        // backs off and keeps listening, so this connection succeeds.
        let s = std::os::unix::net::UnixStream::connect(&sock).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut w = s;
        writeln!(w, "{}", place_req("a", &queries[0], None)).unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let resp = proto::parse_object(line.trim_end()).unwrap();
        assert_eq!(field(&resp, "code"), "Ok");
        let term = Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
        assert!(term.success());
        assert_eq!(child.wait().unwrap().code(), Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
