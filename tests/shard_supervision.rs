//! Sharded-run supervision through the real binary: a `phyloplace
//! shard` fleet must produce output byte-identical to a single-process
//! run — including when workers are killed mid-run or hang silently
//! (fault-injected via `PHYLO_FAULTS_SHARD_<k>`; those tests need
//! `cargo test --features faults`). The supervisor's full failure
//! matrix is unit-tested over scripted workers in
//! `crates/shard/src/supervisor.rs`; this file proves the same story
//! end-to-end with real processes, real signals, and real journals.

use phyloplace::prelude::Scale;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phyloplace"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("phyloplace-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn export(dir: &Path) {
    let ds = phyloplace::datasets::generate(&phyloplace::datasets::neotrop(Scale::Ci));
    std::fs::write(dir.join("ref.nwk"), phyloplace::tree::newick::write(&ds.tree)).unwrap();
    std::fs::write(
        dir.join("ref.fasta"),
        phyloplace::seq::fasta::to_string(ds.reference.rows(), 70),
    )
    .unwrap();
    std::fs::write(dir.join("query.fasta"), phyloplace::seq::fasta::to_string(&ds.queries, 70))
        .unwrap();
}

/// The single-process baseline every sharded variant must match byte
/// for byte.
fn serial_jplace(dir: &Path) -> String {
    let out_path = dir.join("serial.jplace");
    let out = bin()
        .arg("place")
        .arg("--tree")
        .arg(dir.join("ref.nwk"))
        .arg("--ref-msa")
        .arg(dir.join("ref.fasta"))
        .arg("--queries")
        .arg(dir.join("query.fasta"))
        .arg("--chunk")
        .arg("7")
        .arg("--out")
        .arg(&out_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::read_to_string(out_path).unwrap()
}

fn shard_cmd(dir: &Path, tag: &str) -> (Command, PathBuf, PathBuf) {
    let out_path = dir.join(format!("{tag}.jplace"));
    let metrics = dir.join(format!("{tag}.metrics.json"));
    let mut cmd = bin();
    cmd.arg("shard")
        .arg("--tree")
        .arg(dir.join("ref.nwk"))
        .arg("--ref-msa")
        .arg(dir.join("ref.fasta"))
        .arg("--queries")
        .arg(dir.join("query.fasta"))
        .arg("--chunk")
        .arg("7")
        .arg("--shards")
        .arg("3")
        .arg("--workdir")
        .arg(dir.join(format!("{tag}-work")))
        .arg("--out")
        .arg(&out_path)
        .arg("--metrics-json")
        .arg(&metrics);
    (cmd, out_path, metrics)
}

/// Pulls `"name": value` out of a metrics JSON document.
fn metric(metrics_json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = metrics_json
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} missing from metrics: {metrics_json}"));
    metrics_json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    let dir = tmpdir("clean");
    export(&dir);
    let serial = serial_jplace(&dir);
    let (mut cmd, out_path, metrics) = shard_cmd(&dir, "clean");
    let out = cmd.output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        serial,
        std::fs::read_to_string(out_path).unwrap(),
        "merged jplace differs from the single-process run"
    );
    let m = std::fs::read_to_string(metrics).unwrap();
    assert_eq!(metric(&m, "shard.n_shards"), 3);
    assert_eq!(metric(&m, "shard.launched"), 3);
    assert_eq!(metric(&m, "shard.requeues"), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn workdir_with_different_inputs_is_refused() {
    let dir = tmpdir("reuse");
    export(&dir);
    let (mut cmd, _, _) = shard_cmd(&dir, "reuse");
    let out = cmd.output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // Same workdir, mutated queries: resuming would attribute journaled
    // chunks to the wrong queries, so the coordinator must refuse.
    let mut text = std::fs::read_to_string(dir.join("query.fasta")).unwrap();
    text.push_str(">extra_query\nACGT\n");
    std::fs::write(dir.join("query.fasta"), text).unwrap();
    let (mut cmd, _, _) = shard_cmd(&dir, "reuse");
    let out = cmd.output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot reuse work directory"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_deadline_zero_exits_3() {
    let dir = tmpdir("deadline");
    export(&dir);
    let (mut cmd, _, _) = shard_cmd(&dir, "deadline");
    let out = cmd.arg("--deadline").arg("0").output().unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A worker SIGKILL-dies (via `abort`) right after journaling a chunk;
/// the re-queued attempt must resume from the journal and the merged
/// output must still be byte-identical to the serial run — the
/// acceptance scenario for the whole supervision layer.
#[cfg(feature = "faults")]
#[test]
fn killed_worker_is_requeued_and_output_is_byte_identical() {
    let dir = tmpdir("crash");
    export(&dir);
    let serial = serial_jplace(&dir);
    let (mut cmd, out_path, metrics) = shard_cmd(&dir, "crash");
    // Fires on the beat after chunk 0 became durable, in shard 0 only;
    // the coordinator clears fault arming for the retry.
    cmd.env("PHYLO_FAULTS_SHARD_0", "shard::worker_crash=once:1");
    let out = cmd.output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(serial, std::fs::read_to_string(out_path).unwrap());
    let m = std::fs::read_to_string(metrics).unwrap();
    assert!(metric(&m, "shard.requeues") >= 1, "no requeue recorded: {m}");
    assert!(metric(&m, "shard.crashes") >= 1, "no crash recorded: {m}");
    assert_eq!(metric(&m, "shard.launched"), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A worker that hangs without dying (beats stop): the coordinator must
/// notice within the heartbeat timeout, kill it, and re-queue.
#[cfg(feature = "faults")]
#[test]
fn hung_worker_is_detected_and_requeued() {
    let dir = tmpdir("hang");
    export(&dir);
    let serial = serial_jplace(&dir);
    let (mut cmd, out_path, metrics) = shard_cmd(&dir, "hang");
    cmd.env("PHYLO_FAULTS_SHARD_1", "shard::worker_hang=once").arg("--heartbeat-timeout").arg("1");
    let out = cmd.output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(serial, std::fs::read_to_string(out_path).unwrap());
    let m = std::fs::read_to_string(metrics).unwrap();
    assert!(metric(&m, "shard.hangs") >= 1, "no hang recorded: {m}");
    assert!(metric(&m, "shard.requeues") >= 1, "no requeue recorded: {m}");
    std::fs::remove_dir_all(&dir).unwrap();
}
