//! The exit-code contract, exercised through the real binary: `0`
//! success, `1` runtime error, `2` usage/input error, `3` interrupted.
//! The in-process test suites assert typed errors; this file asserts
//! the thing scripts and schedulers actually see — process exit status
//! — plus the worker heartbeat protocol on stdout.

use phyloplace::prelude::Scale;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phyloplace"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("phyloplace-contract-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Writes the synthetic CI dataset as real files, exactly like the
/// `export_dataset` example `scripts/ci.sh` uses.
fn export(dir: &Path) {
    let ds = phyloplace::datasets::generate(&phyloplace::datasets::neotrop(Scale::Ci));
    std::fs::write(dir.join("ref.nwk"), phyloplace::tree::newick::write(&ds.tree)).unwrap();
    std::fs::write(
        dir.join("ref.fasta"),
        phyloplace::seq::fasta::to_string(ds.reference.rows(), 70),
    )
    .unwrap();
    std::fs::write(dir.join("query.fasta"), phyloplace::seq::fasta::to_string(&ds.queries, 70))
        .unwrap();
}

fn place_args(dir: &Path) -> Vec<String> {
    [
        "place",
        "--tree",
        dir.join("ref.nwk").to_str().unwrap(),
        "--ref-msa",
        dir.join("ref.fasta").to_str().unwrap(),
        "--queries",
        dir.join("query.fasta").to_str().unwrap(),
        "--chunk",
        "7",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        vec![],
        vec!["place".to_string()],
        vec!["place".to_string(), "--bogus".to_string()],
        vec!["place".to_string(), "--heartbeat".to_string()],
        vec!["shard".to_string()],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
    }
}

#[test]
fn malformed_inputs_exit_2() {
    let dir = tmpdir("malformed");
    export(&dir);
    // Missing file.
    let mut args = place_args(&dir);
    args[6] = dir.join("nope.fasta").to_string_lossy().into_owned();
    let out = bin().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // A query file that is not FASTA at all.
    std::fs::write(dir.join("garbage.fasta"), "this is not fasta\n").unwrap();
    let mut args = place_args(&dir);
    args[6] = dir.join("garbage.fasta").to_string_lossy().into_owned();
    let out = bin().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(out.stderr.starts_with(b"error: "), "untyped failure: {out:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_manifest_mismatch_exits_2() {
    let dir = tmpdir("mismatch");
    export(&dir);
    let ckpt = dir.join("ckpt");
    let out = bin()
        .args(place_args(&dir))
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--out")
        .arg(dir.join("a.jplace"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // Same checkpoint, different query file: the journal's frames would
    // attribute results to the wrong queries, so the run is refused as
    // an input error — not retried, not silently recomputed.
    let q2 = dir.join("query2.fasta");
    let text = std::fs::read_to_string(dir.join("query.fasta")).unwrap();
    let last_record = text.rfind("\n>").unwrap() + 1;
    std::fs::write(&q2, &text[..last_record]).unwrap();
    let mut args = place_args(&dir);
    args[6] = q2.to_string_lossy().into_owned();
    let out = bin()
        .args(&args)
        .arg("--resume")
        .arg(&ckpt)
        .arg("--out")
        .arg(dir.join("b.jplace"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume"), "error does not name the resume: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deadline_zero_exits_3_with_valid_partial() {
    let dir = tmpdir("deadline");
    export(&dir);
    let out = bin()
        .args(place_args(&dir))
        .arg("--checkpoint")
        .arg(dir.join("ckpt"))
        .arg("--deadline")
        .arg("0")
        .arg("--out")
        .arg(dir.join("partial.jplace"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let partial = std::fs::read_to_string(dir.join("partial.jplace")).unwrap();
    assert!(partial.contains("\"completed\": false"), "partial not marked incomplete");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn heartbeat_protocol_on_stdout() {
    let dir = tmpdir("heartbeat");
    export(&dir);
    let out = bin()
        .args(place_args(&dir))
        .arg("--heartbeat")
        .arg("--out")
        .arg(dir.join("out.jplace"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let beats: Vec<_> = stdout
        .lines()
        .map(|l| {
            phyloplace::shard::parse_heartbeat(l)
                .unwrap_or_else(|| panic!("non-heartbeat line on a --heartbeat stdout: {l:?}"))
        })
        .collect();
    // One beat at start plus one per chunk boundary, monotone, ending
    // with everything done.
    assert!(beats.len() >= 2, "{stdout:?}");
    assert_eq!(beats[0].chunks_done, 0);
    for w in beats.windows(2) {
        assert!(w[1].chunks_done >= w[0].chunks_done);
        assert!(w[1].queries_done >= w[0].queries_done);
    }
    let last = beats.last().unwrap();
    assert_eq!(last.chunks_done, last.n_chunks);
    assert_eq!(last.queries_done, last.n_queries);
    std::fs::remove_dir_all(&dir).unwrap();
}
