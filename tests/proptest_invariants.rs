//! Property-based tests over the core invariants.

use phyloplace::amc::{ClvKey, SlotManager, StrategyKind};
use phyloplace::tree::stats::{min_slots_bound, register_need};
use phyloplace::tree::{generate, newick, DirEdgeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Newick round-trips preserve topology statistics for arbitrary
    /// random trees from every generator.
    #[test]
    fn newick_round_trip(n in 3usize..60, seed in 0u64..1000, gen_idx in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generators = [generate::yule, generate::caterpillar, generate::uniform_topology];
        let tree = generators[gen_idx](n, 0.1, &mut rng).unwrap();
        let text = newick::write(&tree);
        let parsed = newick::parse(&text).unwrap();
        prop_assert_eq!(parsed.n_leaves(), tree.n_leaves());
        prop_assert!((parsed.total_length() - tree.total_length()).abs() < 1e-9);
        // Taxon sets agree.
        let mut a: Vec<_> = tree.taxa().to_vec();
        let mut b: Vec<_> = parsed.taxa().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Second round trip is a fixed point.
        prop_assert_eq!(newick::write(&parsed), text);
    }

    /// Subtree leaf counts always partition `n` across each edge, for all
    /// generators.
    #[test]
    fn leaf_counts_partition(n in 3usize..80, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::uniform_topology(n, 0.1, &mut rng).unwrap();
        let counts = phyloplace::tree::stats::subtree_leaf_counts(&tree);
        for d in tree.all_dir_edges() {
            prop_assert_eq!(counts[d.idx()] + counts[d.reversed().idx()], n as u32);
        }
    }

    /// The slot-constrained FPA planner always succeeds at the paper's
    /// `⌈log₂ n⌉ + 2` bound, on any topology, and never leaves pins
    /// behind.
    #[test]
    fn log_bound_suffices(n in 4usize..64, seed in 0u64..500, gen_idx in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generators = [generate::yule, generate::caterpillar, generate::uniform_topology];
        let tree = generators[gen_idx](n, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let costs: Vec<f64> = phyloplace::tree::stats::subtree_leaf_counts(&tree)
            .iter()
            .map(|&c| c as f64)
            .collect();
        let mut mgr = SlotManager::new(
            tree.n_dir_edges(),
            min_slots_bound(n),
            StrategyKind::CostBased.build(Some(costs)),
        );
        for e in tree.all_edges() {
            let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
            let mut rs = phyloplace::amc::ensure_resident(&tree, &targets, &mut mgr, &need)
                .expect("log bound must suffice");
            rs.release(&mgr);
            mgr.check_invariants().unwrap();
        }
        prop_assert_eq!(mgr.n_pinned(), 0);
    }

    /// Slot-manager maps stay bijective under arbitrary operation
    /// sequences (acquire / pin / unpin / invalidate).
    #[test]
    fn slot_manager_invariants(
        ops in proptest::collection::vec((0u8..4, 0u32..24), 1..200),
        n_slots in 2usize..10,
    ) {
        let mgr = SlotManager::new(24, n_slots, StrategyKind::Fifo.build(None));
        let mut pinned: Vec<phyloplace::amc::SlotId> = Vec::new();
        for (op, key) in ops {
            match op {
                0 => {
                    // Acquire (may legitimately fail if everything is
                    // pinned).
                    let _ = mgr.acquire(ClvKey(key));
                }
                1 => {
                    // Pin a resident CLV.
                    if let Some(slot) = mgr.lookup(ClvKey(key)) {
                        mgr.pin(slot);
                        pinned.push(slot);
                    }
                }
                2 => {
                    // Unpin something we pinned.
                    if let Some(slot) = pinned.pop() {
                        mgr.unpin(slot).unwrap();
                    }
                }
                _ => {
                    // Invalidate an unpinned resident CLV.
                    if let Some(slot) = mgr.lookup(ClvKey(key)) {
                        if mgr.pin_count(slot) == 0 {
                            mgr.invalidate(ClvKey(key));
                        }
                    }
                }
            }
            mgr.check_invariants().unwrap();
        }
    }

    /// FASTA round trip for arbitrary DNA content and line widths.
    #[test]
    fn fasta_round_trip(
        seqs in proptest::collection::vec("[ACGTRYN]{1,80}", 1..8),
        width in 0usize..30,
    ) {
        use phyloplace::seq::alphabet::AlphabetKind;
        let sequences: Vec<phyloplace::seq::Sequence> = seqs
            .iter()
            .enumerate()
            .map(|(i, text)| {
                phyloplace::seq::Sequence::from_text(format!("s{i}"), AlphabetKind::Dna, text)
                    .unwrap()
            })
            .collect();
        let text = phyloplace::seq::fasta::to_string(&sequences, width);
        let parsed = phyloplace::seq::fasta::parse(&text, AlphabetKind::Dna).unwrap();
        prop_assert_eq!(parsed, sequences);
    }

    /// Pattern compression is lossless: expanding patterns through
    /// `site_to_pattern` reproduces every original column.
    #[test]
    fn pattern_compression_lossless(
        n_rows in 2usize..6,
        n_sites in 1usize..40,
        seed in 0u64..1000,
    ) {
        use phyloplace::seq::alphabet::AlphabetKind;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let rows: Vec<phyloplace::seq::Sequence> = (0..n_rows)
            .map(|i| {
                let codes: Vec<u8> = (0..n_sites).map(|_| rng.gen_range(0..5)).collect();
                phyloplace::seq::Sequence::from_codes(format!("r{i}"), AlphabetKind::Dna, codes)
                    .unwrap()
            })
            .collect();
        let msa = phyloplace::seq::Msa::new(rows).unwrap();
        let patterns = phyloplace::seq::compress(&msa).unwrap();
        for site in 0..n_sites {
            let p = patterns.site_to_pattern()[site] as usize;
            for row in 0..n_rows {
                prop_assert_eq!(patterns.row(row)[p], msa.row(row).codes()[site]);
            }
        }
        let total: u32 = patterns.weights().iter().sum();
        prop_assert_eq!(total as usize, n_sites);
    }
}
