//! Crash-and-resume determinism matrix: for every fault-injected crash
//! point, run → crash → resume must produce a jplace byte-identical to
//! the uninterrupted run, and cancellation (signal/deadline) must yield
//! a valid partial result plus a journal from which resume completes.
//!
//! Build with `cargo test --features faults --test crash_resume`;
//! without the feature this file compiles to nothing. A shell-level
//! kill-and-resume pass (real process death, real exit codes) lives in
//! `scripts/ci.sh`; this in-process matrix is the thorough per-chunk
//! coverage.
#![cfg(feature = "faults")]

use phylo_faults::Trigger;
use phyloplace::journal::{JournalError, Manifest, RunJournal, MANIFEST_FORMAT};
use phyloplace::place::result::{to_jplace, to_jplace_with};
use phyloplace::place::{EpaConfig, PlaceError, Placer, QueryBatch};
use phyloplace::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

// The fault registry is process-global; tests that arm sites must not
// overlap in time.
static LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

fn config() -> EpaConfig {
    EpaConfig { chunk_size: 7, threads: 2, ..Default::default() }
}

fn make_placer(ds: &phyloplace::datasets::Dataset, s2p: &[u32]) -> Placer {
    Placer::new(ctx_of(ds), s2p.to_vec(), config()).unwrap()
}

/// The manifest the CLI would build for this run (input hashes fixed
/// per test process; what matters here is the chunk geometry).
fn manifest_of(placer: &Placer, batch: &QueryBatch) -> Manifest {
    let plan = placer.memory_plan(batch).unwrap();
    let epa = placer.config();
    Manifest {
        format: MANIFEST_FORMAT,
        tree_hash: 1,
        ref_msa_hash: 2,
        query_hash: 3,
        alphabet: "dna".into(),
        gamma_alpha_bits: None,
        chunk_size: plan.chunk_size,
        n_queries: batch.len(),
        thorough_fraction_bits: epa.thorough_fraction.to_bits(),
        thorough_min: epa.thorough_min,
        blo_iterations: epa.blo_iterations,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("phyloplace-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn crash_after_every_chunk_resumes_byte_identical() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = make_placer(&ds, &s2p);
    let manifest = manifest_of(&placer, &batch);
    let n_chunks = batch.len().div_ceil(placer.memory_plan(&batch).unwrap().chunk_size);
    assert!(n_chunks >= 2, "need a multi-chunk batch, got {n_chunks}");
    let baseline = {
        let (results, _) = placer.place(&batch).unwrap();
        to_jplace(&ds.tree, &results)
    };

    // Crash points: "process dies right after chunk k became durable",
    // for every k. Resume must replay exactly k+1 chunks and finish
    // with output byte-identical to the uninterrupted run.
    for k in 0..n_chunks {
        let dir = tmpdir(&format!("after-{k}"));
        let journal = RunJournal::create(&dir, &manifest).unwrap();
        phylo_faults::arm("journal::crash_after_chunk", Trigger::Once { after: k as u64 });
        let err = placer
            .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
            .err()
            .unwrap_or_else(|| panic!("crash point {k} did not fire"));
        assert!(
            matches!(err, PlaceError::Journal(JournalError::InjectedCrash)),
            "crash point {k}: {err:?}"
        );
        phylo_faults::disarm("journal::crash_after_chunk");

        let journal = RunJournal::resume(&dir, &manifest).unwrap();
        assert_eq!(journal.replayed().len(), k + 1, "crash point {k}");
        assert!(!journal.had_torn_tail());
        let outcome = placer
            .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
            .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.report.resumed_chunks, k + 1);
        assert_eq!(outcome.queries_done, batch.len());
        assert_eq!(
            baseline,
            to_jplace(&ds.tree, &outcome.results),
            "crash point {k}: resumed output differs from uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    phylo_faults::reset();
}

#[test]
fn torn_write_is_discarded_and_chunk_recomputed_on_resume() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = make_placer(&ds, &s2p);
    let manifest = manifest_of(&placer, &batch);
    let baseline = {
        let (results, _) = placer.place(&batch).unwrap();
        to_jplace(&ds.tree, &results)
    };

    // The second append tears mid-frame (half the bytes, no fsync):
    // the run dies with an I/O error; chunk 0 is durable, chunk 1 is
    // a torn tail the resume must shed and recompute.
    let dir = tmpdir("torn");
    let journal = RunJournal::create(&dir, &manifest).unwrap();
    phylo_faults::arm("journal::torn_write", Trigger::Once { after: 1 });
    let err = placer
        .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
        .unwrap_err();
    assert!(matches!(&err, PlaceError::Journal(JournalError::Io { .. })), "{err:?}");
    assert_eq!(phylo_faults::hits("journal::torn_write"), 1);
    phylo_faults::disarm("journal::torn_write");

    let journal = RunJournal::resume(&dir, &manifest).unwrap();
    assert!(journal.had_torn_tail(), "the torn tail went undetected");
    assert_eq!(journal.replayed().len(), 1);
    let outcome = placer
        .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
        .unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.report.resumed_chunks, 1);
    assert_eq!(baseline, to_jplace(&ds.tree, &outcome.results));
    std::fs::remove_dir_all(&dir).unwrap();
    phylo_faults::reset();
}

#[test]
fn resume_with_complete_journal_skips_recomputation() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = make_placer(&ds, &s2p);
    let manifest = manifest_of(&placer, &batch);
    let n_chunks = batch.len().div_ceil(placer.memory_plan(&batch).unwrap().chunk_size);

    // A run that crashed *after* its last chunk was journaled but before
    // the output was written: resume has nothing to compute and must not
    // even build the lookup table.
    let dir = tmpdir("full");
    let journal = RunJournal::create(&dir, &manifest).unwrap();
    let outcome = placer
        .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
        .unwrap();
    let baseline = to_jplace(&ds.tree, &outcome.results);

    let journal = RunJournal::resume(&dir, &manifest).unwrap();
    assert_eq!(journal.replayed().len(), n_chunks);
    let resumed = placer
        .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
        .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.report.resumed_chunks, n_chunks);
    assert_eq!(
        resumed.report.lookup_time.as_nanos(),
        0,
        "a fully-replayed run must skip the lookup build"
    );
    assert_eq!(baseline, to_jplace(&ds.tree, &resumed.results));
    std::fs::remove_dir_all(&dir).unwrap();
    phylo_faults::reset();
}

#[test]
fn mid_run_cancel_yields_valid_partial_then_resume_completes() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = make_placer(&ds, &s2p);
    let manifest = manifest_of(&placer, &batch);
    let chunk_size = placer.memory_plan(&batch).unwrap().chunk_size;
    let baseline = {
        let (results, _) = placer.place(&batch).unwrap();
        to_jplace(&ds.tree, &results)
    };

    // Deterministic "SIGINT during the run": the probe cancels the token
    // right after chunk 0 becomes durable — like a deadline firing at
    // that boundary. The run must come back Ok (not Err), partial.
    let dir = tmpdir("cancel");
    let journal = RunJournal::create(&dir, &manifest).unwrap();
    phylo_faults::arm("place::cancel_after_chunk", Trigger::Once { after: 0 });
    let outcome = placer
        .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
        .unwrap();
    phylo_faults::disarm("place::cancel_after_chunk");
    assert!(!outcome.completed);
    assert_eq!(outcome.queries_done, chunk_size.min(batch.len()));
    assert_eq!(outcome.results.len(), outcome.queries_done);

    // The partial jplace is valid and marked incomplete; its entries are
    // finalized (LWR sums to 1 per query).
    let partial = to_jplace_with(&ds.tree, &outcome.results, outcome.completed);
    assert!(partial.contains("\"completed\": false"));
    for r in &outcome.results {
        let lwr: f64 = r.placements.iter().map(|p| p.like_weight_ratio).sum();
        assert!((lwr - 1.0).abs() < 1e-9, "{}: partial result not finalized", r.name);
    }

    // Resume completes the remaining chunks; output is byte-identical.
    let journal = RunJournal::resume(&dir, &manifest).unwrap();
    assert_eq!(journal.replayed().len(), 1);
    let resumed = placer
        .place_run(&batch, RunControl { journal: Some(journal), ..Default::default() })
        .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.report.resumed_chunks, 1);
    assert_eq!(baseline, to_jplace(&ds.tree, &resumed.results));
    std::fs::remove_dir_all(&dir).unwrap();
    phylo_faults::reset();
}

#[test]
fn pre_armed_cancellation_places_nothing_but_does_not_error() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = make_placer(&ds, &s2p);

    // A deadline of zero: the token is cancelled before the first chunk.
    let control = RunControl::default();
    control.cancel.cancel();
    let outcome = placer.place_run(&batch, control).unwrap();
    assert!(!outcome.completed);
    assert_eq!(outcome.queries_done, 0);
    assert!(outcome.results.is_empty());
    let partial = to_jplace_with(&ds.tree, &outcome.results, false);
    assert!(partial.contains("\"completed\": false"));
    assert!(partial.contains("\"placements\": ["));
    phylo_faults::reset();
}

#[test]
fn resume_refuses_a_mismatched_run() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = make_placer(&ds, &s2p);
    let manifest = manifest_of(&placer, &batch);

    let dir = tmpdir("mismatch");
    let journal = RunJournal::create(&dir, &manifest).unwrap();
    drop(journal);

    // Different query file → typed mismatch naming the field.
    let other = Manifest { query_hash: manifest.query_hash ^ 1, ..manifest.clone() };
    match RunJournal::resume(&dir, &other) {
        Err(JournalError::ManifestMismatch { field, .. }) => assert_eq!(field, "query_hash"),
        r => panic!("expected ManifestMismatch, got {:?}", r.err()),
    }
    // Different effective chunk size (e.g. another --maxmem) → refused,
    // because frame indices would attribute results to the wrong queries.
    let other = Manifest { chunk_size: manifest.chunk_size + 1, ..manifest.clone() };
    match RunJournal::resume(&dir, &other) {
        Err(JournalError::ManifestMismatch { field, .. }) => assert_eq!(field, "chunk_size"),
        r => panic!("expected ManifestMismatch, got {:?}", r.err()),
    }
    // Not a checkpoint directory at all.
    match RunJournal::resume(&dir.join("nothing-here"), &manifest) {
        Err(JournalError::ManifestMissing { .. }) => {}
        r => panic!("expected ManifestMissing, got {:?}", r.err()),
    }
    std::fs::remove_dir_all(&dir).unwrap();
    phylo_faults::reset();
}
