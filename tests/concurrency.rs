//! Concurrency stress for the fine-grained slot protocol: eight worker
//! threads hammer `ensure_resident` on overlapping directed-edge sets with
//! the slot count at exactly the `⌈log₂ n⌉ + 2` floor, then "execute"
//! their schedules through the publish latches. The run must terminate
//! (no deadlock), pinned slots must never be remapped, and the final
//! tables must be mutually consistent.

use phyloplace::amc::{ensure_resident, AmcError, ClvKey, DepSource, SlotManager, StrategyKind};
use phyloplace::tree::stats::{min_slots_bound, register_need, subtree_leaf_counts};
use phyloplace::tree::{generate, DirEdgeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

const WORKERS: usize = 8;
const ROUNDS: usize = 40;

#[test]
fn workers_at_the_slot_floor_never_deadlock() {
    // A hang here *is* the failure mode under test, so run the stress on a
    // watchdog: if it does not finish in time, fail loudly instead of
    // letting the harness sit on a deadlock forever.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        stress();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(300))
        .expect("stress run did not finish: deadlock or livelock suspected");
}

fn stress() {
    let n = 48usize;
    let mut rng = StdRng::seed_from_u64(2021);
    let tree = generate::yule(n, 0.1, &mut rng).unwrap();
    let need = register_need(&tree);
    let costs: Vec<f64> = subtree_leaf_counts(&tree).iter().map(|&c| c as f64).collect();
    // Exactly the paper's floor: every single plan is guaranteed to fit,
    // but only barely — concurrent planners constantly collide with each
    // other's execution pins and must retry.
    let mgr = SlotManager::new(
        tree.n_dir_edges(),
        min_slots_bound(n),
        StrategyKind::CostBased.build(Some(costs)),
    );
    let edges: Vec<_> = tree.all_edges().collect();
    let retries = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let (mgr, tree, need, edges, retries) = (&mgr, &tree, &need, &edges, &retries);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7 + w as u64);
                for _ in 0..ROUNDS {
                    // Overlapping work: every worker draws from the same
                    // tree, biased toward a shared hot region so hits,
                    // misses, and evictions all interleave.
                    let e = if rng.gen_bool(0.5) {
                        edges[rng.gen_range(0..edges.len() / 4 + 1)]
                    } else {
                        edges[rng.gen_range(0..edges.len())]
                    };
                    let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
                    let mut rs = loop {
                        match ensure_resident(tree, &targets, mgr, need) {
                            Ok(rs) => break rs,
                            // Another plan's execution pins may transiently
                            // occupy every slot; that is a retry, never a
                            // deadlock — the pin holder's execution is
                            // lock-free and always completes.
                            Err(AmcError::AllSlotsPinned { .. }) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("planning failed: {e:?}"),
                        }
                    };
                    // Pinned slots must never be remapped underneath us:
                    // snapshot each target slot's reassignment version.
                    let versions: Vec<u64> =
                        rs.targets.iter().map(|&(_, slot)| mgr.version(slot)).collect();
                    // "Execute" the schedule: wait on foreign dependencies
                    // (version-snapshotted, exactly as the real executor
                    // does — a later op of this very schedule may have
                    // remapped a dep's slot at planning time), publish our
                    // own writes, in schedule order.
                    for op in &rs.ops {
                        for (k, d) in op.deps.iter().enumerate() {
                            if let DepSource::Slot(slot) = d {
                                mgr.wait_ready_at(*slot, op.dep_versions[k]).unwrap();
                            }
                        }
                        mgr.mark_ready_at(op.slot, op.slot_version);
                    }
                    rs.release_exec(mgr);
                    // A hit target may still be computing under an earlier
                    // concurrent plan; readers wait on the publish latch.
                    for (&(d, slot), v0) in rs.targets.iter().zip(&versions) {
                        mgr.wait_ready(slot).unwrap();
                        assert_eq!(
                            mgr.version(slot),
                            *v0,
                            "pinned slot {slot:?} (target {d:?}) was remapped mid-plan"
                        );
                        assert_eq!(
                            mgr.occupant(slot),
                            Some(ClvKey(d.0)),
                            "pinned target evicted: slot {slot:?} no longer holds {d:?}"
                        );
                    }
                    rs.release(mgr);
                }
            });
        }
    });
    assert_eq!(mgr.n_pinned(), 0, "every pin must be released after the stress");
    mgr.check_invariants().expect("slot tables consistent after the stress");
    // The final resident set agrees with both index maps.
    for (clv, slot) in mgr.resident() {
        assert_eq!(mgr.lookup(clv), Some(slot));
        assert_eq!(mgr.occupant(slot), Some(clv));
    }
    let stats = mgr.stats();
    assert!(stats.misses > 0, "the floor budget must force recomputation");
    assert!(
        stats.hits + stats.misses >= (WORKERS * ROUNDS) as u64,
        "every round touches at least one CLV"
    );
}
