//! End-to-end observability: a placement run under a tight memory budget
//! must produce a metrics snapshot whose slot counters balance exactly
//! (`hits + misses == acquires`, the acceptance invariant for slot
//! traffic) and a Chrome trace that names the orchestrator's phases.
//!
//! Build with `cargo test --features obs --test observability`; without
//! the feature the live probes are no-ops and this file compiles to
//! nothing.
#![cfg(feature = "obs")]

use phyloplace::place::{memplan, EpaConfig, Placer, PreplacementMode, QueryBatch};
use phyloplace::prelude::*;
use std::sync::Mutex;

// The trace recorder and metrics registry are process-global; tests that
// read them must not overlap in time.
static LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

/// No lookup shortcut and a floor slot budget, so CLVs are recomputed
/// (misses) rather than all cached.
fn tight_config(ds: &phyloplace::datasets::Dataset, batch: &QueryBatch) -> EpaConfig {
    let base = EpaConfig {
        preplacement: PreplacementMode::Off,
        chunk_size: 7,
        threads: 2,
        block_size: 4,
        async_prefetch: false,
        ..Default::default()
    };
    let probe = ctx_of(ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    EpaConfig { max_memory: Some(floor), ..base }
}

#[test]
fn metrics_account_for_every_clv_acquisition() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, s2p, batch) = setup();
    let cfg = tight_config(&ds, &batch);
    let placer = Placer::new(ctx_of(&ds), s2p, cfg).unwrap();
    let (_, report) = placer.place(&batch).unwrap();
    let m = &report.metrics;

    // The acceptance invariant: every acquisition is either a hit or a
    // miss, and every miss installed a CLV.
    assert!(m.counter("slot.misses") > 0, "a floor-budget run must recompute CLVs");
    assert_eq!(
        m.counter("slot.hits") + m.counter("slot.misses"),
        m.counter("slot.acquires"),
        "hits + misses must equal total CLV acquisitions: {m:?}"
    );
    assert_eq!(m.counter("slot.installs"), m.counter("slot.misses"));
    // The injected counters agree with the report's own slot stats.
    assert_eq!(m.counter("slot.hits"), report.slot_stats.hits);
    assert_eq!(m.counter("slot.misses"), report.slot_stats.misses);
    // Live probes recorded during the run (compiled in under `obs`).
    assert!(m.counter("engine.ops") > 0, "kernel op counter never fired: {m:?}");

    // The snapshot exports as JSON with the counters present and the
    // braces balanced (the file must load in any JSON reader).
    let json = m.to_json();
    assert!(json.contains("\"slot.misses\""), "{json}");
    assert!(json.contains("\"counters\""), "{json}");
    let depth = json.chars().fold(0i64, |d, c| d + (c == '{') as i64 - (c == '}') as i64);
    assert_eq!(depth, 0, "unbalanced JSON: {json}");
}

#[test]
fn trace_records_phase_spans() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, s2p, batch) = setup();
    let cfg = tight_config(&ds, &batch);
    let placer = Placer::new(ctx_of(&ds), s2p, cfg).unwrap();

    phylo_obs::trace::start();
    placer.place(&batch).unwrap();
    phylo_obs::trace::stop();
    let events = phylo_obs::trace::drain();

    for phase in ["prescore", "thorough", "chunk 0", "chunk.heartbeat"] {
        assert!(
            events.iter().any(|e| e.name == phase),
            "no {phase:?} event among {} trace events",
            events.len()
        );
    }
    // Span durations are plausible: a prescore phase takes time.
    assert!(events.iter().any(|e| e.name == "prescore" && e.dur_ns > 0));

    let json = phylo_obs::trace::chrome_json(&events);
    assert!(json.starts_with("{\"traceEvents\":["), "{}", &json[..60.min(json.len())]);
    let depth = json.chars().fold(0i64, |d, c| d + (c == '{') as i64 - (c == '}') as i64);
    assert_eq!(depth, 0, "unbalanced trace JSON");
}
