//! Integration tests for the paper's memory/runtime claims: budget →
//! slot-count mapping, the lookup-table cliff, the chunk-size floor, and
//! recomputation monotonicity.

use phyloplace::place::{memplan, AmcMode, EpaConfig, Placer, QueryBatch};
use phyloplace::prelude::*;

fn setup() -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    // pro_ref (largest tree) for plan-level checks.
    let spec = phyloplace::datasets::pro_ref(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

#[test]
fn plans_improve_monotonically_with_budget() {
    let (ds, _, batch) = setup();
    let ctx = ctx_of(&ds);
    let base = EpaConfig::default();
    let floor = memplan::floor_budget(&ctx, &base, batch.len(), batch.n_sites());
    // A plan's "capability" is (lookup on?, slots): the planner prefers
    // the lookup table over extra slots (the paper's recommendation), so
    // slot counts may legitimately dip exactly where lookup switches on —
    // but capability must never regress as the budget grows.
    let mut last: (bool, usize) = (false, 0);
    for factor in [1.0, 1.5, 2.5, 5.0, 20.0] {
        let cfg = EpaConfig { max_memory: Some((floor as f64 * factor) as usize), ..base.clone() };
        let plan = memplan::plan(&ctx, &cfg, batch.len(), batch.n_sites()).unwrap();
        assert_eq!(plan.mode, AmcMode::Amc);
        let cap = (plan.use_lookup, plan.slots);
        assert!(
            cap >= last || (plan.use_lookup && !last.0),
            "capability regressed: {last:?} -> {cap:?}"
        );
        if plan.use_lookup == last.0 {
            assert!(plan.slots >= last.1, "slots shrank within the same lookup regime");
        }
        last = cap;
    }
    assert!(last.1 >= ctx.min_slots());
    // Unlimited → full layout.
    let plan = memplan::plan(&ctx, &base, batch.len(), batch.n_sites()).unwrap();
    assert_eq!(plan.mode, AmcMode::Off);
    assert_eq!(plan.slots, ctx.max_slots());
}

#[test]
fn lookup_cliff_exists_in_the_plan() {
    let (ds, _, batch) = setup();
    let ctx = ctx_of(&ds);
    let base = EpaConfig::default();
    let lookup_floor = memplan::lookup_floor_budget(&ctx, &base, batch.len(), batch.n_sites());
    let just_above = EpaConfig { max_memory: Some(lookup_floor), ..base.clone() };
    let just_below = EpaConfig { max_memory: Some(lookup_floor - 1), ..base.clone() };
    let above = memplan::plan(&ctx, &just_above, batch.len(), batch.n_sites()).unwrap();
    let below = memplan::plan(&ctx, &just_below, batch.len(), batch.n_sites()).unwrap();
    assert!(above.use_lookup, "at the lookup floor the table must fit");
    assert!(!below.use_lookup, "one byte below it must not");
}

#[test]
fn recomputation_decreases_with_budget() {
    // Runtime-heavy: use the small neotrop instance.
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    let base = EpaConfig { chunk_size: 3, ..Default::default() };
    let probe = ctx_of(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    drop(probe);
    let mut last_misses = u64::MAX;
    for factor in [1.0f64, 3.0, 10.0] {
        let cfg = EpaConfig { max_memory: Some((floor as f64 * factor) as usize), ..base.clone() };
        let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg).unwrap();
        let (_, report) = placer.place(&batch).unwrap();
        assert!(
            report.slot_stats.misses <= last_misses,
            "more budget must not recompute more: {} > {last_misses}",
            report.slot_stats.misses
        );
        last_misses = report.slot_stats.misses;
    }
}

#[test]
fn smaller_chunks_lower_the_floor_but_cost_time() {
    let (ds, _, batch) = setup();
    let ctx = ctx_of(&ds);
    let floor_big = memplan::floor_budget(
        &ctx,
        &EpaConfig { chunk_size: batch.len(), ..Default::default() },
        batch.len(),
        batch.n_sites(),
    );
    let floor_small = memplan::floor_budget(
        &ctx,
        &EpaConfig { chunk_size: 1, ..Default::default() },
        batch.len(),
        batch.n_sites(),
    );
    assert!(
        floor_small < floor_big,
        "chunk 1 floor {floor_small} must be below chunk-all floor {floor_big}"
    );
}

#[test]
fn peak_memory_accounting_tracks_budget() {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    let base = EpaConfig { chunk_size: 3, ..Default::default() };
    let probe = ctx_of(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    drop(probe);
    for factor in [1.0f64, 2.0, 8.0] {
        let budget = (floor as f64 * factor) as usize;
        let cfg = EpaConfig { max_memory: Some(budget), ..base.clone() };
        let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg).unwrap();
        let (_, report) = placer.place(&batch).unwrap();
        assert!(
            report.peak_memory <= budget,
            "accounted peak {} exceeds budget {budget}",
            report.peak_memory
        );
    }
}

#[test]
fn amc_store_stays_consistent_across_many_sweeps() {
    // Hammer the slot manager: repeated full-tree likelihood sweeps at
    // the minimum slot count must keep producing the identical value.
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let ctx = ctx_of(&ds);
    let mut store =
        ManagedStore::with_slots(&ctx, ctx.min_slots(), StrategyKind::CostBased).unwrap();
    let e0 = phyloplace::tree::EdgeId(0);
    let reference = phyloplace::engine::loglik::tree_log_likelihood(&ctx, &mut store, e0).unwrap();
    for round in 0..3 {
        let ll = phyloplace::engine::loglik::tree_log_likelihood(&ctx, &mut store, e0).unwrap();
        assert_eq!(ll.to_bits(), reference.to_bits(), "round {round}");
    }
    assert!(store.stats().evictions > 0, "min slots must evict on this tree");
}
