//! Integration tests for tiered CLV storage: under a slot budget below
//! the working set, demoting evicted CLVs to compressed-RAM or disk
//! tiers must change performance characteristics only — the jplace
//! output stays byte-identical to the RAM-only run, the tier traffic
//! shows up in the run report, and a tier byte budget turns demotions
//! into drops instead of overflowing.

use phyloplace::place::result::to_jplace;
use phyloplace::place::{memplan, EpaConfig, Placer, PreplacementMode, QueryBatch, RunReport};
use phyloplace::prelude::*;

fn setup() -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

/// Floor slot budget, no lookup shortcut: every thorough score walks the
/// AMC machinery, so evictions — and with tiers attached, demotions —
/// are guaranteed traffic, not a lucky accident.
fn tight_config(ds: &phyloplace::datasets::Dataset, batch: &QueryBatch) -> EpaConfig {
    let base = EpaConfig {
        preplacement: PreplacementMode::Off,
        chunk_size: 7,
        block_size: 4,
        async_prefetch: true,
        ..Default::default()
    };
    let probe = ctx_of(ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    EpaConfig { max_memory: Some(floor), ..base }
}

fn run(
    ds: &phyloplace::datasets::Dataset,
    s2p: &[u32],
    batch: &QueryBatch,
    cfg: &EpaConfig,
) -> (String, RunReport) {
    let placer = Placer::new(ctx_of(ds), s2p.to_vec(), cfg.clone()).unwrap();
    let (results, report) = placer.place(batch).unwrap();
    (to_jplace(&ds.tree, &results), report)
}

#[test]
fn tiered_runs_match_ram_only_byte_for_byte() {
    let (ds, s2p, batch) = setup();
    let cfg = tight_config(&ds, &batch);
    let (baseline, base_report) = run(&ds, &s2p, &batch, &cfg);
    assert!(base_report.tier_stats.is_none(), "untired run must not report tier traffic");
    assert!(base_report.slot_stats.evictions > 0, "floor budget must force evictions");

    for spec in ["ram", "compressed", "disk", "compressed,disk"] {
        let tiers = phylo_amc::TierConfig::parse(spec).unwrap();
        let tiered = EpaConfig { tiers: Some(tiers), ..cfg.clone() };
        let (out, report) = run(&ds, &s2p, &batch, &tiered);
        assert_eq!(baseline, out, "{spec}: tiered jplace differs from RAM-only");
        let stats = report.tier_stats.expect("tiered run must report tier stats");
        assert!(stats.demotions > 0, "{spec}: floor budget produced no demotions");
        // Everything demoted either landed in a tier, was deliberately
        // dropped, or died with the store — never silently vanished.
        assert!(
            stats.writebacks + stats.drops_cost + stats.drops_budget + stats.writeback_lost > 0,
            "{spec}: demotions without any writeback/drop accounting"
        );
        // The counters the report carries are the ones `--metrics-json`
        // exports; spot-check the injection.
        let json = report.metrics.to_json();
        assert!(json.contains("tier.demotions"), "{spec}: metrics missing tier counters");
    }
}

#[test]
fn tier_byte_budget_drops_instead_of_overflowing() {
    let (ds, s2p, batch) = setup();
    let cfg = tight_config(&ds, &batch);
    let (baseline, _) = run(&ds, &s2p, &batch, &cfg);
    // One byte of tier budget: every offer must be refused (a slot
    // payload never fits), and the run degrades to plain recomputation
    // with identical output.
    let tiers = phylo_amc::TierConfig::parse("compressed,disk").unwrap().with_budget(1);
    let tiered = EpaConfig { tiers: Some(tiers), ..cfg.clone() };
    let (out, report) = run(&ds, &s2p, &batch, &tiered);
    assert_eq!(baseline, out, "budget-starved tiered run changed the output");
    let stats = report.tier_stats.unwrap();
    assert!(stats.drops_budget > 0, "budget of 1 byte must drop demotions");
    assert_eq!(stats.writebacks, 0, "nothing can land under a 1-byte budget");
    assert_eq!(stats.reloads, 0, "nothing landed, so nothing can reload");
}

#[test]
fn disk_tier_honors_an_explicit_directory() {
    let (ds, s2p, batch) = setup();
    let cfg = tight_config(&ds, &batch);
    let (baseline, _) = run(&ds, &s2p, &batch, &cfg);
    let dir = std::env::temp_dir().join(format!("phyloplace-tiertest-{}", std::process::id()));
    // Pre-existing directory: the store must use it without claiming
    // ownership, so it survives the run (only the arena file goes).
    std::fs::create_dir_all(&dir).unwrap();
    let tiers = phylo_amc::TierConfig::parse("disk").unwrap().with_dir(dir.clone());
    let tiered = EpaConfig { tiers: Some(tiers), ..cfg.clone() };
    let (out, report) = run(&ds, &s2p, &batch, &tiered);
    assert_eq!(baseline, out, "disk-tier run changed the output");
    let stats = report.tier_stats.unwrap();
    assert!(stats.demotions > 0);
    // The store removes its arena file on drop but leaves the caller's
    // directory in place.
    assert!(dir.is_dir(), "explicit tier dir must survive the run");
    let leftovers = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(leftovers, 0, "tier arena file must be cleaned up on drop");
    std::fs::remove_dir_all(&dir).ok();
}
