//! End-to-end integration: datasets → engine → placement → jplace, across
//! all three synthetic datasets and every major configuration axis.

use phyloplace::place::result::{to_jplace, to_jplace_with};
use phyloplace::place::{memplan, EpaConfig, Placer, PreplacementMode, QueryBatch};
use phyloplace::prelude::*;

fn setup(
    spec: &phyloplace::datasets::DatasetSpec,
) -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    let ds = phyloplace::datasets::generate(spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

#[test]
fn all_datasets_place_end_to_end() {
    for spec in phyloplace::datasets::spec::all(Scale::Ci) {
        let (ds, s2p, batch) = setup(&spec);
        let placer = Placer::new(ctx_of(&ds), s2p, EpaConfig::default()).unwrap();
        let (results, report) = placer.place(&batch).unwrap();
        assert_eq!(results.len(), batch.len(), "{}", spec.name);
        assert_eq!(report.n_queries, batch.len());
        for r in &results {
            assert!(!r.placements.is_empty(), "{}: {} has no placements", spec.name, r.name);
            assert!(r.best().unwrap().log_likelihood.is_finite());
            let lwr: f64 = r.placements.iter().map(|p| p.like_weight_ratio).sum();
            assert!((lwr - 1.0).abs() < 1e-9);
            // Entries must be sorted by likelihood, best first.
            for w in r.placements.windows(2) {
                assert!(w[0].log_likelihood >= w[1].log_likelihood);
            }
        }
        // jplace output parses as structurally sound (spot checks).
        let j = to_jplace(&ds.tree, &results);
        assert!(j.contains("\"version\": 3"));
        assert!(j.contains(&format!("{{{}}}", ds.tree.n_edges() - 1)));
    }
}

#[test]
fn results_invariant_across_memory_configs() {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let (ds, s2p, batch) = setup(&spec);
    let base = EpaConfig { chunk_size: 7, ..Default::default() };
    let reference = {
        let placer = Placer::new(ctx_of(&ds), s2p.clone(), base.clone()).unwrap();
        placer.place(&batch).unwrap().0
    };
    let probe = ctx_of(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    let lookup_floor = memplan::lookup_floor_budget(&probe, &base, batch.len(), batch.n_sites());
    drop(probe);
    for (label, cfg) in [
        ("floor", EpaConfig { max_memory: Some(floor), ..base.clone() }),
        ("lookup-floor", EpaConfig { max_memory: Some(lookup_floor), ..base.clone() }),
        ("no-lookup", EpaConfig { preplacement: PreplacementMode::Off, ..base.clone() }),
        ("threads-4", EpaConfig { threads: 4, ..base.clone() }),
        ("sitepar", EpaConfig { sitepar_threads: 3, ..base.clone() }),
        ("lru", EpaConfig { max_memory: Some(floor), strategy: StrategyKind::Lru, ..base.clone() }),
        ("tiny-chunks", EpaConfig { chunk_size: 2, ..base.clone() }),
    ] {
        let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg).unwrap();
        let (results, _) = placer.place(&batch).unwrap();
        for (a, b) in reference.iter().zip(&results) {
            assert_eq!(
                a.best().unwrap().edge,
                b.best().unwrap().edge,
                "config {label} changed best placement of {}",
                a.name
            );
        }
    }
}

#[test]
fn jplace_byte_identical_across_thread_counts() {
    // Determinism is part of the concurrency contract (DESIGN.md §6):
    // worker count must never change the output, bit for bit — neither
    // with the full CLV store nor under a floor AMC budget where worker
    // threads contend for the same few slots.
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let (ds, s2p, batch) = setup(&spec);
    let base = EpaConfig { chunk_size: 7, ..Default::default() };
    let probe = ctx_of(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    drop(probe);
    for (label, cfg) in [
        ("unmanaged", base.clone()),
        ("amc-floor", EpaConfig { max_memory: Some(floor), async_prefetch: true, ..base.clone() }),
    ] {
        let mut seen: Option<String> = None;
        for threads in [1usize, 2, 8] {
            let cfg = EpaConfig { threads, ..cfg.clone() };
            let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg).unwrap();
            let (results, _) = placer.place(&batch).unwrap();
            let j = to_jplace(&ds.tree, &results);
            match &seen {
                None => seen = Some(j),
                Some(reference) => {
                    assert_eq!(reference, &j, "{label}: jplace differs at {threads} threads");
                }
            }
        }
    }
}

#[test]
fn jplace_schema_is_structurally_valid() {
    // The jplace consumers downstream (gappa, guppy) are strict about
    // the envelope: version 3, the exact field ordering we advertise,
    // and exactly one "p" entry per query. Run metadata distinguishes
    // complete from interrupted runs.
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let (ds, s2p, batch) = setup(&spec);
    let placer = Placer::new(ctx_of(&ds), s2p, EpaConfig::default()).unwrap();
    let (results, _) = placer.place(&batch).unwrap();
    let j = to_jplace(&ds.tree, &results);

    assert!(j.contains("\"version\": 3"), "jplace version field missing");
    assert!(
        j.contains(
            "\"fields\": [\"edge_num\", \"likelihood\", \"like_weight_ratio\", \
             \"distal_length\", \"pendant_length\"]"
        ),
        "fields ordering changed: {j}"
    );
    // One placement record per query, keyed by name.
    assert_eq!(j.matches("\"p\":").count(), batch.len());
    for q in batch.queries() {
        assert!(j.contains(&format!("\"n\": [\"{}\"]", q.name)), "query {} missing", q.name);
    }
    // Every edge referenced by a placement exists in the annotated tree.
    let n_edges = ds.tree.n_edges();
    for r in &results {
        for p in &r.placements {
            assert!(p.edge.idx() < n_edges);
        }
    }
    // Completed runs are marked so; partial (interrupted) runs are not.
    assert!(j.contains("\"completed\": true"));
    let partial = to_jplace_with(&ds.tree, &results, false);
    assert!(partial.contains("\"completed\": false"));
    assert!(partial.contains("\"version\": 3"));
}

#[test]
fn jplace_equivalent_across_kernel_tiers() {
    // The tier contract (DESIGN.md §5c): forcing `--kernel-tier
    // reference` must produce the same placements as any other tier.
    // The scalar tiers are bit-identical, so their jplace output is
    // byte-equal; the simd tier is tolerance-checked — if its jplace
    // differs in bytes, every query must still pick the same best edge
    // with the log-likelihood within 1e-6.
    use phyloplace::kernel::TierChoice;
    for protein in [false, true] {
        let spec = if protein {
            phyloplace::datasets::serratus(Scale::Ci)
        } else {
            phyloplace::datasets::neotrop(Scale::Ci)
        };
        let (ds, s2p, batch) = setup(&spec);
        let base = EpaConfig { chunk_size: 7, ..Default::default() };

        let run = |choice: TierChoice| {
            let cfg = EpaConfig { kernel_tier: choice, ..base.clone() };
            let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg).unwrap();
            let (results, _) = placer.place(&batch).unwrap();
            let j = to_jplace(&ds.tree, &results);
            (results, j)
        };
        let (ref_results, ref_j) = run(TierChoice::Reference);

        // Fixed is bit-identical to reference: byte-equal jplace.
        let (_, fixed_j) = run(TierChoice::Fixed);
        assert_eq!(ref_j, fixed_j, "{}: fixed tier jplace differs from reference", spec.name);

        // Simd (and Auto, which resolves to simd or fixed) may differ
        // within the documented tolerance only.
        for choice in [TierChoice::Simd, TierChoice::Auto] {
            let (results, j) = run(choice);
            if j == ref_j {
                continue;
            }
            for (a, b) in ref_results.iter().zip(&results) {
                let (ba, bb) = (a.best().unwrap(), b.best().unwrap());
                assert_eq!(
                    ba.edge, bb.edge,
                    "{}: tier {:?} moved best placement of {}",
                    spec.name, choice, a.name
                );
                assert!(
                    (ba.log_likelihood - bb.log_likelihood).abs() <= 1e-6,
                    "{}: tier {:?} shifted lnL of {} by {:e}",
                    spec.name,
                    choice,
                    a.name,
                    (ba.log_likelihood - bb.log_likelihood).abs()
                );
            }
        }
    }
}

#[test]
fn metrics_report_exactly_one_kernel_tier() {
    // Observability invariant: every run exports exactly one
    // `kernel.tier.<name>` gauge (value 1) naming the tier it actually
    // dispatched, plus the site-parallel pool occupancy gauges.
    use phyloplace::kernel::TierChoice;
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let (ds, s2p, batch) = setup(&spec);
    for (choice, expect) in [
        (TierChoice::Reference, Some("kernel.tier.reference")),
        (TierChoice::Fixed, Some("kernel.tier.fixed")),
        (TierChoice::Simd, Some("kernel.tier.simd")),
        (TierChoice::Auto, None), // host-dependent, but still exactly one
    ] {
        let cfg = EpaConfig { kernel_tier: choice, ..Default::default() };
        let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg).unwrap();
        let (_, report) = placer.place(&batch).unwrap();
        let tiers: Vec<&str> = report
            .metrics
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with("kernel.tier."))
            .map(|(k, v)| {
                assert_eq!(*v, 1, "tier gauge {k} must be 1");
                k.as_str()
            })
            .collect();
        assert_eq!(tiers.len(), 1, "expected exactly one tier gauge, got {tiers:?}");
        if let Some(name) = expect {
            assert_eq!(tiers[0], name, "tier {choice:?} exported the wrong gauge");
        }
        for g in ["sitepar.pool.workers", "sitepar.pool.parked", "sitepar.pool.queue_depth"] {
            assert!(report.metrics.gauges.contains_key(g), "missing pool gauge {g}");
        }
    }
}

#[test]
fn protein_dataset_places() {
    let spec = phyloplace::datasets::serratus(Scale::Ci);
    let (ds, s2p, batch) = setup(&spec);
    assert_eq!(ds.model.n_states(), 20);
    let placer = Placer::new(ctx_of(&ds), s2p, EpaConfig::default()).unwrap();
    let (results, report) = placer.place(&batch).unwrap();
    assert!(report.used_lookup);
    assert!(results.iter().all(|r| r.best().unwrap().log_likelihood.is_finite()));
}

#[test]
fn budget_too_small_is_reported_not_panicked() {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let (ds, s2p, batch) = setup(&spec);
    let cfg = EpaConfig { max_memory: Some(1), ..Default::default() };
    let placer = Placer::new(ctx_of(&ds), s2p, cfg).unwrap();
    let err = placer.place(&batch).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("maxmem"), "unhelpful message: {msg}");
    assert!(msg.contains("chunk"), "should suggest lowering the chunk size: {msg}");
}

#[test]
fn fragments_place_like_their_full_queries() {
    // A fragment (50% masked) of a sequence identical to a taxon should
    // still place on that taxon's pendant branch.
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let (ds, s2p, _) = setup(&spec);
    let ctx = ctx_of(&ds);
    let sites = ds.reference.n_sites();
    let unknown = spec.alphabet.alphabet().unknown_code();
    let taxon = phyloplace::tree::NodeId(3);
    let per_pattern = ctx.tip_codes(taxon).to_vec();
    let full: Vec<u8> = s2p.iter().map(|&p| per_pattern[p as usize]).collect();
    let mut fragment = full.clone();
    for c in fragment.iter_mut().take(sites / 2) {
        *c = unknown;
    }
    let queries = vec![
        Sequence::from_codes("full", spec.alphabet, full).unwrap(),
        Sequence::from_codes("frag", spec.alphabet, fragment).unwrap(),
    ];
    let batch = QueryBatch::new(&queries, sites).unwrap();
    let placer = Placer::new(ctx, s2p, EpaConfig::default()).unwrap();
    let (results, _) = placer.place(&batch).unwrap();
    let pendant_edge = ds.tree.neighbors(taxon)[0].1;
    assert_eq!(results[0].best().unwrap().edge, pendant_edge);
    assert_eq!(results[1].best().unwrap().edge, pendant_edge);
}
