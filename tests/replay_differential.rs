//! The replay lab's differential contract, end to end: a placement run
//! under a tight memory budget, captured with `--slot-trace`, must be
//! reproduced **bit-exactly** by the offline simulator — same policy,
//! same slot count, identical hit/miss/eviction/install/acquire
//! counters. One run per replacement policy, plus the Belady oracle
//! bound: the clairvoyant replay never misses more than any live
//! policy on the trace it captured.
//!
//! This is the guarantee that makes offline `phyloplace replay` sweeps
//! trustworthy for `--maxmem` planning: if the simulator agrees with
//! the live slot manager at the captured configuration, its miss
//! curves at *other* slot counts are the real machine's, not a model's.

use phyloplace::place::{memplan, EpaConfig, Placer, PreplacementMode, QueryBatch, RunControl};
use phyloplace::prelude::*;
use phyloplace::replay::{simulate, Policy, SimStats, Trace};
use std::sync::Arc;

fn setup() -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

/// Floor slot budget + no lookup shortcut, so the run evicts and the
/// trace exercises the policy under pressure (not just compulsory
/// misses). Single worker thread keeps per-policy runs cheap; the
/// trace's exactness holds at any thread count because events are
/// recorded inside the table-lock critical sections.
fn tight_config(
    ds: &phyloplace::datasets::Dataset,
    batch: &QueryBatch,
    strategy: StrategyKind,
) -> EpaConfig {
    let base = EpaConfig {
        preplacement: PreplacementMode::Off,
        chunk_size: 7,
        threads: 2,
        block_size: 4,
        async_prefetch: false,
        strategy,
        ..Default::default()
    };
    let probe = ctx_of(ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    EpaConfig { max_memory: Some(floor), ..base }
}

/// Captures one traced run and returns `(trace, live counters, slots)`.
fn traced_run(strategy: StrategyKind) -> (Trace, SimStats, usize) {
    let (ds, s2p, batch) = setup();
    let cfg = tight_config(&ds, &batch, strategy);
    let placer = Placer::new(ctx_of(&ds), s2p, cfg).unwrap();
    let recorder = Arc::new(phylo_obs::slottrace::SlotTrace::new());
    let outcome = placer
        .place_run(
            &batch,
            RunControl { slot_trace: Some(Arc::clone(&recorder)), ..Default::default() },
        )
        .unwrap();
    assert!(outcome.completed);
    let s = &outcome.report.slot_stats;
    let live = SimStats {
        hits: s.hits,
        misses: s.misses,
        evictions: s.evictions,
        installs: s.installs,
        acquires: s.acquires,
    };
    (recorder.snapshot(), live, outcome.report.slots)
}

#[test]
fn simulator_matches_every_live_policy_bit_exactly() {
    for strategy in StrategyKind::all() {
        let (trace, live, slots) = traced_run(strategy);
        assert!(live.misses > 0, "{strategy}: a floor-budget run must miss");
        assert!(live.evictions > 0, "{strategy}: a floor-budget run must evict");
        assert_eq!(trace.meta.strategy, strategy.to_string());
        assert_eq!(trace.meta.n_slots as usize, slots);

        // The trace must survive its own text round trip first — the CLI
        // path goes through a file.
        let round = Trace::parse(&trace.to_text()).unwrap();
        assert_eq!(round.events, trace.events, "{strategy}: trace text round trip");

        let sim = simulate(&round, slots, Policy::Kind(strategy))
            .unwrap_or_else(|e| panic!("{strategy}: replay failed: {e}"));
        assert_eq!(
            sim, live,
            "{strategy}: simulated counters diverge from the live run at {slots} slots"
        );

        // The clairvoyant bound on the same trace and slot count.
        let oracle = simulate(&round, slots, Policy::Belady).unwrap();
        assert!(
            oracle.misses <= live.misses,
            "{strategy}: belady simulated {} misses > live {}",
            oracle.misses,
            live.misses
        );
        assert_eq!(oracle.acquires, live.acquires, "{strategy}: oracle replays the same demand");
    }
}

#[test]
fn cross_policy_replay_stays_feasible_on_a_real_trace() {
    // A trace captured under one policy replays under every other (and
    // the oracle) without jamming: the skipped-pin bookkeeping absorbs
    // residency divergence.
    let (trace, live, slots) = traced_run(StrategyKind::CostBased);
    let mut best_live = u64::MAX;
    for policy in Policy::all() {
        let s = simulate(&trace, slots, policy)
            .unwrap_or_else(|e| panic!("{policy}: cross-policy replay failed: {e}"));
        assert_eq!(s.acquires, live.acquires, "{policy}: demand stream is policy-independent");
        assert_eq!(s.hits + s.misses, s.acquires, "{policy}: traffic balance");
        assert_eq!(s.installs, s.misses, "{policy}: installs == misses");
        if policy != Policy::Belady {
            best_live = best_live.min(s.misses);
        }
    }
    let oracle = simulate(&trace, slots, Policy::Belady).unwrap();
    assert!(
        oracle.misses <= best_live,
        "belady ({}) must lower-bound every live policy (best {best_live})",
        oracle.misses
    );
}
