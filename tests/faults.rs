//! The fault matrix: every injection site in the pipeline is armed and
//! the run must either absorb the fault with byte-identical output
//! (recoverable faults) or surface a clean typed error — no hang, no
//! panic escaping `place()` — and leave the pipeline reusable.
//!
//! Build with `cargo test --features faults --test faults`; without the
//! feature this file compiles to nothing, matching release binaries
//! where every probe site folds away.
#![cfg(feature = "faults")]

use phylo_faults::Trigger;
use phyloplace::place::result::to_jplace;
use phyloplace::place::{memplan, EpaConfig, PlaceError, Placer, PreplacementMode, QueryBatch};
use phyloplace::prelude::*;
use std::sync::Mutex;
use std::time::{Duration, Instant};

// The fault registry is process-global; tests that arm sites must not
// overlap in time.
static LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (phyloplace::datasets::Dataset, Vec<u32>, QueryBatch) {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = phyloplace::datasets::generate(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    (ds, s2p, batch)
}

fn ctx_of(ds: &phyloplace::datasets::Dataset) -> ReferenceContext {
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    ReferenceContext::new(ds.tree.clone(), ds.model.clone(), ds.spec.alphabet.alphabet(), &patterns)
        .unwrap()
}

/// A config that exercises the full AMC machinery: no lookup shortcut,
/// floor slot budget, async prefetch, several worker threads.
fn amc_config(ds: &phyloplace::datasets::Dataset, batch: &QueryBatch) -> EpaConfig {
    let base = EpaConfig {
        preplacement: PreplacementMode::Off,
        chunk_size: 7,
        threads: 2,
        block_size: 4,
        async_prefetch: true,
        ..Default::default()
    };
    let probe = ctx_of(ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    EpaConfig { max_memory: Some(floor), ..base }
}

fn run_jplace(
    ds: &phyloplace::datasets::Dataset,
    s2p: &[u32],
    batch: &QueryBatch,
    cfg: &EpaConfig,
) -> String {
    let placer = Placer::new(ctx_of(ds), s2p.to_vec(), cfg.clone()).unwrap();
    let (results, _) = placer.place(batch).unwrap();
    to_jplace(&ds.tree, &results)
}

#[test]
fn recoverable_faults_preserve_output_bytes() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let cfg = amc_config(&ds, &batch);
    let baseline = run_jplace(&ds, &s2p, &batch, &cfg);

    for (site, trigger) in [
        // A spurious pin-exhaustion report: the degradation ladder must
        // split / flush-and-retry, not abort.
        ("amc::spurious_all_slots_pinned", Trigger::Once { after: 3 }),
        // A publish that arrives late: waiters block on the latch a
        // little longer, nothing else.
        ("amc::delayed_publish", Trigger::Every { period: 100 }),
        // A kernel scratch buffer that never returns to the pool: the
        // next checkout simply allocates a fresh one.
        ("engine::scratch_lost", Trigger::Every { period: 2 }),
    ] {
        phylo_faults::arm(site, trigger);
        let faulted = run_jplace(&ds, &s2p, &batch, &cfg);
        assert!(phylo_faults::hits(site) > 0, "{site} never fired — dead probe?");
        assert_eq!(baseline, faulted, "{site}: output changed under a recoverable fault");
        phylo_faults::disarm(site);
    }
    phylo_faults::reset();
}

/// Tier faults are recoverable by construction: CLVs are pure functions
/// of the run inputs, so a payload lost in writeback or corrupted at
/// rest degrades to recomputation — the jplace bytes must not move.
#[test]
fn tier_faults_degrade_to_recompute_with_identical_output() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let base_cfg = amc_config(&ds, &batch);
    let baseline = run_jplace(&ds, &s2p, &batch, &base_cfg);
    let tiered = EpaConfig {
        tiers: Some(phylo_amc::TierConfig::parse("compressed,disk").unwrap()),
        ..base_cfg
    };

    // Crash during writeback: demoted payloads die before landing in a
    // tier; later misses find nothing and transparently recompute.
    phylo_faults::arm("tier::writeback_crash", Trigger::Every { period: 2 });
    let placer = Placer::new(ctx_of(&ds), s2p.clone(), tiered.clone()).unwrap();
    let (results, report) = placer.place(&batch).unwrap();
    assert!(
        phylo_faults::hits("tier::writeback_crash") > 0,
        "writeback_crash never fired — dead probe?"
    );
    assert_eq!(baseline, to_jplace(&ds.tree, &results), "writeback crash changed the output");
    let stats = report.tier_stats.unwrap();
    assert!(stats.writeback_lost > 0, "lost writebacks must be counted: {stats:?}");
    phylo_faults::disarm("tier::writeback_crash");

    // Bit-rot between store and load: the CRC check quarantines the
    // entry and the miss recomputes — corrupt bytes never reach a
    // kernel or the output.
    phylo_faults::arm("tier::corrupt_reload", Trigger::Every { period: 2 });
    let placer = Placer::new(ctx_of(&ds), s2p.clone(), tiered).unwrap();
    let (results, report) = placer.place(&batch).unwrap();
    assert!(
        phylo_faults::hits("tier::corrupt_reload") > 0,
        "corrupt_reload never fired — dead probe?"
    );
    assert_eq!(baseline, to_jplace(&ds.tree, &results), "corrupt reload changed the output");
    let stats = report.tier_stats.unwrap();
    assert!(stats.corrupt > 0, "CRC quarantines must be counted: {stats:?}");
    phylo_faults::disarm("tier::corrupt_reload");
    phylo_faults::reset();
}

#[test]
fn degradation_stats_accumulate_across_chunks() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();

    // Under the floor budget a block size of 64 is clamped by every
    // plan_block call — once in the prescore phase and once in the
    // thorough phase of every chunk. The report must count them all; a
    // regression to last-chunk-only reporting would read exactly 2.
    let base = EpaConfig {
        preplacement: PreplacementMode::Off,
        chunk_size: 7,
        threads: 2,
        block_size: 64,
        async_prefetch: false,
        ..Default::default()
    };
    let probe = ctx_of(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    let cfg = EpaConfig { max_memory: Some(floor), ..base };
    let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg.clone()).unwrap();
    let n_chunks = batch.len().div_ceil(placer.memory_plan(&batch).unwrap().chunk_size) as u64;
    assert!(n_chunks >= 2, "need a multi-chunk batch, got {n_chunks} chunk(s)");
    let (_, report) = placer.place(&batch).unwrap();
    assert_eq!(
        report.degradation.block_clamped,
        2 * n_chunks,
        "block clamps must accumulate across all {n_chunks} chunks: {:?}",
        report.degradation
    );
    // The injected metrics counters mirror the authoritative stats.
    assert_eq!(
        report.metrics.counter("place.degrade.block_clamped"),
        report.degradation.block_clamped
    );

    // Spurious pin exhaustion on single-branch blocks forces the ladder's
    // flush-and-retry rung in many different chunks; every retry must
    // reach the final report, and the fault is recoverable so the output
    // bytes must not change.
    let cfg1 = EpaConfig { block_size: 1, ..cfg };
    let baseline = run_jplace(&ds, &s2p, &batch, &cfg1);
    phylo_faults::arm("amc::spurious_all_slots_pinned", Trigger::Every { period: 40 });
    let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg1.clone()).unwrap();
    let (results, rep) = placer.place(&batch).unwrap();
    assert!(phylo_faults::hits("amc::spurious_all_slots_pinned") >= 2, "fault barely fired");
    assert!(
        rep.degradation.flush_retries >= 2,
        "flush retries from every chunk must accumulate: {:?}",
        rep.degradation
    );
    assert_eq!(rep.metrics.counter("place.degrade.flush_retries"), rep.degradation.flush_retries);
    assert_eq!(baseline, to_jplace(&ds.tree, &results), "recoverable fault changed output");
    phylo_faults::disarm("amc::spurious_all_slots_pinned");
    phylo_faults::reset();
}

#[test]
fn worker_panic_is_contained_and_store_recovers() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let cfg = EpaConfig { chunk_size: 7, threads: 2, ..Default::default() };
    let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg.clone()).unwrap();

    phylo_faults::arm("place::worker_panic", Trigger::Once { after: 0 });
    match placer.place(&batch) {
        Err(PlaceError::WorkerPanicked { context }) => {
            assert!(context.contains("thorough"), "{context}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    phylo_faults::disarm("place::worker_panic");

    // The panic drained cleanly: the same placer must place the same
    // batch successfully afterwards.
    let baseline = run_jplace(&ds, &s2p, &batch, &cfg);
    let (results, _) = placer.place(&batch).unwrap();
    assert_eq!(baseline, to_jplace(&ds.tree, &results));
    phylo_faults::reset();
}

#[test]
fn prefetch_panic_is_contained_and_store_recovers() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    // Small blocks + no lookup so the async prefetch thread actually runs.
    let cfg = EpaConfig {
        preplacement: PreplacementMode::Off,
        chunk_size: 7,
        block_size: 4,
        async_prefetch: true,
        ..Default::default()
    };
    let placer = Placer::new(ctx_of(&ds), s2p.clone(), cfg.clone()).unwrap();

    phylo_faults::arm("place::prefetch_panic", Trigger::Once { after: 0 });
    match placer.place(&batch) {
        Err(PlaceError::WorkerPanicked { context }) => {
            assert!(context.contains("prefetch"), "{context}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    phylo_faults::disarm("place::prefetch_panic");

    let baseline = run_jplace(&ds, &s2p, &batch, &cfg);
    let (results, _) = placer.place(&batch).unwrap();
    assert_eq!(baseline, to_jplace(&ds.tree, &results));
    phylo_faults::reset();
}

#[test]
fn kernel_nan_is_a_typed_error_not_a_wrong_answer() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let cfg =
        EpaConfig { preplacement: PreplacementMode::Off, chunk_size: 7, ..Default::default() };
    let placer = Placer::new(ctx_of(&ds), s2p, cfg).unwrap();

    phylo_faults::arm("engine::kernel_nan", Trigger::Once { after: 2 });
    match placer.place(&batch) {
        Err(PlaceError::NonFiniteLikelihood { .. }) => {}
        other => panic!("expected NonFiniteLikelihood, got {other:?}"),
    }
    assert_eq!(phylo_faults::hits("engine::kernel_nan"), 1);
    phylo_faults::reset();
}

#[test]
fn lost_publish_times_out_instead_of_hanging() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let mut cfg = amc_config(&ds, &batch);
    cfg.slot_wait_timeout = Some(Duration::from_millis(200));
    let placer = Placer::new(ctx_of(&ds), s2p, cfg).unwrap();

    phylo_faults::arm("amc::lost_publish", Trigger::Once { after: 0 });
    let t = Instant::now();
    match placer.place(&batch) {
        Err(PlaceError::Engine(phyloplace::engine::EngineError::Amc(
            phyloplace::amc::AmcError::SlotWaitTimeout { .. },
        ))) => {}
        other => panic!("expected SlotWaitTimeout, got {other:?}"),
    }
    // The watchdog, not a human, must have broken the wait.
    assert!(t.elapsed() < Duration::from_secs(30), "waited {:?}", t.elapsed());
    phylo_faults::reset();
}

#[test]
fn arena_allocation_failure_is_typed() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let (ds, s2p, batch) = setup();
    let placer = Placer::new(ctx_of(&ds), s2p, EpaConfig::default()).unwrap();

    phylo_faults::arm("amc::arena_alloc", Trigger::Once { after: 0 });
    match placer.place(&batch) {
        Err(PlaceError::Engine(phyloplace::engine::EngineError::Amc(
            phyloplace::amc::AmcError::AllocationFailed { bytes },
        ))) => assert!(bytes > 0),
        other => panic!("expected AllocationFailed, got {other:?}"),
    }
    phylo_faults::reset();
}

#[test]
fn jplace_write_failure_leaves_no_partial_file() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    phylo_faults::reset();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("phyloplace-faults-{}.jplace", std::process::id()));
    let tmp = dir.join(format!("phyloplace-faults-{}.jplace.tmp", std::process::id()));
    std::fs::write(&path, "previous run").unwrap();

    phylo_faults::arm("place::jplace_io", Trigger::Once { after: 0 });
    let err = phyloplace::place::result::write_jplace_atomic(&path, "half-written").unwrap_err();
    assert!(err.to_string().contains("injected"));
    // The previous output survives untouched and no temp file lingers.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "previous run");
    assert!(!tmp.exists());
    phylo_faults::disarm("place::jplace_io");

    phyloplace::place::result::write_jplace_atomic(&path, "new output").unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "new output");
    assert!(!tmp.exists());
    let _ = std::fs::remove_file(&path);
    phylo_faults::reset();
}
