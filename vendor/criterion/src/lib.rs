//! Offline drop-in subset of the `criterion` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! benchmarking API surface the `bench` crate uses is vendored here:
//! benchmark groups with `sample_size` / `measurement_time` /
//! `warm_up_time` / `throughput`, `Bencher::iter` and `iter_batched`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: after a wall-clock warm-up that also estimates the
//! per-iteration cost, each of `sample_size` samples times a fixed batch
//! of iterations; the reported figure is the median ns/iteration across
//! samples. No statistical analysis, plots, or saved baselines — but two
//! environment variables integrate with CI tooling:
//!
//! - `CRITERION_QUICK=1` shrinks warm-up/measurement times for smoke runs.
//! - `CRITERION_JSON=<path>` writes all results of the process as a JSON
//!   array to `<path>` when the run finishes.
//!
//! The first non-flag CLI argument is a substring filter on
//! `group/benchmark` ids, matching `cargo bench -- <filter>` usage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (sites, slots, branches, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Hint for `iter_batched` input cost. The shim always re-runs setup per
/// iteration outside the timed section, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier, `function_name/parameter` or bare parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything `bench_function` accepts as an id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    bench: String,
    median_ns: f64,
    iterations: u64,
    throughput: Option<Throughput>,
}

/// The benchmark driver. Holds the CLI filter and the results collected
/// by every group in this process.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            quick: std::env::var("CRITERION_QUICK").map_or(false, |v| v == "1"),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Reads the benchmark filter from the command line (first non-flag
    /// argument; flags like `--bench` from cargo are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Prints a closing line and, when `CRITERION_JSON` is set, writes all
    /// collected results as a JSON array to that path.
    pub fn final_summary(&mut self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                match std::fs::write(&path, self.results_json()) {
                    Ok(()) => {
                        eprintln!("criterion(shim): wrote {} results to {path}", self.results.len())
                    }
                    Err(e) => eprintln!("criterion(shim): failed to write {path}: {e}"),
                }
            }
        }
    }

    fn results_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let (tp_kind, tp_amount) = match r.throughput {
                Some(Throughput::Elements(n)) => ("\"elements\"", n),
                Some(Throughput::Bytes(n)) => ("\"bytes\"", n),
                None => ("null", 0),
            };
            let per_sec = match r.throughput {
                Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if r.median_ns > 0.0 => {
                    n as f64 * 1e9 / r.median_ns
                }
                _ => 0.0,
            };
            out.push_str(&format!(
                "  {{\"group\": {:?}, \"bench\": {:?}, \"median_ns\": {:.3}, \"iterations\": {}, \"throughput_kind\": {}, \"throughput_per_iter\": {}, \"throughput_per_sec\": {:.1}}}{}\n",
                r.group,
                r.bench,
                r.median_ns,
                r.iterations,
                tp_kind,
                tp_amount,
                per_sec,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures several routines as one interleaved comparison: each
    /// routine is warmed up and cost-estimated individually, then the
    /// timed samples run round-robin across all routines. Sequential
    /// `bench_function` calls let slow host drift (thermal, cgroup,
    /// neighbors) bias later rows; round-robin sampling spreads the
    /// drift evenly, which matters when the rows are compared against
    /// each other (scaling curves, tier ratios). Each routine is
    /// recorded exactly as if it had run through `bench_function`,
    /// except that the reported figure is the *minimum* per-iteration
    /// time across samples rather than the median: for relative
    /// comparisons the minimum is the burst-robust estimator — every
    /// row eventually gets one clean scheduling window, while medians
    /// keep residual skew from whichever rows absorbed more neighbor
    /// noise.
    pub fn bench_comparison<'b>(&mut self, benches: Vec<(String, Box<dyn FnMut() + 'b>)>) {
        let (warm_up, measurement, samples) = if self.criterion.quick {
            (Duration::from_millis(50), Duration::from_millis(200), self.sample_size.min(5).max(2))
        } else {
            (self.warm_up_time, self.measurement_time, self.sample_size)
        };
        struct Row<'b> {
            bench: String,
            f: Box<dyn FnMut() + 'b>,
            iters_per_sample: u64,
            per_iter_ns: Vec<f64>,
            total_iters: u64,
        }
        let mut rows: Vec<Row<'b>> = Vec::new();
        for (bench, mut f) in benches {
            let full = format!("{}/{}", self.name, bench);
            if let Some(filter) = &self.criterion.filter {
                if !full.contains(filter.as_str()) {
                    continue;
                }
            }
            let warm_start = Instant::now();
            let mut warm_iters: u64 = 0;
            loop {
                black_box(f());
                warm_iters += 1;
                if warm_start.elapsed() >= warm_up {
                    break;
                }
            }
            let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
            let target_sample_ns = measurement.as_nanos() as f64 / samples as f64;
            let iters_per_sample = ((target_sample_ns / est_ns) as u64).max(1);
            rows.push(Row {
                bench,
                f,
                iters_per_sample,
                per_iter_ns: Vec::with_capacity(samples),
                total_iters: warm_iters,
            });
        }
        for _ in 0..samples {
            for row in rows.iter_mut() {
                let start = Instant::now();
                for _ in 0..row.iters_per_sample {
                    black_box((row.f)());
                }
                row.per_iter_ns
                    .push(start.elapsed().as_nanos() as f64 / row.iters_per_sample as f64);
                row.total_iters += row.iters_per_sample;
            }
        }
        for row in rows {
            let median_ns = row.per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
            let full = format!("{}/{}", self.name, row.bench);
            let tp = match self.throughput {
                Some(Throughput::Elements(n)) if median_ns > 0.0 => {
                    format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median_ns)
                }
                Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
                    format!("  thrpt: {:.3} MiB/s", n as f64 * 1e9 / median_ns / (1024.0 * 1024.0))
                }
                _ => String::new(),
            };
            println!("{full:<50} time: {median_ns:>12.1} ns/iter{tp}");
            self.criterion.results.push(BenchResult {
                group: self.name.clone(),
                bench: row.bench,
                median_ns,
                iterations: row.total_iters,
                throughput: self.throughput,
            });
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let bench = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, bench);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let (warm_up, measurement, samples) = if self.criterion.quick {
            (Duration::from_millis(50), Duration::from_millis(200), self.sample_size.min(5).max(2))
        } else {
            (self.warm_up_time, self.measurement_time, self.sample_size)
        };
        let mut bencher = Bencher { warm_up, measurement, samples, median_ns: None, iterations: 0 };
        f(&mut bencher);
        let median_ns = bencher.median_ns.unwrap_or(f64::NAN);
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) if median_ns > 0.0 => {
                format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median_ns)
            }
            Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
                format!("  thrpt: {:.3} MiB/s", n as f64 * 1e9 / median_ns / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{full:<50} time: {median_ns:>12.1} ns/iter{tp}");
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            bench,
            median_ns,
            iterations: bencher.iterations,
            throughput: self.throughput,
        });
        self
    }

    pub fn finish(self) {}
}

/// Runs the timing loops for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    median_ns: Option<f64>,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` in place: warm-up, then `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as the per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target_sample_ns = self.measurement.as_nanos() as f64 / self.samples as f64;
        let iters_per_sample = ((target_sample_ns / est_ns) as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.record(per_iter_ns, warm_iters + iters_per_sample * self.samples as u64);
    }

    /// Times `routine` over inputs built by `setup`; setup runs outside
    /// the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        let mut warm_busy = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_busy += start.elapsed();
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let est_ns = (warm_busy.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target_sample_ns = self.measurement.as_nanos() as f64 / self.samples as f64;
        let iters_per_sample = ((target_sample_ns / est_ns) as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut busy = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                busy += start.elapsed();
            }
            per_iter_ns.push(busy.as_nanos() as f64 / iters_per_sample as f64);
        }
        self.record(per_iter_ns, warm_iters + iters_per_sample * self.samples as u64);
    }

    fn record(&mut self, per_iter_ns: Vec<f64>, total_iters: u64) {
        self.median_ns = Some(median(per_iter_ns));
        self.iterations = total_iters;
    }
}

/// Median of a non-empty sample vector.
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 0 {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Defines a group runner callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Defines `main` running the listed groups and writing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_records() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            samples: 5,
            median_ns: None,
            iterations: 0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(b.median_ns.unwrap() > 0.0);
        assert!(b.iterations > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            samples: 3,
            median_ns: None,
            iterations: 0,
        };
        b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        assert!(b.median_ns.unwrap() > 0.0);
    }

    #[test]
    fn bench_comparison_records_every_row() {
        let mut c = Criterion { filter: None, quick: true, results: Vec::new() };
        {
            let mut g = c.benchmark_group("cmp");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            let a = std::cell::Cell::new(0u64);
            let b = std::cell::Cell::new(0u64);
            g.bench_comparison(vec![
                ("a".to_string(), Box::new(|| a.set(a.get().wrapping_add(1)))),
                ("b".to_string(), Box::new(|| b.set(b.get().wrapping_add(1)))),
            ]);
            assert!(a.get() > 0 && b.get() > 0, "both routines must actually run");
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        for r in &c.results {
            assert_eq!(r.group, "cmp");
            assert!(r.median_ns > 0.0);
            assert!(r.iterations > 0);
            assert!(matches!(r.throughput, Some(Throughput::Elements(10))));
        }
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut c = Criterion::default();
        c.results.push(BenchResult {
            group: "g".into(),
            bench: "b/4".into(),
            median_ns: 123.456,
            iterations: 1000,
            throughput: Some(Throughput::Elements(4096)),
        });
        let json = c.results_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\"throughput_kind\": \"elements\""));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 42).into_benchmark_id(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
