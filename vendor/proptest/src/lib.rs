//! Offline drop-in subset of the `proptest` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! slice of proptest that the test suites use is vendored here: the
//! [`proptest!`] macro, range / tuple / vec / simple-regex strategies, and
//! the `prop_assert*` macros. Each generated `#[test]` runs
//! `Config::cases` deterministic cases (seeded from the test name and case
//! index). There is no shrinking: a failing case panics with the case
//! number so it can be replayed by reducing `cases`.

pub mod test_runner {
    /// Run configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for one (test, case) pair.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5DEECE66D }
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Subset of proptest's `Strategy`: no shrinking,
    /// just deterministic generation from a [`TestRng`].
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategies are used by shared reference inside `proptest!`, so a
    /// blanket impl for references keeps `&strategy` usable too.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// `&'static str` as a strategy: a tiny regex-shaped generator
    /// supporting `[chars]{min,max}` / `[chars]{n}` / `[chars]` patterns
    /// (the only forms the workspace uses).
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_char_class(self).unwrap_or_else(|| {
                panic!("unsupported regex strategy {self:?} (shim supports `[chars]{{m,n}}` only)")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| class[rng.below(class.len() as u64) as usize]).collect()
        }
    }

    fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        if class.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((class, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        (min <= max).then_some((class, min, max))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`]: an exact length or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Generates `#[test]` functions that run a property over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::test_runner::Config = $cfg;
            // A stable per-test seed base from the test name.
            let __pt_name_seed: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf29ce484222325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100000001b3)
                });
            for __pt_case in 0..__pt_cfg.cases as u64 {
                let mut __pt_rng = $crate::test_runner::TestRng::from_seed(
                    __pt_name_seed ^ __pt_case.wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __pt_rng,
                    );
                )+
                let __pt_result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(err) = __pt_result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __pt_case + 1,
                        __pt_cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::collection::vec((0u8..4, 0u32..24), 1..200);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 200);
            for (a, b) in v {
                assert!(a < 4 && b < 24);
            }
        }
    }

    #[test]
    fn regex_subset_generates_class_strings() {
        let mut rng = TestRng::from_seed(3);
        let s = "[ACGTRYN]{1,80}";
        for _ in 0..100 {
            let text = Strategy::generate(&s, &mut rng);
            assert!(!text.is_empty() && text.len() <= 80);
            assert!(text.chars().all(|c| "ACGTRYN".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, cases run, asserts pass.
        #[test]
        fn macro_generates_cases(a in 1usize..5, b in 0.0f64..1.0) {
            prop_assert!(a >= 1 && a < 5);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
        }
    }
}
