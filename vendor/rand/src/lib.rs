//! Offline drop-in subset of the `rand` crate API.
//!
//! This workspace builds in environments with no registry access, so the
//! handful of `rand` entry points the repo actually uses are vendored here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen` / `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the tests and data simulators rely on (they never
//! assume the upstream rand stream).

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`; integers or floats).
    /// `T` is generic (not an associated type) so the expected output type
    /// drives inference of the range literals, as in upstream rand.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample from the "standard" distribution of `T` (floats in
    /// `[0, 1)`, full-range integers, fair bools).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly, producing a `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// The "standard" distribution used by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality PRNG. Stands in for
    /// upstream `StdRng` (which makes no cross-version stream guarantees
    /// either, so depending only on determinism-per-seed is sound).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..4);
            assert!(w < 4);
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..2000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((800..1200).contains(&trues), "gen_bool(0.5) badly biased: {trues}");
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
