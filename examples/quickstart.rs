//! Quickstart: place query sequences on a reference tree, with and
//! without a memory budget, and export `jplace` output.
//!
//! Run with: `cargo run --release --example quickstart`

use phyloplace::place::result::to_jplace;
use phyloplace::prelude::*;

fn main() {
    // 1. A reference analysis needs a tree, an alignment, and a model.
    //    Here we synthesize all three (a scaled-down analogue of the
    //    paper's `neotrop` dataset); with real data you would parse the
    //    tree via `phyloplace::tree::newick::parse` and the alignment via
    //    `phyloplace::seq::fasta::read`.
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = generate_dataset(&spec);
    println!(
        "reference: {} taxa × {} sites ({}), {} queries",
        ds.tree.n_leaves(),
        ds.reference.n_sites(),
        ds.spec.alphabet,
        ds.queries.len()
    );

    // 2. Compress the alignment to site patterns and build the engine
    //    context: per-edge transition matrices, tip encodings, cost
    //    tables.
    let patterns = phyloplace::seq::compress(&ds.reference).expect("non-empty alignment");
    let ctx = ReferenceContext::new(
        ds.tree.clone(),
        ds.model.clone(),
        ds.spec.alphabet.alphabet(),
        &patterns,
    )
    .expect("alignment covers every taxon");
    println!(
        "CLV shape: {} patterns × {} rates × {} states = {:.1} KiB per CLV",
        ctx.layout().patterns,
        ctx.layout().rates,
        ctx.layout().states,
        ctx.layout().clv_bytes() as f64 / 1024.0
    );

    // 3. Place with EPA-NG defaults (no memory limit).
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).expect("aligned queries");
    let placer =
        Placer::new(ctx, patterns.site_to_pattern().to_vec(), EpaConfig::default()).unwrap();
    let (results, report) = placer.place(&batch).expect("placement");
    println!(
        "\nunlimited memory: {:?}, peak {:.1} MiB, {} slots, {} CLV computations",
        report.total_time,
        report.peak_memory as f64 / (1024.0 * 1024.0),
        report.slots,
        report.slot_stats.misses
    );

    // 4. The same run under an explicit memory budget (the paper's
    //    --maxmem): fewer CLV slots, more recomputation.
    let ctx2 = ReferenceContext::new(
        ds.tree.clone(),
        ds.model.clone(),
        ds.spec.alphabet.alphabet(),
        &patterns,
    )
    .unwrap();
    let budget_cfg = EpaConfig::default().with_maxmem_mib(1.0);
    let placer2 = Placer::new(ctx2, patterns.site_to_pattern().to_vec(), budget_cfg).unwrap();
    let (results2, report2) = placer2.place(&batch).expect("budgeted placement");
    println!(
        "1 MiB budget:     {:?}, peak {:.1} MiB, {} slots, {} CLV computations",
        report2.total_time,
        report2.peak_memory as f64 / (1024.0 * 1024.0),
        report2.slots,
        report2.slot_stats.misses
    );

    // 5. Identical placements either way — memory management never
    //    changes results.
    for (a, b) in results.iter().zip(&results2) {
        assert_eq!(a.best().unwrap().edge, b.best().unwrap().edge);
    }
    println!("\nbest placements (identical under both budgets):");
    for r in results.iter().take(5) {
        let best = r.best().unwrap();
        println!(
            "  {} -> edge {} (lnL {:.2}, LWR {:.2})",
            r.name, best.edge, best.log_likelihood, best.like_weight_ratio
        );
    }

    // 6. Export the standard jplace interchange format.
    let jplace = to_jplace(&ds.tree, &results);
    println!(
        "\njplace output: {} bytes (first line: {})",
        jplace.len(),
        jplace.lines().next().unwrap()
    );
}
