//! Measures what the daemon exists for: per-request latency against a
//! warm engine versus paying the cold-start cost (tree parse, model
//! eigendecomposition, CLV arena build, preplacement lookup) on every
//! request.
//!
//! Three modes over the same synthetic CI dataset:
//!
//! * `warm` — one [`WarmEngine`] built up front, then each query placed
//!   through `place_merged` (the daemon's request path, in-process);
//! * `cold_engine` — a fresh `WarmEngine::build` per request (what a
//!   library caller pays without a daemon);
//! * `cold_process` — a full `phyloplace place` subprocess per request
//!   (what a script pays), measured only when the release binary is
//!   already built, since an example must not trigger a build.
//!
//! Run with: `cargo run --release --example bench_serve [out.json]`
//! (default output: `BENCH_serve.json` in the working directory).

use phyloplace::prelude::Scale;
use phyloplace::serve::{EngineSettings, WarmEngine};
use std::time::Instant;

struct Mode {
    name: &'static str,
    mean_ns: f64,
    min_ns: f64,
    requests: usize,
}

fn stats(name: &'static str, samples: &[f64]) -> Mode {
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    let min_ns = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    Mode { name, mean_ns, min_ns, requests: samples.len() }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());

    let ds = phyloplace::datasets::generate(&phyloplace::datasets::neotrop(Scale::Ci));
    let tree_text = phyloplace::tree::newick::write(&ds.tree);
    let ref_fasta = phyloplace::seq::fasta::to_string(ds.reference.rows(), 70);
    let queries: Vec<String> = ds
        .queries
        .iter()
        .map(|q| phyloplace::seq::fasta::to_string(std::slice::from_ref(q), 70))
        .collect();
    let st = EngineSettings::default();
    let n_requests = queries.len().min(8);

    let mut modes: Vec<Mode> = Vec::new();

    // Warm: the daemon's request path. Build once, serve many.
    let t0 = Instant::now();
    let engine = WarmEngine::build(&tree_text, &ref_fasta, &st).unwrap();
    let warmup_ns = t0.elapsed().as_nanos() as f64;
    let token = phyloplace::amc::CancelToken::new();
    // One throwaway request so first-touch page faults are not billed
    // to the first measured sample.
    let rows0 = engine.parse_queries(&queries[0]).unwrap();
    engine.place_merged(&[rows0], &token)[0].as_ref().unwrap();
    let mut warm_samples = Vec::new();
    for q in queries.iter().take(n_requests) {
        let rows = engine.parse_queries(q).unwrap();
        let t = Instant::now();
        let served = engine.place_merged(&[rows], &token);
        assert!(served[0].is_ok());
        warm_samples.push(t.elapsed().as_nanos() as f64);
    }
    modes.push(stats("warm", &warm_samples));

    // Cold engine: rebuild the full warm state per request.
    let mut cold_samples = Vec::new();
    for q in queries.iter().take(n_requests) {
        let t = Instant::now();
        let eng = WarmEngine::build(&tree_text, &ref_fasta, &st).unwrap();
        let rows = eng.parse_queries(q).unwrap();
        let served = eng.place_merged(&[rows], &phyloplace::amc::CancelToken::new());
        assert!(served[0].is_ok());
        cold_samples.push(t.elapsed().as_nanos() as f64);
    }
    modes.push(stats("cold_engine", &cold_samples));

    // Cold process: one `phyloplace place` subprocess per request, only
    // if the release binary already exists.
    let bin = std::path::Path::new("target/release/phyloplace");
    if bin.exists() {
        let dir = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ref.nwk"), &tree_text).unwrap();
        std::fs::write(dir.join("ref.fasta"), &ref_fasta).unwrap();
        let mut proc_samples = Vec::new();
        for (i, q) in queries.iter().take(n_requests).enumerate() {
            let qpath = dir.join(format!("q{i}.fasta"));
            std::fs::write(&qpath, q).unwrap();
            let t = Instant::now();
            let out = std::process::Command::new(bin)
                .args(["place", "--tree"])
                .arg(dir.join("ref.nwk"))
                .arg("--ref-msa")
                .arg(dir.join("ref.fasta"))
                .arg("--queries")
                .arg(&qpath)
                .output()
                .unwrap();
            assert!(out.status.success(), "cold place run failed");
            proc_samples.push(t.elapsed().as_nanos() as f64);
        }
        modes.push(stats("cold_process", &proc_samples));
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        eprintln!("target/release/phyloplace not built; skipping cold_process mode");
    }

    for m in &modes {
        println!(
            "serve [{:<12}] mean={:>9.1}us  min={:>9.1}us  ({} requests)",
            m.name,
            m.mean_ns / 1e3,
            m.min_ns / 1e3,
            m.requests,
        );
    }
    println!("warm-up (one-time engine build): {:.1}us", warmup_ns / 1e3);

    // Hand-rolled JSON (no serde in the tree): one object per mode plus
    // the one-time warm-up cost the daemon amortizes away.
    let mut json = String::from("[\n");
    for (i, m) in modes.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"mode\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"requests\": {}, \"warmup_ns\": {:.1}}}{}\n",
            m.name,
            m.mean_ns,
            m.min_ns,
            m.requests,
            warmup_ns,
            if i + 1 < modes.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).unwrap();
    println!("wrote {out_path}");
}
