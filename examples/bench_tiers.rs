//! Measures the tiered-store trade-off the demote-vs-drop cost model
//! navigates: how long a reload from each storage tier takes versus
//! recomputing the CLV with the kernels, and the recompute cost (in
//! descendant-operation units) where the two break even — the
//! *crossover* below which demotion stops paying.
//!
//! The measurement drives the real pipeline, not a synthetic loop: a
//! floor-slot [`ManagedStore`] with a [`TieredStore`] attached walks
//! every directed edge of the tree twice, so the first pass demotes
//! evicted CLVs and the second pass reloads them, and the reported
//! latencies are the store's own EWMAs — the exact numbers the live
//! cost model steers by. One DNA and one protein dataset, since the
//! CLV row width (4 vs 20 states) moves both sides of the crossover.
//!
//! Run with: `cargo run --release --example bench_tiers [out.json]`
//! (default output: `BENCH_tiers.json` in the working directory).

use phyloplace::amc::{StrategyKind, TierConfig, TieredStore};
use phyloplace::prelude::*;
use phyloplace::tree::ids::DirEdgeId;

struct TierRow {
    dataset: &'static str,
    alphabet: &'static str,
    tier: &'static str,
    reload_ns: f64,
    recompute_ns_per_cost: f64,
    crossover_cost: f64,
    demotions: u64,
    reloads: u64,
    payload_bytes: usize,
}

fn measure(spec: &phyloplace::datasets::DatasetSpec, tier_spec: &'static str) -> TierRow {
    let ds = generate_dataset(spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let ctx = ReferenceContext::new(
        ds.tree.clone(),
        ds.model.clone(),
        ds.spec.alphabet.alphabet(),
        &patterns,
    )
    .unwrap();

    // Floor slots: every block of edges evicts the previous one, so the
    // two passes below exercise demotion and reload on every CLV.
    let store = ManagedStore::with_slots(&ctx, ctx.min_slots(), StrategyKind::default()).unwrap();
    let cfg = TierConfig::parse(tier_spec).unwrap();
    let tiers = TieredStore::new(
        &cfg,
        ctx.tree().n_dir_edges(),
        ctx.layout().clv_len(),
        ctx.layout().patterns,
        ctx.cost_table(),
        None,
    )
    .unwrap();
    store.arena().set_tiers(std::sync::Arc::clone(&tiers));

    let n_edges = ctx.tree().n_edges();
    let walk = |_pass: usize| {
        // One edge per block: two target pins plus the traversal floor
        // always fit in `min_slots`, for any tree size.
        for block in (0..n_edges).collect::<Vec<_>>().chunks(1) {
            let dirs: Vec<DirEdgeId> = block
                .iter()
                .flat_map(|&e| {
                    let e = phyloplace::tree::ids::EdgeId(e as u32);
                    [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]
                })
                .collect();
            let prepared = store.prepare(&ctx, &dirs).unwrap();
            store.release(prepared);
        }
    };
    walk(0); // populate: recomputes feed the rate EWMA, evictions demote
    tiers.drain(); // all demotions landed before the reload pass
    walk(1); // revisit: tier reloads feed the latency EWMA
    tiers.drain();

    let stats = tiers.stats();
    let reload_ns = tiers.reload_latency_ns().into_iter().map(|(_, ns)| ns).fold(0.0f64, f64::max);
    let rate = tiers.recompute_ns_per_cost();
    let crossover = if rate > 0.0 { reload_ns / rate } else { f64::NAN };
    TierRow {
        dataset: spec.name,
        alphabet: match spec.alphabet {
            phyloplace::seq::alphabet::AlphabetKind::Dna => "dna",
            _ => "protein",
        },
        tier: tier_spec,
        reload_ns,
        recompute_ns_per_cost: rate,
        crossover_cost: crossover,
        demotions: stats.demotions,
        reloads: stats.reloads,
        payload_bytes: ctx.layout().clv_len() * 8 + ctx.layout().patterns * 4,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_tiers.json".to_string());
    let mut rows = Vec::new();
    // One DNA and one protein reference: the state count scales the
    // recompute side ~5x while the payload (and thus reload) scales
    // similarly — where the crossover lands is an empirical question.
    for spec in
        [phyloplace::datasets::neotrop(Scale::Ci), phyloplace::datasets::serratus(Scale::Ci)]
    {
        for tier in ["ram", "compressed", "disk"] {
            let row = measure(&spec, tier);
            println!(
                "{:<10} {:<8} {:<11} reload={:>10.0}ns  recompute={:>8.1}ns/cost  \
                 crossover@cost={:<8.1} demotions={} reloads={}",
                row.dataset,
                row.alphabet,
                row.tier,
                row.reload_ns,
                row.recompute_ns_per_cost,
                row.crossover_cost,
                row.demotions,
                row.reloads,
            );
            rows.push(row);
        }
    }

    // Hand-rolled JSON (no serde in the tree): one object per
    // dataset × tier with both sides of the crossover.
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"dataset\": \"{}\", \"alphabet\": \"{}\", \"tier\": \"{}\", \
             \"reload_ns\": {:.1}, \"recompute_ns_per_cost\": {:.3}, \
             \"crossover_cost\": {:.3}, \"demotions\": {}, \"reloads\": {}, \
             \"payload_bytes\": {}}}{}\n",
            r.dataset,
            r.alphabet,
            r.tier,
            r.reload_ns,
            r.recompute_ns_per_cost,
            if r.crossover_cost.is_nan() { -1.0 } else { r.crossover_cost },
            r.demotions,
            r.reloads,
            r.payload_bytes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).unwrap();
    println!("wrote {out_path}");
}
