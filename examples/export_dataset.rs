//! Exports a synthetic dataset to on-disk files the `phyloplace` CLI can
//! consume: `ref.nwk`, `ref.fasta`, and `query.fasta` in the given
//! directory. Used by `scripts/ci.sh` to drive the binary end-to-end
//! (checkpoint → interrupt → resume) against real files.
//!
//! ```text
//! cargo run --release --example export_dataset -- OUT_DIR [neotrop|serratus|pro_ref]
//! ```

use phyloplace::prelude::Scale;
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args.next().unwrap_or_else(|| {
        eprintln!("usage: export_dataset OUT_DIR [neotrop|serratus|pro_ref]");
        std::process::exit(2);
    });
    let which = args.next().unwrap_or_else(|| "neotrop".to_string());
    let spec = match which.as_str() {
        "neotrop" => phyloplace::datasets::neotrop(Scale::Ci),
        "serratus" => phyloplace::datasets::serratus(Scale::Ci),
        "pro_ref" => phyloplace::datasets::pro_ref(Scale::Ci),
        other => {
            eprintln!("unknown dataset {other:?} (want neotrop|serratus|pro_ref)");
            std::process::exit(2);
        }
    };
    let ds = phyloplace::datasets::generate(&spec);
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create output directory");
    std::fs::write(dir.join("ref.nwk"), phyloplace::tree::newick::write(&ds.tree))
        .expect("write ref.nwk");
    std::fs::write(
        dir.join("ref.fasta"),
        phyloplace::seq::fasta::to_string(ds.reference.rows(), 70),
    )
    .expect("write ref.fasta");
    std::fs::write(dir.join("query.fasta"), phyloplace::seq::fasta::to_string(&ds.queries, 70))
        .expect("write query.fasta");
    eprintln!(
        "wrote {} ({} taxa, {} sites, {} queries)",
        dir.display(),
        ds.tree.n_leaves(),
        ds.reference.n_sites(),
        ds.queries.len()
    );
}
