//! Plugging a custom CLV replacement strategy into the slot manager.
//!
//! The paper exposes slot replacement as "a generic replacement strategy
//! interface via a set of callback functions that allow the developer to
//! fully customize how a slot is chosen/overwritten" (§IV) and names
//! adaptive strategies as future work. This example implements a
//! **second-chance (clock)** policy on that interface, runs the same
//! constrained likelihood workload under every built-in policy plus the
//! custom one, and compares recomputation counts.
//!
//! Run with: `cargo run --release --example custom_replacement_strategy`

use phyloplace::amc::{ClvKey, ReplacementStrategy, SlotId, StrategyKind, VictimView};
use phyloplace::engine::{loglik, ManagedStore, ReferenceContext};
use phyloplace::prelude::*;

/// Second-chance ("clock") eviction: every access sets a reference bit;
/// the clock hand sweeps slots, clearing bits until it finds an unpinned
/// slot whose bit is already clear.
struct SecondChance {
    referenced: Vec<bool>,
    hand: usize,
}

impl SecondChance {
    fn new() -> Self {
        SecondChance { referenced: Vec::new(), hand: 0 }
    }

    fn mark(&mut self, slot: SlotId) {
        if slot.idx() >= self.referenced.len() {
            self.referenced.resize(slot.idx() + 1, false);
        }
        self.referenced[slot.idx()] = true;
    }
}

impl ReplacementStrategy for SecondChance {
    fn name(&self) -> &'static str {
        "second-chance"
    }
    fn on_insert(&mut self, _clv: ClvKey, slot: SlotId) {
        self.mark(slot);
    }
    fn on_access(&mut self, _clv: ClvKey, slot: SlotId) {
        self.mark(slot);
    }
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        let candidates: Vec<SlotId> = view.candidates().map(|(s, _)| s).collect();
        if candidates.is_empty() {
            return None;
        }
        let max_slot = candidates.iter().map(|s| s.idx()).max().unwrap();
        if self.referenced.len() <= max_slot {
            self.referenced.resize(max_slot + 1, false);
        }
        // Sweep at most two full revolutions; the first pass clears bits.
        for _ in 0..2 * (max_slot + 1) {
            self.hand = (self.hand + 1) % (max_slot + 1);
            let slot = SlotId(self.hand as u32);
            if !candidates.contains(&slot) {
                continue;
            }
            if self.referenced[self.hand] {
                self.referenced[self.hand] = false;
            } else {
                return Some(slot);
            }
        }
        candidates.first().copied()
    }
}

/// A likelihood workload that stresses eviction: evaluate the tree at
/// every branch, twice, under a tight slot budget.
fn workload(ctx: &ReferenceContext, mut store: ManagedStore) -> (f64, u64) {
    let mut last = 0.0;
    for _round in 0..2 {
        for e in ctx.tree().all_edges() {
            last = loglik::tree_log_likelihood(ctx, &mut store, e).expect("likelihood");
        }
    }
    (last, store.stats().misses)
}

fn main() {
    let spec = phyloplace::datasets::neotrop(Scale::Ci);
    let ds = generate_dataset(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let build_ctx = || {
        ReferenceContext::new(
            ds.tree.clone(),
            ds.model.clone(),
            ds.spec.alphabet.alphabet(),
            &patterns,
        )
        .unwrap()
    };
    let ctx = build_ctx();
    let slots = ctx.min_slots() + 4;
    println!(
        "workload: 2 sweeps × {} branches on a {}-taxon tree, {} slots\n",
        ctx.tree().n_edges(),
        ctx.tree().n_leaves(),
        slots
    );
    println!("{:>14}  {:>12}  {:>14}", "strategy", "recomputes", "ln L (last)");

    let mut reference_ll = None;
    for kind in StrategyKind::all() {
        let ctx = build_ctx();
        let costs = kind.needs_costs().then(|| ctx.cost_table());
        let store = ManagedStore::with_strategy(&ctx, slots, kind.build(costs)).unwrap();
        let (ll, misses) = workload(&ctx, store);
        println!("{:>14}  {:>12}  {:>14.4}", kind.to_string(), misses, ll);
        *reference_ll.get_or_insert(ll) = ll;
    }

    // The custom policy, through the very same interface.
    let ctx = build_ctx();
    let store = ManagedStore::with_strategy(&ctx, slots, Box::new(SecondChance::new())).unwrap();
    let (ll, misses) = workload(&ctx, store);
    println!("{:>14}  {:>12}  {:>14.4}", "second-chance", misses, ll);

    assert!(
        (ll - reference_ll.unwrap()).abs() < 1e-9,
        "strategies must never change the likelihood, only the cost"
    );
    println!("\nevery policy computed the identical likelihood — they differ only in recomputation cost.");
}
