//! EPA-NG versus the pplacer-style baseline on the same data (the
//! paper's Fig. 5 scenario, in miniature).
//!
//! Four configurations: each tool with memory saving off and on. EPA-NG's
//! saving is the Active Management of CLVs (slot budget); pplacer's is a
//! file-backed CLV store. Placements agree; costs differ.
//!
//! Run with: `cargo run --release --example pplacer_comparison`

use phyloplace::baseline::{Backing, PplacerConfig, PplacerLike};
use phyloplace::place::{memplan, EpaConfig, Placer, QueryBatch};
use phyloplace::prelude::*;
use std::time::Instant;

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let spec = phyloplace::datasets::serratus(Scale::Ci);
    let ds = generate_dataset(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let build_ctx = || {
        ReferenceContext::new(
            ds.tree.clone(),
            ds.model.clone(),
            ds.spec.alphabet.alphabet(),
            &patterns,
        )
        .unwrap()
    };
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();
    println!(
        "dataset: {} AA taxa × {} sites, {} queries\n",
        ds.tree.n_leaves(),
        ds.reference.n_sites(),
        batch.len()
    );
    println!("{:>8} {:>8} {:>9} {:>10}  best edges", "tool", "memsave", "time", "peak MiB");

    let mut best: Option<Vec<u32>> = None;
    let mut check = |name: &str, edges: Vec<u32>| {
        if let Some(reference) = &best {
            assert_eq!(reference, &edges, "{name} disagrees on placements");
        } else {
            best = Some(edges);
        }
    };

    // EPA-NG, off.
    let cfg = EpaConfig { threads: 1, ..Default::default() };
    let placer = Placer::new(build_ctx(), s2p.clone(), cfg.clone()).unwrap();
    let t = Instant::now();
    let (r, rep) = placer.place(&batch).unwrap();
    println!(
        "{:>8} {:>8} {:>8.2}s {:>10.1}  {:?}",
        "epa-ng",
        "off",
        t.elapsed().as_secs_f64(),
        mib(rep.peak_memory),
        r.iter().map(|x| x.best().unwrap().edge.0).collect::<Vec<_>>()
    );
    check("epa-off", r.iter().map(|x| x.best().unwrap().edge.0).collect());

    // EPA-NG, AMC at the floor.
    let probe = build_ctx();
    let floor = memplan::floor_budget(&probe, &cfg, batch.len(), batch.n_sites());
    drop(probe);
    let amc_cfg = EpaConfig { max_memory: Some(floor), ..cfg.clone() };
    let placer = Placer::new(build_ctx(), s2p.clone(), amc_cfg).unwrap();
    let t = Instant::now();
    let (r, rep) = placer.place(&batch).unwrap();
    println!(
        "{:>8} {:>8} {:>8.2}s {:>10.1}  (identical)",
        "epa-ng",
        "on",
        t.elapsed().as_secs_f64(),
        mib(rep.peak_memory)
    );
    check("epa-amc", r.iter().map(|x| x.best().unwrap().edge.0).collect());

    // pplacer, RAM.
    let t = Instant::now();
    let mut pp = PplacerLike::build(build_ctx(), s2p.clone(), PplacerConfig::default()).unwrap();
    let (r, rep) = pp.place(&batch).unwrap();
    println!(
        "{:>8} {:>8} {:>8.2}s {:>10.1}  (identical)",
        "pplacer",
        "off",
        t.elapsed().as_secs_f64(),
        mib(rep.peak_memory)
    );
    check("pplacer-ram", r.iter().map(|x| x.best().unwrap().edge.0).collect());

    // pplacer, file-backed.
    let t = Instant::now();
    let cfg_file = PplacerConfig { backing: Backing::File, ..Default::default() };
    let mut pp = PplacerLike::build(build_ctx(), s2p, cfg_file).unwrap();
    let (r, rep) = pp.place(&batch).unwrap();
    println!(
        "{:>8} {:>8} {:>8.2}s {:>10.1}  (identical)",
        "pplacer",
        "on",
        t.elapsed().as_secs_f64(),
        mib(rep.peak_memory)
    );
    check("pplacer-file", r.iter().map(|x| x.best().unwrap().edge.0).collect());

    println!("\nall four configurations agree on every query's best branch.");
}
