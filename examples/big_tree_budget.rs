//! The paper's headline scenario: placement on a *large* reference tree
//! that does not fit comfortably in memory.
//!
//! This example builds a pro_ref-style tree (the paper's 20 000-taxon
//! PICRUSt2 reference, scaled to keep the example fast), shows how the
//! memory planner turns a `--maxmem` budget into slot counts and the
//! lookup-table decision, and sweeps the budget to expose the
//! memory-versus-runtime trade-off — including the sharp cliff when the
//! preplacement lookup table no longer fits.
//!
//! Run with: `cargo run --release --example big_tree_budget`

use phyloplace::place::{memplan, EpaConfig, Placer, QueryBatch};
use phyloplace::prelude::*;
use std::time::Instant;

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let spec = phyloplace::datasets::pro_ref(Scale::Ci);
    let ds = generate_dataset(&spec);
    let patterns = phyloplace::seq::compress(&ds.reference).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let build_ctx = || {
        ReferenceContext::new(
            ds.tree.clone(),
            ds.model.clone(),
            ds.spec.alphabet.alphabet(),
            &patterns,
        )
        .unwrap()
    };
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).unwrap();

    let probe = build_ctx();
    println!(
        "reference tree: {} taxa, {} branches -> full layout = {} directional CLVs",
        probe.tree().n_leaves(),
        probe.tree().n_edges(),
        probe.max_slots()
    );
    println!(
        "minimum slots (⌈log2 n⌉ + 2): {}   CLV size: {:.1} KiB",
        probe.min_slots(),
        probe.layout().clv_bytes() as f64 / 1024.0
    );

    let base = EpaConfig { chunk_size: 4, threads: 1, ..Default::default() };
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    let lookup_floor = memplan::lookup_floor_budget(&probe, &base, batch.len(), batch.n_sites());
    drop(probe);
    println!(
        "feasible budgets: floor {:.1} MiB (no lookup), lookup floor {:.1} MiB\n",
        mib(floor),
        mib(lookup_floor)
    );

    // Reference run: no budget.
    let placer = Placer::new(build_ctx(), s2p.clone(), base.clone()).unwrap();
    let t = Instant::now();
    let (reference_results, report) = placer.place(&batch).unwrap();
    let ref_time = t.elapsed();
    let ref_mem = report.peak_memory;
    println!(
        "{:>12}  {:>10}  {:>9}  {:>7}  {:>10}  lookup",
        "budget", "peak MiB", "time", "slots", "recomputes"
    );
    println!(
        "{:>12}  {:>10.1}  {:>8.2}s  {:>7}  {:>10}  yes",
        "(none)",
        mib(ref_mem),
        ref_time.as_secs_f64(),
        report.slots,
        report.slot_stats.misses
    );

    // Sweep: comfortable -> just above cliff -> at the floor.
    for budget in [ref_mem * 7 / 10, lookup_floor, floor] {
        let cfg = EpaConfig { max_memory: Some(budget), ..base.clone() };
        let placer = Placer::new(build_ctx(), s2p.clone(), cfg).unwrap();
        let t = Instant::now();
        let (results, report) = placer.place(&batch).unwrap();
        let dt = t.elapsed();
        println!(
            "{:>9.1}MiB  {:>10.1}  {:>8.2}s  {:>7}  {:>10}  {}",
            mib(budget),
            mib(report.peak_memory),
            dt.as_secs_f64(),
            report.slots,
            report.slot_stats.misses,
            if report.used_lookup { "yes" } else { "no" }
        );
        // Placements never change, only cost does.
        for (a, b) in reference_results.iter().zip(&results) {
            assert_eq!(a.best().unwrap().edge, b.best().unwrap().edge);
        }
    }
    println!("\nall budgets produced identical best placements.");
}
