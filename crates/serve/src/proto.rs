//! The newline-delimited-JSON request/response wire protocol.
//!
//! One request per line, one response line per request, in any order
//! (responses carry the request `id`). The grammar is deliberately
//! *flat*: every value is a string, a number, a boolean, or null —
//! nested objects and arrays are rejected with a typed error. That
//! keeps the hand-rolled parser small enough to audit and the protocol
//! trivially implementable from any language (the jplace payload rides
//! as one JSON-escaped string).
//!
//! ```text
//! {"id":"r1","op":"place","queries":">q1\nACGT...\n","deadline_ms":5000}
//! {"id":"r1","ok":true,"code":"Ok","queries":1,"jplace":"{...}"}
//! {"id":"s1","op":"status"}
//! {"id":"c1","op":"cancel","target":"r1"}
//! ```
//!
//! Response codes (the HTTP-ish contract):
//!
//! | code         | meaning                                              |
//! |--------------|------------------------------------------------------|
//! | `Ok`         | request served                                       |
//! | `BadRequest` | unparsable line / unknown op / missing field         |
//! | `Overloaded` | admission queue full — resubmit later (429 analogue) |
//! | `Deadline`   | per-request deadline expired before completion       |
//! | `Cancelled`  | client-initiated cancellation took effect            |
//! | `Draining`   | daemon is shutting down; no new work admitted        |
//! | `Internal`   | request died inside the engine; daemon keeps serving |

use std::collections::BTreeMap;

/// A flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Typed response codes; `as_str` spells the wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    Ok,
    BadRequest,
    Overloaded,
    Deadline,
    Cancelled,
    Draining,
    Internal,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Ok => "Ok",
            Code::BadRequest => "BadRequest",
            Code::Overloaded => "Overloaded",
            Code::Deadline => "Deadline",
            Code::Cancelled => "Cancelled",
            Code::Draining => "Draining",
            Code::Internal => "Internal",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Place the FASTA-formatted queries; optional wall-clock deadline.
    Place { id: String, queries: String, deadline_ms: Option<f64> },
    /// Liveness/readiness probe; answered immediately, never queued.
    Status { id: String },
    /// Cancel an earlier request (same connection) by its id.
    Cancel { id: String, target: String },
}

impl Request {
    pub fn id(&self) -> &str {
        match self {
            Request::Place { id, .. } | Request::Status { id } | Request::Cancel { id, .. } => id,
        }
    }
}

/// JSON-escapes a string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one line as a flat JSON object. Order-preserving duplicate
/// keys are rejected (a protocol error, not a last-wins surprise).
pub fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {:?}", ch(other))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".to_string());
    }
    Ok(map)
}

/// Parses a request line into a typed [`Request`]. On failure, returns
/// the request id if one could be recovered (so the error response can
/// still be correlated) plus the error detail.
pub fn parse_request(line: &str) -> Result<Request, (Option<String>, String)> {
    let obj = parse_object(line).map_err(|e| (None, e))?;
    let id = match obj.get("id").and_then(Value::as_str) {
        Some(s) if !s.is_empty() => s.to_string(),
        _ => return Err((None, "missing or empty string field \"id\"".to_string())),
    };
    let some_id = |e: String| (Some(id.clone()), e);
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| some_id("missing string field \"op\"".to_string()))?;
    match op {
        "place" => {
            let queries = obj
                .get("queries")
                .and_then(Value::as_str)
                .ok_or_else(|| some_id("place: missing string field \"queries\"".to_string()))?
                .to_string();
            let deadline_ms = match obj.get("deadline_ms") {
                None => None,
                Some(v) => Some(v.as_num().ok_or_else(|| {
                    some_id("place: \"deadline_ms\" must be a number".to_string())
                })?),
            };
            Ok(Request::Place { id, queries, deadline_ms })
        }
        "status" => Ok(Request::Status { id }),
        "cancel" => {
            let target = obj
                .get("target")
                .and_then(Value::as_str)
                .ok_or_else(|| some_id("cancel: missing string field \"target\"".to_string()))?
                .to_string();
            Ok(Request::Cancel { id, target })
        }
        other => Err(some_id(format!("unknown op {other:?}"))),
    }
}

/// One field of a response line.
pub enum Field<'a> {
    Str(&'a str, &'a str),
    Num(&'a str, f64),
    Int(&'a str, i64),
    Bool(&'a str, bool),
}

/// Renders a response line (no trailing newline). Fields keep the given
/// order — `id`, `ok`, `code` first by convention, payload after.
pub fn render(fields: &[Field]) -> String {
    let mut out = String::from("{");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match f {
            Field::Str(k, v) => {
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            Field::Num(k, v) => out.push_str(&format!("\"{}\":{}", escape(k), fmt_num(*v))),
            Field::Int(k, v) => out.push_str(&format!("\"{}\":{v}", escape(k))),
            Field::Bool(k, v) => out.push_str(&format!("\"{}\":{v}", escape(k))),
        }
    }
    out.push('}');
    out
}

/// An error response line for `id` (empty id allowed: unparsable line).
pub fn error_line(id: &str, code: Code, detail: &str) -> String {
    render(&[
        Field::Str("id", id),
        Field::Bool("ok", false),
        Field::Str("code", code.as_str()),
        Field::Str("error", detail),
    ])
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn ch(b: Option<u8>) -> String {
    match b {
        Some(b) => (b as char).to_string(),
        None => "end of line".to_string(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {:?}", want as char, ch(other))),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'{') | Some(b'[') => {
                Err("nested objects/arrays are not part of this protocol".to_string())
            }
            Some(_) => self.number(),
            None => Err("expected a value, got end of line".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected {lit:?}"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        self.pos += 4;
                        // Surrogates are not paired here; replace them.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", ch(other))),
                },
                Some(b) if b < 0x20 => {
                    return Err("unescaped control character in string".to_string())
                }
                Some(b) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err("invalid UTF-8 in string".to_string()),
                    }
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_request_roundtrips_with_escapes() {
        let line = r#"{"id":"r1","op":"place","queries":">q1\nACGT\n","deadline_ms":250}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(
            req,
            Request::Place {
                id: "r1".into(),
                queries: ">q1\nACGT\n".into(),
                deadline_ms: Some(250.0),
            }
        );
    }

    #[test]
    fn status_and_cancel_parse() {
        assert_eq!(
            parse_request(r#"{"id":"s","op":"status"}"#).unwrap(),
            Request::Status { id: "s".into() }
        );
        assert_eq!(
            parse_request(r#"{"id":"c","op":"cancel","target":"r1"}"#).unwrap(),
            Request::Cancel { id: "c".into(), target: "r1".into() }
        );
    }

    #[test]
    fn malformed_lines_yield_typed_errors_with_recovered_ids() {
        // Unparsable JSON: no id recoverable.
        assert!(parse_request("not json").unwrap_err().0.is_none());
        assert!(parse_request("").unwrap_err().0.is_none());
        // Parsable object, bad request: the id comes back for the error
        // response to correlate with.
        let (id, e) = parse_request(r#"{"id":"r9","op":"explode"}"#).unwrap_err();
        assert_eq!(id.as_deref(), Some("r9"));
        assert!(e.contains("unknown op"));
        let (id, _) = parse_request(r#"{"id":"r9","op":"place"}"#).unwrap_err();
        assert_eq!(id.as_deref(), Some("r9"));
        // Nested payloads are a protocol violation, not a crash.
        assert!(parse_request(r#"{"id":"x","op":"place","queries":{"a":1}}"#).is_err());
        assert!(parse_request(r#"{"id":["x"],"op":"status"}"#).is_err());
        // Duplicate keys are rejected.
        assert!(parse_object(r#"{"a":1,"a":2}"#).is_err());
        // Trailing garbage is rejected.
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
    }

    #[test]
    fn render_escape_roundtrip() {
        let jplace = "{\"tree\": \"((A:1)B:2);\"\n}\ttail\\";
        let line = render(&[
            Field::Str("id", "r1"),
            Field::Bool("ok", true),
            Field::Str("code", Code::Ok.as_str()),
            Field::Int("queries", 3),
            Field::Num("latency_ms", 1.5),
            Field::Str("jplace", jplace),
        ]);
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["id"], Value::Str("r1".into()));
        assert_eq!(obj["ok"], Value::Bool(true));
        assert_eq!(obj["queries"], Value::Num(3.0));
        assert_eq!(obj["latency_ms"], Value::Num(1.5));
        assert_eq!(obj["jplace"], Value::Str(jplace.into()), "escape must roundtrip byte-exactly");
    }

    #[test]
    fn unicode_and_u_escapes_decode() {
        let obj = parse_object(r#"{"k":"café ≠ café?"}"#).unwrap();
        assert_eq!(obj["k"], Value::Str("café ≠ café?".into()));
    }

    #[test]
    fn error_line_is_parsable_and_typed() {
        let line = error_line("r7", Code::Overloaded, "admission queue full (cap 2)");
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["ok"], Value::Bool(false));
        assert_eq!(obj["code"], Value::Str("Overloaded".into()));
    }
}
