//! The warm placement engine behind the daemon: reference tree, model,
//! CLV slot arena, and preplacement lookup built once at startup, then
//! shared by every request.
//!
//! The model pipeline here must mirror `phyloplace place`
//! (`src/cli.rs::run_placement_with`) exactly — +F empirical
//! frequencies over the reference for DNA (unit GTR rates), the
//! synthetic AA matrix for protein, Γ4 when requested — because the
//! service's contract is that a daemon response is byte-identical to a
//! cold CLI run of the same queries. The CI daemon pass compares the
//! two outputs with `cmp`, so any drift between the pipelines fails the
//! gate.

use crate::proto::Code;
use epa_place::result::to_jplace_with;
use epa_place::{EpaConfig, Placer, PreplacementMode, QueryBatch, WarmStore};
use phylo_amc::CancelToken;
use phylo_journal::fnv1a64;
use phylo_seq::alphabet::AlphabetKind;
use phylo_seq::{compress, fasta, Msa, Sequence};
use phylo_tree::Tree;

/// Engine build settings (the serve CLI surface that affects scoring;
/// everything here must match the `place` flags the responses are
/// compared against).
#[derive(Debug, Clone)]
pub struct EngineSettings {
    pub alphabet: AlphabetKind,
    /// Γ shape (4 categories); `None` = rate-homogeneous. The CLI
    /// default is `Some(1.0)` — keep them in sync.
    pub gamma_alpha: Option<f64>,
    pub max_memory: Option<usize>,
    pub chunk_size: usize,
    pub threads: usize,
    pub strategy: phylo_amc::StrategyKind,
    pub no_lookup: bool,
}

impl Default for EngineSettings {
    fn default() -> Self {
        EngineSettings {
            alphabet: AlphabetKind::Dna,
            gamma_alpha: Some(1.0),
            max_memory: None,
            chunk_size: 5000,
            threads: 1,
            strategy: phylo_amc::StrategyKind::CostBased,
            no_lookup: false,
        }
    }
}

/// A served placement: the jplace document plus request accounting.
pub struct Served {
    pub jplace: String,
    pub n_queries: usize,
    /// Whether the engine walked the degradation ladder during this
    /// run (feeds the daemon's pressure ladder).
    pub degraded: bool,
}

/// A typed per-request failure (maps straight onto a response code).
#[derive(Debug)]
pub struct ServeFail {
    pub code: Code,
    pub detail: String,
}

impl ServeFail {
    fn bad(detail: String) -> Self {
        ServeFail { code: Code::BadRequest, detail }
    }
}

/// The long-lived engine: context + warm store + fingerprint.
pub struct WarmEngine {
    placer: Placer,
    warm: WarmStore,
    tree: Tree,
    n_sites: usize,
    alphabet: AlphabetKind,
    fingerprint: u64,
}

impl WarmEngine {
    /// Builds the full warm state from the reference inputs. Errors are
    /// strings suitable for startup diagnostics (the daemon exits 2 on
    /// bad inputs, like the CLI).
    pub fn build(
        tree_text: &str,
        ref_fasta: &str,
        st: &EngineSettings,
    ) -> Result<WarmEngine, String> {
        use phylo_models::gamma::GammaMode;
        use phylo_models::{aa, dna, DiscreteGamma, SubstModel};

        let tree =
            phylo_tree::newick::parse(tree_text).map_err(|e| format!("reference tree: {e}"))?;
        let ref_rows = fasta::parse(ref_fasta, st.alphabet)
            .map_err(|e| format!("reference alignment: {e}"))?;
        let msa = Msa::new(ref_rows).map_err(|e| format!("reference alignment: {e}"))?;
        let patterns = compress(&msa).map_err(|e| format!("compression: {e}"))?;
        let gamma = match st.gamma_alpha {
            Some(alpha) => {
                DiscreteGamma::new(alpha, 4, GammaMode::Mean).map_err(|e| format!("gamma: {e}"))?
            }
            None => DiscreteGamma::none(),
        };
        let alphabet = st.alphabet.alphabet();
        let model = match st.alphabet {
            AlphabetKind::Dna => {
                let f = dna::empirical_freqs(alphabet, msa.rows().iter().map(|r| r.codes()));
                let freqs: [f64; 4] = [f[0], f[1], f[2], f[3]];
                SubstModel::new(
                    &dna::gtr(&[1.0; 6], &freqs).map_err(|e| format!("model: {e}"))?,
                    gamma,
                )
                .map_err(|e| format!("model: {e}"))?
            }
            AlphabetKind::Protein => {
                SubstModel::new(&aa::synthetic_aa(0).map_err(|e| format!("model: {e}"))?, gamma)
                    .map_err(|e| format!("model: {e}"))?
            }
        };
        let ctx = phylo_engine::ReferenceContext::new(tree.clone(), model, alphabet, &patterns)
            .map_err(|e| format!("engine: {e}"))?;
        let cfg = EpaConfig {
            max_memory: st.max_memory,
            chunk_size: st.chunk_size,
            threads: st.threads,
            strategy: st.strategy,
            preplacement: if st.no_lookup { PreplacementMode::Off } else { PreplacementMode::Auto },
            ..Default::default()
        };
        let placer = Placer::new(ctx, patterns.site_to_pattern().to_vec(), cfg)
            .map_err(|e| format!("config: {e}"))?;
        let warm = placer.warm_up().map_err(|e| format!("warm-up: {e}"))?;
        // The warm-state fingerprint: a client (or the status probe's
        // reader) can verify which reference/settings this daemon is
        // warm for without re-reading the inputs.
        let mut fp = fnv1a64(tree_text.as_bytes());
        fp ^= fnv1a64(ref_fasta.as_bytes()).rotate_left(1);
        fp ^= fnv1a64(format!("{st:?}").as_bytes()).rotate_left(2);
        Ok(WarmEngine {
            placer,
            warm,
            tree,
            n_sites: msa.n_sites(),
            alphabet: st.alphabet,
            fingerprint: fp,
        })
    }

    /// Hex fingerprint of (tree, reference, settings).
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// Slots in the warm arena.
    pub fn slots(&self) -> usize {
        self.warm.slots()
    }

    /// Whether the preplacement lookup table is resident.
    pub fn use_lookup(&self) -> bool {
        self.warm.use_lookup()
    }

    /// Parses one request's FASTA payload (cheap; done on the reader
    /// thread so a malformed payload is rejected before admission).
    pub fn parse_queries(&self, query_fasta: &str) -> Result<Vec<Sequence>, ServeFail> {
        let rows = fasta::parse(query_fasta, self.alphabet)
            .map_err(|e| ServeFail::bad(format!("queries: {e}")))?;
        if rows.is_empty() {
            return Err(ServeFail::bad("queries: empty FASTA payload".to_string()));
        }
        for r in &rows {
            if r.codes().len() != self.n_sites {
                return Err(ServeFail::bad(format!(
                    "queries: {} has {} aligned sites, reference has {}",
                    r.name(),
                    r.codes().len(),
                    self.n_sites
                )));
            }
        }
        Ok(rows)
    }

    /// Places a micro-batch of requests in ONE warm engine run: all
    /// requests' queries are concatenated into a single batch, scored
    /// together, and the per-request results sliced back out. Per-query
    /// results are independent of batch composition (the engine's
    /// chunking-equivalence contract), so merging cannot change any
    /// request's bytes.
    ///
    /// `cancel` is the run-scoped token (a single request's own token
    /// when the batch has one element; a drain/abort-only token when
    /// merged). A cancelled run maps to a typed failure per request,
    /// never a torn jplace: a request either gets its complete document
    /// or an error.
    pub fn place_merged(
        &self,
        requests: &[Vec<Sequence>],
        cancel: &CancelToken,
    ) -> Vec<Result<Served, ServeFail>> {
        let all: Vec<Sequence> = requests.iter().flatten().cloned().collect();
        let batch = match QueryBatch::new(&all, self.n_sites) {
            Ok(b) => b,
            Err(e) => {
                let detail = format!("queries: {e}");
                return requests.iter().map(|_| Err(ServeFail::bad(detail.clone()))).collect();
            }
        };
        let outcome = match self.placer.place_warm(&self.warm, &batch, cancel) {
            Ok(o) => o,
            Err(e) => {
                let fail = ServeFail { code: Code::Internal, detail: format!("placement: {e}") };
                return requests
                    .iter()
                    .map(|_| Err(ServeFail { code: fail.code, detail: fail.detail.clone() }))
                    .collect();
            }
        };
        if !outcome.completed {
            // Cancelled mid-run (deadline or client cancel): every
            // request in the run gets the typed error — the caller
            // refines Deadline vs Cancelled from the request token.
            return requests
                .iter()
                .map(|_| {
                    Err(ServeFail {
                        code: Code::Cancelled,
                        detail: "run cancelled before completion".to_string(),
                    })
                })
                .collect();
        }
        let degraded = {
            let d = &outcome.report.degradation;
            d.prefetch_disabled + d.block_clamped + d.flush_retries > 0
        };
        let mut out = Vec::with_capacity(requests.len());
        let mut off = 0usize;
        for req in requests {
            let n = req.len();
            let slice = &outcome.results[off..off + n];
            off += n;
            // An injected mid-request crash: prove the blast radius is
            // one request. The panic is caught right here, converted to
            // a typed Internal error, and every other request in the
            // same engine run still gets its bytes.
            let rendered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if phylo_faults::fire("serve::mid_request_crash") {
                    panic!("injected mid-request crash");
                }
                to_jplace_with(&self.tree, slice, true)
            }));
            out.push(match rendered {
                Ok(jplace) => Ok(Served { jplace, n_queries: n, degraded }),
                Err(payload) => {
                    phylo_obs::counter("serve.internal_errors").inc();
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "request panicked".to_string());
                    Err(ServeFail { code: Code::Internal, detail: msg })
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_datasets::{generate, neotrop, Scale};

    fn dataset_texts() -> (String, String, Vec<String>) {
        let ds = generate(&neotrop(Scale::Ci));
        let tree = phylo_tree::newick::write(&ds.tree);
        let mut ref_fa = String::new();
        for row in ds.reference.rows() {
            ref_fa.push_str(&format!(">{}\n{}\n", row.name(), row.to_text()));
        }
        let queries: Vec<String> =
            ds.queries.iter().map(|q| format!(">{}\n{}\n", q.name(), q.to_text())).collect();
        (tree, ref_fa, queries)
    }

    #[test]
    fn merged_requests_slice_back_to_per_request_documents() {
        let (tree, ref_fa, queries) = dataset_texts();
        let engine = WarmEngine::build(&tree, &ref_fa, &EngineSettings::default()).unwrap();
        let token = CancelToken::new();
        // Serve [q0] and [q1, q2] merged in one run, then each alone:
        // the merged documents must be byte-identical to the solo ones.
        let r0 = engine.parse_queries(&queries[0]).unwrap();
        let r12 = engine.parse_queries(&format!("{}{}", queries[1], queries[2])).unwrap();
        let merged = engine.place_merged(&[r0.clone(), r12.clone()], &token);
        let solo0 = engine.place_merged(&[r0], &token);
        let solo12 = engine.place_merged(&[r12], &token);
        let doc = |r: &Result<Served, ServeFail>| r.as_ref().ok().unwrap().jplace.clone();
        assert_eq!(doc(&merged[0]), doc(&solo0[0]));
        assert_eq!(doc(&merged[1]), doc(&solo12[0]));
        assert_eq!(merged[1].as_ref().ok().unwrap().n_queries, 2);
    }

    #[test]
    fn bad_payloads_are_typed_not_fatal() {
        let (tree, ref_fa, queries) = dataset_texts();
        let engine = WarmEngine::build(&tree, &ref_fa, &EngineSettings::default()).unwrap();
        assert!(engine.parse_queries("").is_err());
        assert!(engine.parse_queries(">q\nACG\n").is_err(), "wrong width must be rejected");
        assert!(engine.parse_queries("garbage not fasta").is_err());
        // The engine still serves after rejections.
        let ok = engine.parse_queries(&queries[0]).unwrap();
        let served = engine.place_merged(&[ok], &CancelToken::new());
        assert!(served[0].is_ok());
    }

    #[test]
    fn pre_armed_token_yields_typed_cancellation() {
        let (tree, ref_fa, queries) = dataset_texts();
        let engine = WarmEngine::build(&tree, &ref_fa, &EngineSettings::default()).unwrap();
        let armed = CancelToken::new();
        armed.cancel();
        let rows = engine.parse_queries(&queries[0]).unwrap();
        let out = engine.place_merged(&[rows.clone()], &armed);
        let fail = out[0].as_ref().err().unwrap();
        assert_eq!(fail.code, Code::Cancelled);
        // And the engine is not poisoned for the next request.
        let ok = engine.place_merged(&[rows], &CancelToken::new());
        assert!(ok[0].is_ok());
    }
}
