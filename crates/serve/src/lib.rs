//! phylo-serve — the hardened placement daemon behind `phyloplaced`.
//!
//! The paper's warm-start observation (§"Efficient Memory Management in
//! Likelihood-based Phylogenetic Placement"): almost all of a placement
//! run's cost is loading and preprocessing the reference — tree
//! parsing, CLV arena sizing, the preplacement lookup table. A daemon
//! that pays that cost **once** and then serves queries against the
//! warm state turns per-request latency from seconds into milliseconds.
//!
//! This crate is the robustness half of that trade: once placement is a
//! long-lived service, it needs admission control (bounded queue, typed
//! `Overloaded` shedding — never a hang), per-request deadlines and
//! client cancellation (wired into the engine's [`phylo_amc::CancelToken`]
//! plumbing), micro-batching of concurrent queries into one engine run,
//! a memory-pressure ladder that shrinks batches before shedding, and a
//! three-phase drain (stop admitting → finish in-flight → exit 0).
//!
//! Layout:
//! * [`proto`] — the newline-delimited JSON wire protocol (hand-rolled,
//!   flat objects, typed response codes);
//! * [`queue`] — [`queue::AdmissionQueue`] and [`queue::PressureLadder`];
//! * [`engine`] — [`engine::WarmEngine`]: the once-per-process warm
//!   state plus merged-batch execution and per-request result slicing;
//! * [`server`] — transports, connection handling, the executor, and
//!   the drain state machine.
//!
//! Every request ends in exactly one typed response; failures are
//! isolated to the request that caused them (see the `serve::*` fault
//! sites and `tests/serve_daemon.rs`).

pub mod engine;
pub mod proto;
pub mod queue;
pub mod server;

pub use engine::{EngineSettings, ServeFail, Served, WarmEngine};
pub use proto::{Code, Request};
pub use queue::{AdmissionQueue, PressureLadder};
pub use server::{run, ServeConfig, Transport};
