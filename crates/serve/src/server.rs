//! The daemon loop: transports, per-connection readers/writers, the
//! admission queue, the micro-batching executor, and the drain state
//! machine.
//!
//! Threading model (all isolation is structural):
//!
//! * one **reader** thread per connection — parses lines, answers
//!   `status`/`cancel` inline, admits `place` jobs (or rejects them
//!   with a typed code, never blocking);
//! * one **writer** thread per connection, fed over a channel — a slow
//!   or stalled client delays only its own responses, never the engine
//!   or other connections;
//! * one **executor** thread over the warm engine — pops micro-batches
//!   from the admission queue, runs them, and routes each response to
//!   its connection.
//!
//! Shutdown: the first SIGTERM/SIGINT (via [`phylo_shard::Shutdown`])
//! moves to Draining — readers stop admitting (typed `Draining`
//! rejections), the executor finishes everything already admitted
//! (each request ends in a valid response), and `run` returns so the
//! binary exits 0. A second SIGINT is handled by the binary's watchdog
//! (exit 130). On stdio, EOF on stdin is an implicit drain: finish the
//! backlog, then return.

use crate::engine::WarmEngine;
use crate::proto::{self, Code, Field, Request};
use crate::queue::{AdmissionQueue, PressureLadder};
use phylo_amc::CancelToken;
use phylo_seq::Sequence;
use phylo_shard::{Phase, Shutdown};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server knobs (the transport is picked separately).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission queue capacity; 0 sheds every request (drill mode).
    pub queue_cap: usize,
    /// Max requests merged into one warm engine run.
    pub batch_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { queue_cap: 64, batch_max: 8 }
    }
}

/// Where requests come from.
#[derive(Debug, Clone)]
pub enum Transport {
    /// Requests on stdin, responses on stdout (single connection).
    Stdio,
    /// A Unix-domain socket listener.
    Unix(std::path::PathBuf),
    /// A TCP listener, e.g. `127.0.0.1:7717`.
    Tcp(String),
}

/// One admitted placement job.
struct PlaceJob {
    id: String,
    rows: Vec<Sequence>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    conn: ConnHandle,
}

/// The write side of a connection plus its in-flight request registry
/// (cancellation targets requests on the *same* connection).
#[derive(Clone)]
struct ConnHandle {
    tx: mpsc::Sender<String>,
    registry: Arc<Mutex<HashMap<String, CancelToken>>>,
    /// Server-wide count of responses accepted but not yet flushed:
    /// the drain path waits for it to hit zero before exiting, so a
    /// SIGTERM never races a response out of existence.
    pending: Arc<AtomicUsize>,
}

impl ConnHandle {
    fn send(&self, line: String) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // A dead writer (client went away) drops responses on the
        // floor; the engine result is already computed and the daemon
        // must not care.
        if self.tx.send(line).is_err() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Counters surfaced by the `status` op (authoritative here, mirrored
/// into phylo-obs when the feature is on).
#[derive(Default)]
struct Tally {
    requests: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    bad: AtomicU64,
    deadline: AtomicU64,
    cancelled: AtomicU64,
    internal: AtomicU64,
}

struct ServerState {
    engine: WarmEngine,
    queue: AdmissionQueue<PlaceJob>,
    shutdown: Shutdown,
    cfg: ServeConfig,
    tally: Tally,
    in_flight: AtomicUsize,
    batch_budget: AtomicUsize,
    /// Set when the (stdio) input stream hit EOF: drain and return.
    admission_closed: AtomicBool,
    /// Responses handed to writer threads but not yet flushed.
    pending_writes: Arc<AtomicUsize>,
    started: Instant,
    deadlines: Mutex<Vec<(Instant, CancelToken)>>,
}

impl ServerState {
    fn phase(&self) -> Phase {
        self.shutdown.phase()
    }

    fn status_line(&self, id: &str) -> String {
        let phase = match self.phase() {
            Phase::Running => "running",
            Phase::Draining => "draining",
            Phase::Aborting => "aborting",
        };
        let fp = self.engine.fingerprint();
        proto::render(&[
            Field::Str("id", id),
            Field::Bool("ok", true),
            Field::Str("code", Code::Ok.as_str()),
            Field::Str("phase", phase),
            Field::Int("queue_depth", self.queue.depth() as i64),
            Field::Int("queue_cap", self.queue.capacity() as i64),
            Field::Int("in_flight", self.in_flight.load(Ordering::SeqCst) as i64),
            Field::Int("batch_budget", self.batch_budget.load(Ordering::SeqCst) as i64),
            Field::Str("fingerprint", &fp),
            Field::Int("slots", self.engine.slots() as i64),
            Field::Bool("lookup", self.engine.use_lookup()),
            Field::Int("requests", self.tally.requests.load(Ordering::Relaxed) as i64),
            Field::Int("served", self.tally.served.load(Ordering::Relaxed) as i64),
            Field::Int("shed", self.tally.shed.load(Ordering::Relaxed) as i64),
            Field::Int("bad_request", self.tally.bad.load(Ordering::Relaxed) as i64),
            Field::Int("deadline_expired", self.tally.deadline.load(Ordering::Relaxed) as i64),
            Field::Int("cancelled", self.tally.cancelled.load(Ordering::Relaxed) as i64),
            Field::Int("internal_errors", self.tally.internal.load(Ordering::Relaxed) as i64),
            Field::Int("uptime_ms", self.started.elapsed().as_millis() as i64),
        ])
    }

    /// Arms `token` to fire at `at`; the deadline thread sweeps.
    fn arm_deadline(&self, at: Instant, token: CancelToken) {
        self.deadlines.lock().unwrap_or_else(|e| e.into_inner()).push((at, token));
    }

    fn sweep_deadlines(&self) {
        let now = Instant::now();
        let mut v = self.deadlines.lock().unwrap_or_else(|e| e.into_inner());
        v.retain(|(at, token)| {
            if token.is_cancelled() {
                return false;
            }
            if now >= *at {
                token.cancel();
                return false;
            }
            true
        });
    }
}

/// Runs the daemon until drained. `Ok(())` means a clean drain (the
/// binary exits 0); `Err` is a startup/transport failure (exit 1).
pub fn run(
    engine: WarmEngine,
    cfg: ServeConfig,
    transport: Transport,
    shutdown: Shutdown,
) -> Result<(), String> {
    let state = Arc::new(ServerState {
        queue: AdmissionQueue::new(cfg.queue_cap),
        batch_budget: AtomicUsize::new(cfg.batch_max.max(1)),
        engine,
        shutdown,
        cfg,
        tally: Tally::default(),
        in_flight: AtomicUsize::new(0),
        admission_closed: AtomicBool::new(false),
        pending_writes: Arc::new(AtomicUsize::new(0)),
        started: Instant::now(),
        deadlines: Mutex::new(Vec::new()),
    });

    // Deadline sweeper: one detached thread for every request (not one
    // thread per deadline). Dies with the process.
    {
        let state = Arc::clone(&state);
        std::thread::spawn(move || loop {
            state.sweep_deadlines();
            std::thread::sleep(Duration::from_millis(10));
        });
    }

    let executor = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || executor_loop(&state))
    };

    eprintln!(
        "phyloplaced: ready (fingerprint={}, slots={}, lookup={}, queue_cap={}, batch_max={})",
        state.engine.fingerprint(),
        state.engine.slots(),
        state.engine.use_lookup(),
        state.cfg.queue_cap,
        state.cfg.batch_max,
    );

    match transport {
        Transport::Stdio => {
            // The reader gets its own thread so a SIGTERM drain can
            // finish even while stdin is open and idle: the executor
            // observes the phase change, drains, and `run` returns —
            // the process exits without waiting for client EOF.
            let conn = spawn_writer(Arc::clone(&state.pending_writes), Box::new(std::io::stdout()));
            let rstate = Arc::clone(&state);
            std::thread::spawn(move || {
                reader_loop(&rstate, BufReader::new(std::io::stdin()), conn);
                // EOF: no more admissions; the executor drains what is
                // queued and returns.
                rstate.admission_closed.store(true, Ordering::SeqCst);
            });
        }
        Transport::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .map_err(|e| format!("bind {}: {e}", path.display()))?;
            listener.set_nonblocking(true).map_err(|e| format!("listener: {e}"))?;
            accept_loop(&state, || match listener.accept() {
                Ok((sock, _)) => {
                    let r = sock.try_clone().map_err(|e| e.to_string())?;
                    Ok(Some((
                        Box::new(BufReader::new(r)) as Box<dyn BufRead + Send>,
                        Box::new(sock) as Box<dyn Write + Send>,
                    )))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e.to_string()),
            });
            let _ = std::fs::remove_file(&path);
        }
        Transport::Tcp(addr) => {
            let listener =
                std::net::TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            listener.set_nonblocking(true).map_err(|e| format!("listener: {e}"))?;
            eprintln!(
                "phyloplaced: listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            accept_loop(&state, || match listener.accept() {
                Ok((sock, _)) => {
                    let r = sock.try_clone().map_err(|e| e.to_string())?;
                    Ok(Some((
                        Box::new(BufReader::new(r)) as Box<dyn BufRead + Send>,
                        Box::new(sock) as Box<dyn Write + Send>,
                    )))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e.to_string()),
            });
        }
    }

    executor.join().map_err(|_| "executor thread panicked".to_string())?;
    await_flush(&state);
    eprintln!(
        "phyloplaced: drained ({} served, {} shed, {} bad, {} expired, {} cancelled, {} internal)",
        state.tally.served.load(Ordering::Relaxed),
        state.tally.shed.load(Ordering::Relaxed),
        state.tally.bad.load(Ordering::Relaxed),
        state.tally.deadline.load(Ordering::Relaxed),
        state.tally.cancelled.load(Ordering::Relaxed),
        state.tally.internal.load(Ordering::Relaxed),
    );
    Ok(())
}

/// Polls `accept` until the daemon drains. Transient accept failures
/// (including the injected `serve::accept_error`) are counted, backed
/// off, and survived — a listener hiccup must not take the daemon down.
fn accept_loop(
    state: &Arc<ServerState>,
    mut accept: impl FnMut() -> Result<Option<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)>, String>,
) {
    let mut backoff_ms = 5u64;
    loop {
        match state.phase() {
            Phase::Running => {}
            // Draining or aborting: stop accepting; the executor
            // finishes the backlog and `run` returns after the join.
            _ => return,
        }
        let injected = phylo_faults::fire("serve::accept_error");
        match if injected { Err("injected accept error".to_string()) } else { accept() } {
            Ok(Some((r, w))) => {
                backoff_ms = 5;
                let conn = spawn_writer(Arc::clone(&state.pending_writes), w);
                let state = Arc::clone(state);
                std::thread::spawn(move || reader_loop(&state, r, conn));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => {
                phylo_obs::counter("serve.accept_errors").inc();
                eprintln!("phyloplaced: accept error (retrying in {backoff_ms}ms): {e}");
                std::thread::sleep(Duration::from_millis(backoff_ms));
                backoff_ms = (backoff_ms * 2).min(500);
            }
        }
    }
}

/// Starts the per-connection writer thread; returns its handle. Every
/// response line for the connection funnels through here, so a slow
/// client (see the `serve::slow_client` fault) stalls only this thread.
fn spawn_writer(pending: Arc<AtomicUsize>, mut w: Box<dyn Write + Send>) -> ConnHandle {
    let (tx, rx) = mpsc::channel::<String>();
    let pending2 = Arc::clone(&pending);
    std::thread::spawn(move || {
        let mut dead = false;
        for line in rx {
            if phylo_faults::fire("serve::slow_client") {
                // A client that stops reading: the kernel buffer backs
                // up and writes stall. Simulated with a sleep so the
                // chaos test can assert other connections stay live.
                phylo_obs::counter("serve.slow_writes").inc();
                std::thread::sleep(Duration::from_millis(1500));
            }
            if !dead && writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
                // Keep draining the channel so pending accounting
                // stays exact even after the client disappears.
                dead = true;
            }
            pending2.fetch_sub(1, Ordering::SeqCst);
        }
    });
    ConnHandle { tx, registry: Arc::new(Mutex::new(HashMap::new())), pending }
}

/// Bounded wait for every accepted response to reach its socket (a
/// stuck client's writer thread should not wedge the drain forever).
fn await_flush(state: &ServerState) {
    let t0 = Instant::now();
    while state.pending_writes.load(Ordering::SeqCst) != 0 && t0.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Reads newline-delimited requests until EOF. Admission policy lives
/// here: every outcome is a typed response, and nothing on this path
/// ever blocks on the engine.
fn reader_loop(state: &Arc<ServerState>, mut r: impl BufRead, conn: ConnHandle) {
    let mut line = String::new();
    loop {
        line.clear();
        match r.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.trim().is_empty() {
            continue;
        }
        state.tally.requests.fetch_add(1, Ordering::Relaxed);
        phylo_obs::counter("serve.requests").inc();
        let parsed = if phylo_faults::fire("serve::request_parse") {
            Err((None, "injected parse failure".to_string()))
        } else {
            proto::parse_request(trimmed)
        };
        match parsed {
            Err((id, detail)) => {
                state.tally.bad.fetch_add(1, Ordering::Relaxed);
                phylo_obs::counter("serve.bad_request").inc();
                conn.send(proto::error_line(
                    id.as_deref().unwrap_or(""),
                    Code::BadRequest,
                    &detail,
                ));
            }
            Ok(Request::Status { id }) => {
                // Liveness must answer even under total overload or
                // drain: handled inline, never queued.
                conn.send(state.status_line(&id));
            }
            Ok(Request::Cancel { id, target }) => {
                let token =
                    conn.registry.lock().unwrap_or_else(|e| e.into_inner()).get(&target).cloned();
                match token {
                    Some(t) => {
                        t.cancel();
                        conn.send(proto::render(&[
                            Field::Str("id", &id),
                            Field::Bool("ok", true),
                            Field::Str("code", Code::Ok.as_str()),
                            Field::Str("cancelled", &target),
                        ]));
                    }
                    None => conn.send(proto::error_line(
                        &id,
                        Code::BadRequest,
                        &format!("cancel: no in-flight request {target:?} on this connection"),
                    )),
                }
            }
            Ok(Request::Place { id, queries, deadline_ms }) => {
                admit_place(state, &conn, id, &queries, deadline_ms);
            }
        }
    }
}

fn admit_place(
    state: &Arc<ServerState>,
    conn: &ConnHandle,
    id: String,
    queries: &str,
    deadline_ms: Option<f64>,
) {
    if state.phase() != Phase::Running {
        conn.send(proto::error_line(&id, Code::Draining, "daemon is draining; not admitting"));
        return;
    }
    {
        let reg = conn.registry.lock().unwrap_or_else(|e| e.into_inner());
        if reg.contains_key(&id) {
            drop(reg);
            state.tally.bad.fetch_add(1, Ordering::Relaxed);
            conn.send(proto::error_line(&id, Code::BadRequest, "duplicate in-flight request id"));
            return;
        }
    }
    let rows = match state.engine.parse_queries(queries) {
        Ok(rows) => rows,
        Err(fail) => {
            state.tally.bad.fetch_add(1, Ordering::Relaxed);
            phylo_obs::counter("serve.bad_request").inc();
            conn.send(proto::error_line(&id, fail.code, &fail.detail));
            return;
        }
    };
    // A deadline that has already passed never touches the queue: the
    // typed rejection is immediate (and free).
    let deadline = match deadline_ms {
        None => None,
        Some(ms) if ms <= 0.0 => {
            state.tally.deadline.fetch_add(1, Ordering::Relaxed);
            phylo_obs::counter("serve.deadline_expired").inc();
            conn.send(proto::error_line(&id, Code::Deadline, "deadline already expired"));
            return;
        }
        Some(ms) => Some(Instant::now() + Duration::from_millis(ms as u64)),
    };
    let cancel = CancelToken::new();
    conn.registry.lock().unwrap_or_else(|e| e.into_inner()).insert(id.clone(), cancel.clone());
    if let Some(at) = deadline {
        state.arm_deadline(at, cancel.clone());
    }
    let job = PlaceJob { id, rows, cancel, deadline, conn: conn.clone() };
    if let Err(job) = state.queue.try_push(job) {
        // The overload contract: a full queue answers *now*, with a
        // typed code, and sheds the youngest request. Never a hang.
        job.conn.registry.lock().unwrap_or_else(|e| e.into_inner()).remove(&job.id);
        state.tally.shed.fetch_add(1, Ordering::Relaxed);
        phylo_obs::counter("serve.shed").inc();
        job.conn.send(proto::error_line(
            &job.id,
            Code::Overloaded,
            &format!("admission queue full (cap {})", state.queue.capacity()),
        ));
    }
    phylo_obs::gauge("serve.queue_depth").set(state.queue.depth() as i64);
}

/// The engine executor: micro-batches admitted jobs into warm runs.
fn executor_loop(state: &Arc<ServerState>) {
    let mut ladder = PressureLadder::new(state.cfg.batch_max);
    loop {
        let phase = state.phase();
        if phase == Phase::Aborting {
            // The binary's signal watchdog exits 130; this break is the
            // in-process (test) path.
            return;
        }
        let budget = ladder.budget();
        state.batch_budget.store(budget, Ordering::SeqCst);
        phylo_obs::gauge("serve.batch_budget").set(budget as i64);
        let batch = state.queue.pop_batch(budget, Duration::from_millis(25));
        if batch.is_empty() {
            let done = state.admission_closed.load(Ordering::SeqCst) || phase != Phase::Running;
            // Drain exit: no new admissions are possible, the backlog
            // is empty, and nothing is mid-run (we are the only
            // consumer, so in_flight is already 0 here).
            if done && state.queue.depth() == 0 {
                return;
            }
            continue;
        }
        state.in_flight.store(batch.len(), Ordering::SeqCst);
        run_batch(state, &mut ladder, batch);
        state.in_flight.store(0, Ordering::SeqCst);
    }
}

fn run_batch(state: &Arc<ServerState>, ladder: &mut PressureLadder, batch: Vec<PlaceJob>) {
    // Jobs whose token fired while queued (deadline, client cancel)
    // are answered without touching the engine.
    let mut live: Vec<PlaceJob> = Vec::with_capacity(batch.len());
    for job in batch {
        if job.cancel.is_cancelled() {
            finish(state, &job, Err(expired_code(&job)));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    // A singleton run is cancellable mid-run by its own token. A merged
    // run commits: per-request deadlines were checked at admission and
    // again at dequeue; once scoring starts the batch finishes (its
    // latency is bounded by the batch budget the pressure ladder set).
    let run_token = if live.len() == 1 { live[0].cancel.clone() } else { CancelToken::new() };
    let rows: Vec<Vec<Sequence>> = live.iter().map(|j| j.rows.clone()).collect();
    let t0 = Instant::now();
    let results = state.engine.place_merged(&rows, &run_token);
    phylo_obs::counter("serve.batches").inc();
    phylo_obs::histogram("serve.batch_ns").record_ns(t0.elapsed().as_nanos() as u64);
    let mut degraded = false;
    for (job, res) in live.iter().zip(results) {
        match res {
            Ok(served) => {
                degraded |= served.degraded;
                finish(state, job, Ok((served.jplace, served.n_queries, t0)));
            }
            Err(fail) => {
                let code = if fail.code == Code::Cancelled { expired_code(job) } else { fail.code };
                finish_err(state, job, code, &fail.detail);
            }
        }
    }
    ladder.on_run(degraded);
}

/// Deadline-vs-cancel refinement: both arrive as an armed token; the
/// response distinguishes them by whether the job carried a deadline
/// that has passed.
fn expired_code(job: &PlaceJob) -> Code {
    match job.deadline {
        Some(at) if Instant::now() >= at => Code::Deadline,
        _ => Code::Cancelled,
    }
}

fn finish(
    state: &Arc<ServerState>,
    job: &PlaceJob,
    outcome: Result<(String, usize, Instant), Code>,
) {
    match outcome {
        Ok((jplace, n, t0)) => {
            state.tally.served.fetch_add(1, Ordering::Relaxed);
            phylo_obs::counter("serve.served").inc();
            phylo_obs::histogram("serve.request_ns").record_ns(t0.elapsed().as_nanos() as u64);
            job.conn.registry.lock().unwrap_or_else(|e| e.into_inner()).remove(&job.id);
            job.conn.send(proto::render(&[
                Field::Str("id", &job.id),
                Field::Bool("ok", true),
                Field::Str("code", Code::Ok.as_str()),
                Field::Int("queries", n as i64),
                Field::Int("latency_us", t0.elapsed().as_micros() as i64),
                Field::Str("jplace", &jplace),
            ]));
        }
        Err(code) => finish_err(
            state,
            job,
            code,
            match code {
                Code::Deadline => "deadline expired",
                _ => "cancelled by client",
            },
        ),
    }
}

fn finish_err(state: &Arc<ServerState>, job: &PlaceJob, code: Code, detail: &str) {
    match code {
        Code::Deadline => {
            state.tally.deadline.fetch_add(1, Ordering::Relaxed);
            phylo_obs::counter("serve.deadline_expired").inc();
        }
        Code::Cancelled => {
            state.tally.cancelled.fetch_add(1, Ordering::Relaxed);
            phylo_obs::counter("serve.cancelled").inc();
        }
        Code::Internal => {
            state.tally.internal.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    job.conn.registry.lock().unwrap_or_else(|e| e.into_inner()).remove(&job.id);
    job.conn.send(proto::error_line(&job.id, code, detail));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSettings;
    use phylo_datasets::{generate, neotrop, Scale};
    use std::os::unix::net::UnixStream;

    fn engine() -> WarmEngine {
        let ds = generate(&neotrop(Scale::Ci));
        let tree = phylo_tree::newick::write(&ds.tree);
        let mut ref_fa = String::new();
        for row in ds.reference.rows() {
            ref_fa.push_str(&format!(">{}\n{}\n", row.name(), row.to_text()));
        }
        WarmEngine::build(&tree, &ref_fa, &EngineSettings::default()).unwrap()
    }

    fn query_payload(i: usize) -> String {
        let ds = generate(&neotrop(Scale::Ci));
        format!(">{}\n{}\n", ds.queries[i].name(), ds.queries[i].to_text())
    }

    fn place_line(id: &str, fasta: &str, deadline_ms: Option<f64>) -> String {
        let dl = deadline_ms.map(|d| format!(",\"deadline_ms\":{d}")).unwrap_or_default();
        format!("{{\"id\":\"{id}\",\"op\":\"place\",\"queries\":\"{}\"{dl}}}", proto::escape(fasta))
    }

    /// In-process server over a socketpair: the unit-level harness for
    /// the daemon loop (the binary-level one lives in tests/).
    struct Harness {
        sock: UnixStream,
        reader: BufReader<UnixStream>,
        shutdown: Shutdown,
        thread: Option<std::thread::JoinHandle<Result<(), String>>>,
    }

    impl Harness {
        fn start(cfg: ServeConfig) -> Harness {
            let (client, server) = UnixStream::pair().unwrap();
            let shutdown = Shutdown::new();
            let sd = shutdown.clone();
            let thread = std::thread::spawn(move || {
                let eng = engine();
                let state_r = server.try_clone().unwrap();
                // Reuse the stdio path shape: single connection.
                run_single_conn(eng, cfg, sd, state_r, server)
            });
            let reader = BufReader::new(client.try_clone().unwrap());
            Harness { sock: client, reader, shutdown, thread: Some(thread) }
        }

        fn send(&mut self, line: &str) {
            writeln!(self.sock, "{line}").unwrap();
        }

        fn recv(&mut self) -> std::collections::BTreeMap<String, proto::Value> {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            proto::parse_object(line.trim_end()).unwrap()
        }

        fn finish(mut self) -> Result<(), String> {
            self.sock.shutdown(std::net::Shutdown::Write).unwrap();
            self.thread.take().unwrap().join().unwrap()
        }
    }

    /// `run` specialized to one pre-connected stream (what the stdio
    /// transport does, minus process stdin/stdout).
    fn run_single_conn(
        engine: WarmEngine,
        cfg: ServeConfig,
        shutdown: Shutdown,
        r: UnixStream,
        w: UnixStream,
    ) -> Result<(), String> {
        let state = Arc::new(ServerState {
            queue: AdmissionQueue::new(cfg.queue_cap),
            batch_budget: AtomicUsize::new(cfg.batch_max.max(1)),
            engine,
            shutdown,
            cfg,
            tally: Tally::default(),
            in_flight: AtomicUsize::new(0),
            admission_closed: AtomicBool::new(false),
            pending_writes: Arc::new(AtomicUsize::new(0)),
            started: Instant::now(),
            deadlines: Mutex::new(Vec::new()),
        });
        {
            let state = Arc::clone(&state);
            std::thread::spawn(move || loop {
                state.sweep_deadlines();
                std::thread::sleep(Duration::from_millis(10));
            });
        }
        let executor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || executor_loop(&state))
        };
        let conn = spawn_writer(Arc::clone(&state.pending_writes), Box::new(w));
        reader_loop(&state, BufReader::new(r), conn);
        state.admission_closed.store(true, Ordering::SeqCst);
        let res = executor.join().map_err(|_| "executor panicked".to_string());
        await_flush(&state);
        res
    }

    fn expect_str<'a>(
        obj: &'a std::collections::BTreeMap<String, proto::Value>,
        key: &str,
    ) -> &'a str {
        obj[key].as_str().unwrap_or_else(|| panic!("{key} missing in {obj:?}"))
    }

    #[test]
    fn round_trip_status_place_cancel_and_draining() {
        let mut h = Harness::start(ServeConfig { queue_cap: 4, batch_max: 2 });
        h.send(r#"{"id":"s1","op":"status"}"#);
        let st = h.recv();
        assert_eq!(expect_str(&st, "phase"), "running");
        assert_eq!(st["lookup"], proto::Value::Bool(true));
        assert!(!expect_str(&st, "fingerprint").is_empty());

        h.send(&place_line("r1", &query_payload(0), None));
        let r1 = h.recv();
        assert_eq!(expect_str(&r1, "code"), "Ok");
        assert!(expect_str(&r1, "jplace").contains("\"placements\""));

        // Cancel of an unknown id is a typed error, not a hang.
        h.send(r#"{"id":"c1","op":"cancel","target":"nope"}"#);
        assert_eq!(expect_str(&h.recv(), "code"), "BadRequest");

        // Past deadline: typed immediate rejection.
        h.send(&place_line("r2", &query_payload(1), Some(-5.0)));
        assert_eq!(expect_str(&h.recv(), "code"), "Deadline");

        // Malformed line: typed, daemon keeps serving.
        h.send("this is not json");
        assert_eq!(expect_str(&h.recv(), "code"), "BadRequest");
        h.send(&place_line("r3", &query_payload(1), None));
        assert_eq!(expect_str(&h.recv(), "code"), "Ok");

        // Drain: new placements refused, EOF finishes the run cleanly.
        h.shutdown.on_signal();
        h.send(&place_line("r4", &query_payload(0), None));
        assert_eq!(expect_str(&h.recv(), "code"), "Draining");
        h.finish().unwrap();
    }

    #[test]
    fn zero_cap_queue_sheds_with_typed_overloaded() {
        let mut h = Harness::start(ServeConfig { queue_cap: 0, batch_max: 2 });
        let t0 = Instant::now();
        h.send(&place_line("r1", &query_payload(0), None));
        let r = h.recv();
        assert_eq!(expect_str(&r, "code"), "Overloaded");
        assert!(t0.elapsed() < Duration::from_secs(5), "overload must answer immediately");
        // Status still answers under total overload.
        h.send(r#"{"id":"s","op":"status"}"#);
        let st = h.recv();
        assert_eq!(st["shed"], proto::Value::Num(1.0));
        h.finish().unwrap();
    }

    #[test]
    fn duplicate_in_flight_id_is_rejected() {
        let mut h = Harness::start(ServeConfig { queue_cap: 8, batch_max: 1 });
        // Queue two with the same id quickly; the second must be a
        // typed BadRequest whichever order the executor gets to them.
        h.send(&place_line("dup", &query_payload(0), Some(60_000.0)));
        h.send(&place_line("dup", &query_payload(1), Some(60_000.0)));
        let a = h.recv();
        let b = h.recv();
        let codes: Vec<&str> = vec![expect_str(&a, "code"), expect_str(&b, "code")];
        assert!(codes.contains(&"Ok") || codes.contains(&"BadRequest"), "got {codes:?}");
        h.finish().unwrap();
    }
}
