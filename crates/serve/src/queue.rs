//! The bounded admission queue in front of the warm engine.
//!
//! The overload contract: admission never blocks. A full queue rejects
//! *immediately* with the rejected item handed back (the caller turns
//! it into a typed `Overloaded` response), so a client under overload
//! learns in one round-trip instead of hanging in an invisible backlog.
//! The executor side blocks (with a timeout, so drain/abort phases are
//! polled) and drains up to a batch budget at a time — that is where
//! micro-batching happens.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded MPSC queue with non-blocking admission and batched,
/// timeout-polled removal.
pub struct AdmissionQueue<T> {
    inner: Mutex<VecDeque<T>>,
    cv: Condvar,
    cap: usize,
}

impl<T> AdmissionQueue<T> {
    /// `cap` is the maximum backlog; 0 means "always shed" (useful to
    /// make overload deterministic in tests and drills).
    pub fn new(cap: usize) -> Self {
        AdmissionQueue { inner: Mutex::new(VecDeque::new()), cv: Condvar::new(), cap }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current backlog depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Non-blocking admission: `Err(item)` the instant the queue is
    /// full. Never parks, never spins.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Removes up to `max` items in FIFO order, waiting at most
    /// `timeout` for the first one. Empty result means the timeout
    /// elapsed — the executor uses that to poll the shutdown phase.
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<T> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.is_empty() {
            let (guard, _) = self.cv.wait_timeout(q, timeout).unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        let n = q.len().min(max.max(1));
        q.drain(..n).collect()
    }
}

/// The memory-pressure ladder: shrinks the micro-batch budget when the
/// engine reports degradation (the PR 3 ladder — prefetch disabled,
/// block clamped, flush retries) and grows it back after a streak of
/// clean runs. Shrinking the batch is the step *before* shedding load:
/// smaller batches need smaller chunk buffers and fewer concurrent
/// pins, so the daemon first trades throughput for headroom and only
/// rejects once the queue itself overflows.
pub struct PressureLadder {
    max: usize,
    budget: usize,
    clean_streak: u32,
    promote_after: u32,
}

impl PressureLadder {
    pub fn new(max_batch: usize) -> Self {
        let max = max_batch.max(1);
        PressureLadder { max, budget: max, clean_streak: 0, promote_after: 3 }
    }

    /// The current micro-batch budget (requests merged per engine run).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Feeds one engine run's degradation verdict; returns the budget
    /// for the next batch.
    pub fn on_run(&mut self, degraded: bool) -> usize {
        if degraded {
            self.budget = (self.budget / 2).max(1);
            self.clean_streak = 0;
        } else {
            self.clean_streak += 1;
            if self.clean_streak >= self.promote_after && self.budget < self.max {
                self.budget += 1;
                self.clean_streak = 0;
            }
        }
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn full_queue_rejects_immediately_and_hands_the_item_back() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let t0 = Instant::now();
        assert_eq!(q.try_push(3), Err(3), "the shed item comes back for the typed response");
        assert!(t0.elapsed() < Duration::from_millis(50), "admission must never block");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn zero_capacity_always_sheds() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.try_push("r"), Err("r"));
    }

    #[test]
    fn pop_batch_is_fifo_and_bounded() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3, Duration::from_millis(1)), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(9, Duration::from_millis(1)), vec![3, 4]);
        let t0 = Instant::now();
        assert!(q.pop_batch(3, Duration::from_millis(10)).is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(10), "empty pop waits out the timeout");
    }

    #[test]
    fn pop_batch_wakes_on_push() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(h.join().unwrap(), vec![42]);
    }

    #[test]
    fn ladder_halves_under_pressure_and_climbs_back_slowly() {
        let mut l = PressureLadder::new(8);
        assert_eq!(l.budget(), 8);
        assert_eq!(l.on_run(true), 4);
        assert_eq!(l.on_run(true), 2);
        assert_eq!(l.on_run(true), 1);
        assert_eq!(l.on_run(true), 1, "floor is one request per batch");
        // Three clean runs per step back up: recovery is deliberately
        // slower than degradation.
        assert_eq!(l.on_run(false), 1);
        assert_eq!(l.on_run(false), 1);
        assert_eq!(l.on_run(false), 2);
        for _ in 0..30 {
            l.on_run(false);
        }
        assert_eq!(l.budget(), 8, "budget is capped at the configured max");
    }
}
