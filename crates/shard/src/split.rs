//! Raw-byte FASTA splitting.
//!
//! The coordinator splits the query stream into contiguous per-shard
//! FASTA files. The split is **byte-preserving**: each record (header
//! line through the last sequence byte before the next header) is
//! copied verbatim, so concatenating the shard files reproduces the
//! input and each worker's journal manifest hashes exactly the bytes it
//! will read. Record *order* is preserved, which is what makes the
//! merged jplace byte-identical to a single-process run — placement
//! lines are emitted in query order and are independent of chunk
//! geometry.

/// A contiguous split of a query FASTA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Per-shard FASTA text, in shard order.
    pub shards: Vec<String>,
    /// Records per shard (parallel to `shards`; every entry ≥ 1).
    pub sizes: Vec<usize>,
}

/// Splits `text` into at most `n_shards` contiguous shards of
/// near-equal record count (the first `n_records % n_shards` shards get
/// one extra). Fewer records than shards clamps the shard count — a
/// worker with zero queries would be pure overhead.
pub fn split_fasta(text: &str, n_shards: usize) -> Result<Split, String> {
    if n_shards == 0 {
        return Err("need at least one shard".to_string());
    }
    let bytes = text.as_bytes();
    let mut starts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'>' && (i == 0 || bytes[i - 1] == b'\n') {
            starts.push(i);
        }
    }
    let Some(&first) = starts.first() else {
        return Err("query file has no FASTA records".to_string());
    };
    if !text[..first].trim().is_empty() {
        return Err("query file does not start with a FASTA header".to_string());
    }
    let n_records = starts.len();
    let k = n_shards.min(n_records);
    let base = n_records / k;
    let rem = n_records % k;
    let mut shards = Vec::with_capacity(k);
    let mut sizes = Vec::with_capacity(k);
    let mut rec = 0usize;
    for shard in 0..k {
        let take = base + usize::from(shard < rem);
        let lo = starts[rec];
        let hi = starts.get(rec + take).copied().unwrap_or(text.len());
        shards.push(text[lo..hi].to_string());
        sizes.push(take);
        rec += take;
    }
    Ok(Split { shards, sizes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fasta(n: usize) -> String {
        (0..n).map(|i| format!(">q{i}\nACGT\nACGA\n")).collect()
    }

    #[test]
    fn split_is_contiguous_and_byte_preserving() {
        let text = fasta(7);
        let s = split_fasta(&text, 3).unwrap();
        assert_eq!(s.sizes, vec![3, 2, 2]);
        assert_eq!(s.shards.concat(), text, "concatenation reproduces the input bytes");
        assert!(s.shards.iter().all(|t| t.starts_with('>')));
    }

    #[test]
    fn shard_count_clamps_to_record_count() {
        let text = fasta(2);
        let s = split_fasta(&text, 5).unwrap();
        assert_eq!(s.sizes, vec![1, 1]);
        assert_eq!(s.shards.concat(), text);
    }

    #[test]
    fn single_shard_is_the_whole_file() {
        let text = fasta(4);
        let s = split_fasta(&text, 1).unwrap();
        assert_eq!(s.shards, vec![text]);
        assert_eq!(s.sizes, vec![4]);
    }

    #[test]
    fn odd_record_shapes_survive() {
        // Multi-line sequences, no trailing newline, '>' inside a
        // sequence line never starts a record.
        let text = ">a\nAC\nGT\n>b desc > with angle\nACGT";
        let s = split_fasta(text, 2).unwrap();
        assert_eq!(s.sizes, vec![1, 1]);
        assert_eq!(s.shards[0], ">a\nAC\nGT\n");
        assert_eq!(s.shards[1], ">b desc > with angle\nACGT");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(split_fasta("", 2).is_err());
        assert!(split_fasta("ACGT\n", 2).is_err());
        assert!(split_fasta("junk\n>q\nACGT\n", 2).is_err());
        assert!(split_fasta(&fasta(3), 0).is_err());
        // Leading whitespace is tolerated (it parses fine downstream).
        assert!(split_fasta("\n>q\nACGT\n", 1).is_ok());
    }
}
