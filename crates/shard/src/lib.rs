//! Fault-tolerant sharded placement.
//!
//! Phylogenetic placement is embarrassingly parallel across queries, so
//! the natural scale-out is to split the query batch into shards and
//! run one checkpoint-enabled placement process per shard. What does
//! *not* fall out for free is robustness: a crashed, hung, or merely
//! slow worker must not lose the fleet's work or wedge the run. This
//! crate supplies that layer:
//!
//! * [`split`] — byte-preserving contiguous FASTA splitting;
//! * [`heartbeat`] — the worker→coordinator stdout progress protocol
//!   (beats are emitted only after a chunk is durably journaled);
//! * [`supervisor`] — the poll-based supervision engine: crash/hang/
//!   straggler detection, capped-backoff re-queue with per-shard jitter,
//!   typed failure after retry exhaustion; unit-testable over an
//!   abstract [`supervisor::Worker`];
//! * [`process`] — the real subprocess worker (spawn, SIGTERM/SIGKILL,
//!   heartbeat reader thread);
//! * [`merge`] — strict jplace parsing and a merge byte-identical to a
//!   single-process run;
//! * [`coordinator`] — ties the above into `phyloplace shard`, with a
//!   [`phylo_journal::ShardSetManifest`] guarding work-directory reuse;
//! * [`shutdown`] — the Running → Draining → Aborting signal state
//!   machine (second SIGINT escapes a graceful drain, exit 130).
//!
//! Every worker journals its chunks (`phylo-journal`), so a re-queued
//! shard resumes from its durable prefix: supervision can kill workers
//! freely without ever recomputing finished work — the crash-safety
//! design of the single-process pipeline is what makes aggressive
//! fleet-level recovery cheap.

pub mod coordinator;
pub mod heartbeat;
pub mod merge;
pub mod process;
pub mod shutdown;
pub mod split;
pub mod supervisor;

pub use coordinator::{run_coordinator, shard_dir, CoordinatorConfig, CoordinatorOutcome};
pub use heartbeat::{format_heartbeat, parse_heartbeat, HbLine, Heartbeat, HeartbeatScanner};
pub use merge::{merge_jplace, parse_jplace, JplaceDoc, MergeError};
pub use process::{kill_registered_workers, ProcessWorker};
pub use shutdown::{Phase, Shutdown, EXIT_ABORTED, EXIT_INTERRUPTED};
pub use split::{split_fasta, Split};
pub use supervisor::{supervise, ShardConfig, ShardError, ShardReport, Worker, WorkerProgress};
