//! Merging per-shard jplace outputs into one document.
//!
//! jplace was designed to be merge-friendly (Matsen et al.): placements
//! are per-query and reference the same edge-numbered tree, so merging
//! is concatenation of placement entries — *provided* the documents
//! really are siblings. The parser here is deliberately strict: it
//! reads exactly the shape `epa_place::result::to_jplace_with` writes
//! (the only producer whose outputs we merge) and the merge verifies
//! version, field list, and tree identity across shards before
//! reassembling the document byte-for-byte in that same shape. The
//! result of merging N shard outputs is byte-identical to a
//! single-process run over the unsplit query file.

/// Why a shard output could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The document does not have the writer's shape; `what` names the
    /// missing or malformed piece.
    Malformed { shard: usize, what: String },
    /// A shard disagrees with shard 0 on an identity field.
    Mismatch { shard: usize, what: &'static str },
    /// The shard's run was interrupted (`"completed": false`); its
    /// placements are a prefix, not the shard's full answer.
    Incomplete { shard: usize },
    /// Nothing to merge.
    Empty,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Malformed { shard, what } => {
                write!(f, "shard {shard}: unmergeable jplace: {what}")
            }
            MergeError::Mismatch { shard, what } => write!(
                f,
                "shard {shard}: jplace {what} differs from shard 0 — outputs are not from \
                 the same reference"
            ),
            MergeError::Incomplete { shard } => write!(
                f,
                "shard {shard}: output is marked incomplete; the shard's run was interrupted"
            ),
            MergeError::Empty => write!(f, "no shard outputs to merge"),
        }
    }
}

impl std::error::Error for MergeError {}

/// The parsed skeleton of one shard's jplace output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JplaceDoc {
    /// The edge-numbered Newick string (contents of the `"tree"` field).
    pub tree: String,
    /// The `"fields"` line, verbatim (including its trailing comma).
    pub fields_line: String,
    /// One line per query, in query order, without trailing commas.
    pub placement_lines: Vec<String>,
    /// The run's completion flag.
    pub completed: bool,
}

/// Parses one shard's output. `shard` is only used in error messages.
pub fn parse_jplace(text: &str, shard: usize) -> Result<JplaceDoc, MergeError> {
    let bad = |what: &str| MergeError::Malformed { shard, what: what.to_string() };
    let mut lines = text.lines();
    let mut tree = None;
    let mut fields_line = None;
    let mut version_ok = false;
    loop {
        let line = lines.next().ok_or_else(|| bad("no \"placements\" array"))?;
        if line == "  \"version\": 3," {
            version_ok = true;
        } else if let Some(rest) = line.strip_prefix("  \"tree\": \"") {
            tree = Some(
                rest.strip_suffix("\",").ok_or_else(|| bad("unterminated tree line"))?.to_string(),
            );
        } else if line.starts_with("  \"fields\": [") {
            fields_line = Some(line.to_string());
        } else if line == "  \"placements\": [" {
            break;
        }
    }
    if !version_ok {
        return Err(bad("missing or unsupported \"version\" (this merger reads version 3)"));
    }
    let mut placement_lines = Vec::new();
    loop {
        let line = lines.next().ok_or_else(|| bad("unterminated \"placements\" array"))?;
        if line == "  ]," {
            break;
        }
        let entry = line.strip_suffix(',').unwrap_or(line);
        if !entry.trim_start().starts_with("{\"p\": ") {
            return Err(bad(&format!("unexpected placement line {entry:?}")));
        }
        placement_lines.push(entry.to_string());
    }
    let meta = lines.next().ok_or_else(|| bad("missing metadata"))?;
    let completed = if meta.contains("\"completed\": true") {
        true
    } else if meta.contains("\"completed\": false") {
        false
    } else {
        return Err(bad("metadata has no \"completed\" flag"));
    };
    Ok(JplaceDoc {
        tree: tree.ok_or_else(|| bad("no \"tree\" field"))?,
        fields_line: fields_line.ok_or_else(|| bad("no \"fields\" field"))?,
        placement_lines,
        completed,
    })
}

/// Merges shard outputs (in shard order) into one complete document.
/// Every shard must be complete and agree with shard 0 on tree and
/// fields; the output is byte-identical to what a single run over the
/// concatenated queries would have written.
pub fn merge_jplace(docs: &[JplaceDoc]) -> Result<String, MergeError> {
    let first = docs.first().ok_or(MergeError::Empty)?;
    for (shard, d) in docs.iter().enumerate() {
        if !d.completed {
            return Err(MergeError::Incomplete { shard });
        }
        if d.tree != first.tree {
            return Err(MergeError::Mismatch { shard, what: "tree" });
        }
        if d.fields_line != first.fields_line {
            return Err(MergeError::Mismatch { shard, what: "fields" });
        }
    }
    let lines: Vec<&String> = docs.iter().flat_map(|d| &d.placement_lines).collect();
    let mut out = String::with_capacity(docs.iter().map(|d| d.tree.len() + 64).sum::<usize>());
    out.push_str("{\n  \"version\": 3,\n  \"tree\": \"");
    out.push_str(&first.tree);
    out.push_str("\",\n");
    out.push_str(&first.fields_line);
    out.push_str("\n  \"placements\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"metadata\": {\"software\": \"phyloplace\", \"completed\": true}\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_place::result::{to_jplace_with, PlacementEntry};
    use epa_place::PlacementResult;
    use phylo_tree::tree::tripod;
    use phylo_tree::EdgeId;

    fn results(names: &[&str]) -> Vec<PlacementResult> {
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut r = PlacementResult {
                    name: name.to_string(),
                    placements: vec![
                        PlacementEntry {
                            edge: EdgeId(i as u32 % 3),
                            log_likelihood: -5.0 - i as f64,
                            like_weight_ratio: 0.0,
                            pendant_length: 0.1,
                            distal_length: 0.05,
                        },
                        PlacementEntry {
                            edge: EdgeId((i as u32 + 1) % 3),
                            log_likelihood: -6.5 - i as f64,
                            like_weight_ratio: 0.0,
                            pendant_length: 0.2,
                            distal_length: 0.01,
                        },
                    ],
                };
                r.finalize();
                r
            })
            .collect()
    }

    #[test]
    fn merged_shards_are_byte_identical_to_a_single_run() {
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let all = results(&["q0", "q1", "q2", "q3", "q4"]);
        let serial = to_jplace_with(&tree, &all, true);
        let docs: Vec<JplaceDoc> = [&all[..2], &all[2..4], &all[4..]]
            .iter()
            .enumerate()
            .map(|(k, part)| parse_jplace(&to_jplace_with(&tree, part, true), k).unwrap())
            .collect();
        assert_eq!(merge_jplace(&docs).unwrap(), serial);
    }

    #[test]
    fn single_shard_roundtrips() {
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let all = results(&["only"]);
        let serial = to_jplace_with(&tree, &all, true);
        let doc = parse_jplace(&serial, 0).unwrap();
        assert_eq!(merge_jplace(&[doc]).unwrap(), serial);
    }

    #[test]
    fn incomplete_and_mismatched_shards_are_refused() {
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let other = tripod(["A", "B", "Z"], [0.1, 0.2, 0.3]).unwrap();
        let all = results(&["q0", "q1"]);
        let ok = parse_jplace(&to_jplace_with(&tree, &all[..1], true), 0).unwrap();
        let partial = parse_jplace(&to_jplace_with(&tree, &all[1..], false), 1).unwrap();
        assert_eq!(merge_jplace(&[ok.clone(), partial]), Err(MergeError::Incomplete { shard: 1 }));
        let foreign = parse_jplace(&to_jplace_with(&other, &all[1..], true), 1).unwrap();
        assert_eq!(
            merge_jplace(&[ok, foreign]),
            Err(MergeError::Mismatch { shard: 1, what: "tree" })
        );
        assert_eq!(merge_jplace(&[]), Err(MergeError::Empty));
    }

    #[test]
    fn parser_rejects_foreign_documents() {
        assert!(parse_jplace("{}", 0).is_err());
        assert!(parse_jplace("{\n  \"version\": 2,\n  \"placements\": [\n  ],\n x\n}", 0).is_err());
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let good = to_jplace_with(&tree, &results(&["q"]), true);
        // Truncation anywhere inside the placements array is malformed.
        let cut = &good[..good.find("\"n\"").unwrap()];
        assert!(parse_jplace(cut, 0).is_err());
    }
}
