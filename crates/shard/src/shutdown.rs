//! The coordinator/CLI shutdown state machine.
//!
//! Three phases, strictly monotonic:
//!
//! * **Running** — no signal, no deadline; work proceeds.
//! * **Draining** — one SIGINT/SIGTERM, or the cancel token armed (the
//!   `--deadline` watchdog): stop gracefully. Workers get SIGTERM, write
//!   their durable prefix, and the process exits [`EXIT_INTERRUPTED`].
//! * **Aborting** — a *second* signal while draining is the operator
//!   saying "now": workers are SIGKILLed and the process exits
//!   [`EXIT_ABORTED`] immediately. Every finished chunk is already
//!   durable, so even the hard path loses no completed work.
//!
//! The struct is plain shared state (an atomic signal count plus the
//! cooperative [`CancelToken`]) so the phase logic is unit-testable
//! without delivering real signals.

use phylo_amc::CancelToken;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Run cancelled cooperatively (signal or `--deadline`); durable prefix
/// written.
pub const EXIT_INTERRUPTED: i32 = 3;
/// Hard abort on the second signal (conventional 128 + SIGINT).
pub const EXIT_ABORTED: i32 = 130;

/// Where the shutdown state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No shutdown requested.
    Running,
    /// Graceful stop in progress: finish the durable prefix and exit 3.
    Draining,
    /// Immediate stop: kill workers, exit 130.
    Aborting,
}

/// Shared shutdown state: a signal count and the cancel token the rest
/// of the pipeline polls. Clones share the same state.
#[derive(Debug, Clone)]
pub struct Shutdown {
    cancel: CancelToken,
    signals: Arc<AtomicU32>,
}

impl Default for Shutdown {
    fn default() -> Self {
        Self::new()
    }
}

impl Shutdown {
    /// Fresh state with its own cancel token.
    pub fn new() -> Self {
        Self::with_cancel(CancelToken::new())
    }

    /// Fresh state wrapping an existing cancel token (so a deadline
    /// watchdog arming that token moves the phase to Draining).
    pub fn with_cancel(cancel: CancelToken) -> Self {
        Shutdown { cancel, signals: Arc::new(AtomicU32::new(0)) }
    }

    /// The cooperative token; arming it (deadline, etc.) drains the run.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Records one delivered signal and returns the resulting phase.
    /// Not called from signal handlers directly — the handler bumps an
    /// async-signal-safe counter and a watchdog thread mirrors it here
    /// via [`Shutdown::record_signals`].
    pub fn on_signal(&self) -> Phase {
        self.signals.fetch_add(1, Ordering::SeqCst);
        self.cancel.cancel();
        self.phase()
    }

    /// Mirrors an absolute signal count observed elsewhere (the binary's
    /// static handler counter). The count is monotonic; a stale smaller
    /// value never rolls the phase back.
    pub fn record_signals(&self, count: u32) -> Phase {
        self.signals.fetch_max(count, Ordering::SeqCst);
        if count >= 1 {
            self.cancel.cancel();
        }
        self.phase()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        let n = self.signals.load(Ordering::SeqCst);
        if n >= 2 {
            Phase::Aborting
        } else if n == 1 || self.cancel.is_cancelled() {
            Phase::Draining
        } else {
            Phase::Running
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_escalate_and_stick() {
        let s = Shutdown::new();
        assert_eq!(s.phase(), Phase::Running);
        assert_eq!(s.on_signal(), Phase::Draining);
        assert!(s.cancel_token().is_cancelled(), "first signal arms the token");
        assert_eq!(s.phase(), Phase::Draining);
        assert_eq!(s.on_signal(), Phase::Aborting);
        assert_eq!(s.phase(), Phase::Aborting, "aborting is sticky");
        assert_eq!(s.on_signal(), Phase::Aborting);
    }

    #[test]
    fn deadline_cancel_drains_without_a_signal() {
        let s = Shutdown::new();
        s.cancel_token().cancel();
        assert_eq!(s.phase(), Phase::Draining);
        // One signal on top of a deadline does not abort — only a second
        // *signal* does; the operator must ask twice.
        assert_eq!(s.on_signal(), Phase::Draining);
        assert_eq!(s.on_signal(), Phase::Aborting);
    }

    #[test]
    fn mirrored_counts_are_monotonic() {
        let s = Shutdown::new();
        assert_eq!(s.record_signals(0), Phase::Running);
        assert_eq!(s.record_signals(1), Phase::Draining);
        assert_eq!(s.record_signals(0), Phase::Draining, "stale mirror cannot roll back");
        assert_eq!(s.record_signals(2), Phase::Aborting);
    }

    #[test]
    fn clones_share_state() {
        let a = Shutdown::new();
        let b = a.clone();
        a.on_signal();
        assert_eq!(b.phase(), Phase::Draining);
    }

    #[test]
    fn running_never_arms_the_token() {
        let s = Shutdown::new();
        assert_eq!(s.phase(), Phase::Running);
        assert!(!s.cancel_token().is_cancelled());
        // Mirroring a zero count (the watchdog's idle tick) is a no-op.
        assert_eq!(s.record_signals(0), Phase::Running);
        assert!(!s.cancel_token().is_cancelled());
    }

    #[test]
    fn external_token_feeds_the_machine_both_ways() {
        // The binary wires one token through both the run and the
        // machine: arming it from *either* side must be visible on the
        // other, which is what lets a deadline watchdog and a signal
        // handler share the drain path.
        let token = CancelToken::new();
        let s = Shutdown::with_cancel(token.clone());
        token.cancel();
        assert_eq!(s.phase(), Phase::Draining, "externally armed token drains");
        let s2 = Shutdown::new();
        let t2 = s2.cancel_token();
        s2.on_signal();
        assert!(t2.is_cancelled(), "signal arms previously handed-out tokens");
    }

    #[test]
    fn mirrored_count_can_jump_straight_to_abort() {
        // Two signals can land between watchdog polls; the first mirror
        // the watchdog sees is then already 2 and must abort without an
        // intermediate Draining observation.
        let s = Shutdown::new();
        assert_eq!(s.record_signals(2), Phase::Aborting);
        assert!(s.cancel_token().is_cancelled());
        assert_eq!(s.record_signals(1), Phase::Aborting, "stale mirror cannot de-escalate");
    }

    #[test]
    fn deadline_then_mirrored_signal_is_still_one_escalation_step() {
        // Double-signal ordering with a deadline in between: deadline
        // drains, the first *mirrored* signal keeps draining, the second
        // aborts — identical to the `on_signal` path.
        let s = Shutdown::new();
        s.cancel_token().cancel();
        assert_eq!(s.record_signals(1), Phase::Draining);
        assert_eq!(s.record_signals(2), Phase::Aborting);
    }

    #[test]
    fn concurrent_mirrors_and_signals_never_de_escalate() {
        // Hammer the machine from racing threads (watchdog mirrors and
        // direct signals interleaved); every observer must see a
        // monotonic Running -> Draining -> Aborting progression.
        let s = Shutdown::new();
        let rank = |p: Phase| match p {
            Phase::Running => 0,
            Phase::Draining => 1,
            Phase::Aborting => 2,
        };
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut last = 0;
                    for k in 0..100 {
                        let p = if i % 2 == 0 { s.record_signals((k / 50) + 1) } else { s.phase() };
                        let r = rank(p);
                        assert!(r >= last, "phase rolled back from {last} to {r}");
                        last = r;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.phase(), Phase::Aborting);
    }
}
