//! The sharded-run coordinator.
//!
//! [`run_coordinator`] is the whole `phyloplace shard` story:
//!
//! 1. split the query FASTA into contiguous shards
//!    ([`crate::split::split_fasta`]) and fingerprint the run in a
//!    [`ShardSetManifest`] at `workdir/shards.json` — a reused work
//!    directory whose inputs or split differ is refused (exit 2), never
//!    silently resumed into wrong answers;
//! 2. launch one checkpoint-enabled `phyloplace place --heartbeat`
//!    worker per shard and supervise the fleet
//!    ([`crate::supervisor::supervise`]): re-launches of a shard resume
//!    from its journal (`--resume`) so completed chunks are never
//!    recomputed;
//! 3. merge the per-shard jplace outputs ([`crate::merge`]) into one
//!    document byte-identical to a single-process run.
//!
//! Coordinator-crash recovery falls out of the same pieces: rerunning
//! with the same `--workdir` revalidates `shards.json`, finds each
//! shard's journal, and resumes every shard from its durable prefix.
//!
//! Fault injection crosses the process boundary via the environment:
//! `PHYLO_FAULTS_SHARD_<k>` on the coordinator becomes `PHYLO_FAULTS`
//! in shard `k`'s **first** attempt only — retries run clean, which is
//! exactly the crash-recovery scenario the chaos tests exercise.

use crate::merge::{merge_jplace, parse_jplace, JplaceDoc};
use crate::process::ProcessWorker;
use crate::shutdown::Shutdown;
use crate::split::split_fasta;
use crate::supervisor::{supervise, ShardConfig, ShardError, ShardReport, Worker};
use phylo_journal::{
    fnv1a64, write_text_atomic, ShardSetManifest, MANIFEST_FILE, SHARD_MANIFEST_FILE,
    SHARD_MANIFEST_FORMAT,
};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Everything a sharded run needs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Scratch/state directory: `shards.json`, per-shard query files,
    /// journals, and outputs live here.
    pub workdir: PathBuf,
    /// Reference tree path (passed through to workers).
    pub tree_path: String,
    /// Reference MSA path (passed through to workers).
    pub ref_path: String,
    /// The unsplit query FASTA path.
    pub query_path: String,
    /// The worker binary (normally `std::env::current_exe()`).
    pub worker_exe: PathBuf,
    /// Placement flags forwarded verbatim to every worker (alphabet,
    /// budget, chunk size, threads, …).
    pub passthrough: Vec<String>,
    /// Supervision policy.
    pub shard: ShardConfig,
}

/// A finished sharded run.
#[derive(Debug)]
pub struct CoordinatorOutcome {
    /// The merged jplace document.
    pub jplace: String,
    /// Fleet statistics.
    pub report: ShardReport,
    /// Shards actually run (after clamping to the query count).
    pub n_shards: usize,
    /// Total queries placed.
    pub n_queries: usize,
}

/// The per-shard subdirectory of a work directory.
pub fn shard_dir(workdir: &Path, shard: usize) -> PathBuf {
    workdir.join(format!("shard-{shard:03}"))
}

fn runtime(context: &str, e: impl std::fmt::Display) -> ShardError {
    ShardError::Runtime(format!("{context}: {e}"))
}

/// Runs a sharded placement to completion (or typed failure).
pub fn run_coordinator(
    cfg: &CoordinatorConfig,
    shutdown: &Shutdown,
) -> Result<CoordinatorOutcome, ShardError> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| ShardError::BadInput(format!("{path}: {e}")))
    };
    let tree_text = read(&cfg.tree_path)?;
    let ref_text = read(&cfg.ref_path)?;
    let query_text = read(&cfg.query_path)?;
    let split = split_fasta(&query_text, cfg.shard.n_shards).map_err(ShardError::BadInput)?;
    let n_shards = split.shards.len();
    let n_queries: usize = split.sizes.iter().sum();

    let manifest = ShardSetManifest {
        format: SHARD_MANIFEST_FORMAT,
        tree_hash: fnv1a64(tree_text.as_bytes()),
        ref_msa_hash: fnv1a64(ref_text.as_bytes()),
        query_hash: fnv1a64(query_text.as_bytes()),
        shard_sizes: split.sizes.clone(),
    };
    std::fs::create_dir_all(&cfg.workdir)
        .map_err(|e| runtime(&format!("create {}", cfg.workdir.display()), e))?;
    let man_path = cfg.workdir.join(SHARD_MANIFEST_FILE);
    match std::fs::read_to_string(&man_path) {
        Ok(text) => {
            let on_disk = ShardSetManifest::parse(&text)
                .map_err(|e| ShardError::BadInput(format!("{}: {e}", man_path.display())))?;
            manifest.check_matches(&on_disk).map_err(|e| {
                ShardError::BadInput(format!(
                    "cannot reuse work directory {}: {e}",
                    cfg.workdir.display()
                ))
            })?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            write_text_atomic(&man_path, &manifest.to_json())
                .map_err(|e| runtime(&format!("write {}", man_path.display()), e))?;
        }
        Err(e) => return Err(runtime(&format!("read {}", man_path.display()), e)),
    }

    // Materialize per-shard query files (idempotent: a matching file
    // from a previous coordinator run is left untouched so worker
    // resume manifests keep validating).
    for (shard, text) in split.shards.iter().enumerate() {
        let dir = shard_dir(&cfg.workdir, shard);
        std::fs::create_dir_all(&dir)
            .map_err(|e| runtime(&format!("create {}", dir.display()), e))?;
        let qpath = dir.join("queries.fasta");
        let stale = match std::fs::read_to_string(&qpath) {
            Ok(existing) => existing != *text,
            Err(_) => true,
        };
        if stale {
            write_text_atomic(&qpath, text)
                .map_err(|e| runtime(&format!("write {}", qpath.display()), e))?;
        }
    }

    let shard_cfg = ShardConfig { n_shards, ..cfg.shard.clone() };
    let report = supervise(&shard_cfg, shutdown, |shard, attempt| {
        let dir = shard_dir(&cfg.workdir, shard);
        let journal = dir.join("journal");
        let mut cmd = Command::new(&cfg.worker_exe);
        cmd.arg("place")
            .arg("--tree")
            .arg(&cfg.tree_path)
            .arg("--ref-msa")
            .arg(&cfg.ref_path)
            .arg("--queries")
            .arg(dir.join("queries.fasta"))
            .args(&cfg.passthrough)
            .arg("--out")
            .arg(dir.join("out.jplace"))
            .arg("--heartbeat");
        // First attempt of a fresh shard starts a journal; any journal
        // with a manifest (earlier attempt or earlier coordinator run)
        // is resumed so durable chunks are never recomputed.
        if journal.join(MANIFEST_FILE).exists() {
            cmd.arg("--resume").arg(&journal);
        } else {
            cmd.arg("--checkpoint").arg(&journal);
        }
        // Workers never inherit the coordinator's own fault arming; a
        // shard-addressed spec is delivered to the first attempt only,
        // so the re-queued attempt recovers clean.
        cmd.env_remove("PHYLO_FAULTS");
        if attempt == 0 {
            if let Ok(spec) = std::env::var(format!("PHYLO_FAULTS_SHARD_{shard}")) {
                cmd.env("PHYLO_FAULTS", spec);
            }
        }
        Ok(Box::new(ProcessWorker::spawn(cmd, shard)?) as Box<dyn Worker>)
    })?;

    let mut docs: Vec<JplaceDoc> = Vec::with_capacity(n_shards);
    for shard in 0..n_shards {
        let path = shard_dir(&cfg.workdir, shard).join("out.jplace");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| runtime(&format!("read {}", path.display()), e))?;
        docs.push(parse_jplace(&text, shard).map_err(|e| ShardError::Runtime(e.to_string()))?);
    }
    let jplace = merge_jplace(&docs).map_err(|e| ShardError::Runtime(e.to_string()))?;
    phylo_obs::gauge("shard.n_shards").set(n_shards as i64);
    Ok(CoordinatorOutcome { jplace, report, n_shards, n_queries })
}
