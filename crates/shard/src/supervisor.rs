//! The shard supervision engine.
//!
//! [`supervise`] drives a fleet of shard workers to completion through
//! an abstract [`Worker`] handle, so the full failure matrix — crash,
//! hang, straggler, launch failure, retry exhaustion, graceful drain,
//! hard abort — is unit-testable with scripted fakes; the real
//! subprocess implementation lives in [`crate::process`].
//!
//! The loop is a plain poll-based state machine (one slot per shard:
//! pending → running → done). Failure handling:
//!
//! * **crash** — the worker exits nonzero: re-queue with capped
//!   exponential backoff + deterministic jitter ([`phylo_amc::Backoff`],
//!   per-shard seed). A worker that exits 2 rejected its *inputs*; that
//!   is a work-directory inconsistency a retry cannot fix, so it fails
//!   the whole run immediately instead of burning retries.
//! * **hang** — no heartbeat within the timeout: SIGKILL and re-queue.
//! * **straggler** — a worker whose progress rate falls below the fleet
//!   median by `straggler_factor`: kill and re-queue (its journal keeps
//!   every durable chunk, so the retry starts from where it stalled).
//! * **retries exhausted** — a shard that failed `max_retries + 1`
//!   times fails the run with a typed [`ShardError::RetriesExhausted`].
//!
//! Because every worker checkpoint-journals its chunks, a re-queued
//! shard resumes instead of recomputing; the supervisor never loses
//! durable work, only the in-flight chunk of the killed attempt.

use crate::shutdown::{Phase, Shutdown};
use std::io;
use std::time::{Duration, Instant};

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Shards to run (the coordinator clamps this to the query count).
    pub n_shards: usize,
    /// Concurrent workers; 0 means one per shard.
    pub max_workers: usize,
    /// A worker silent for longer than this is presumed hung.
    pub heartbeat_timeout: Duration,
    /// Kill a worker whose rate is below fleet-median / this factor.
    pub straggler_factor: f64,
    /// Workers younger than this are exempt from straggler detection.
    pub straggler_grace: Duration,
    /// Re-queues allowed per shard before the run fails.
    pub max_retries: u32,
    /// First re-queue delay (doubles per attempt).
    pub backoff_base: Duration,
    /// Re-queue delay ceiling.
    pub backoff_cap: Duration,
    /// Supervision loop poll interval.
    pub poll_interval: Duration,
    /// How long a draining run waits for SIGTERMed workers before
    /// SIGKILLing them.
    pub term_grace: Duration,
    /// Seed for the per-shard backoff jitter streams.
    pub seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            n_shards: 1,
            max_workers: 0,
            heartbeat_timeout: Duration::from_secs(30),
            straggler_factor: 8.0,
            straggler_grace: Duration::from_secs(5),
            max_retries: 3,
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(5),
            poll_interval: Duration::from_millis(15),
            term_grace: Duration::from_secs(5),
            seed: 0x5eed_1e55,
        }
    }
}

/// A snapshot of one worker's heartbeat state.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerProgress {
    /// Heartbeats received.
    pub beats: u64,
    /// From the latest heartbeat.
    pub chunks_done: usize,
    /// From the latest heartbeat.
    pub n_chunks: usize,
    /// From the latest heartbeat.
    pub queries_done: usize,
    /// From the latest heartbeat.
    pub n_queries: usize,
    /// When the latest heartbeat arrived.
    pub last_beat: Option<Instant>,
}

/// One supervised worker attempt. `try_wait` must be non-blocking.
pub trait Worker: Send {
    /// `Some(exit_code)` once the worker has exited (`-1` for
    /// killed-by-signal), `None` while running.
    fn try_wait(&mut self) -> io::Result<Option<i32>>;
    /// Polite stop request (SIGTERM); the worker drains and exits 3.
    fn terminate(&mut self);
    /// Hard stop (SIGKILL) and reap.
    fn kill(&mut self);
    /// Current heartbeat snapshot.
    fn progress(&self) -> WorkerProgress;
}

/// What the fleet did, for metrics and assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Worker processes launched (first attempts + retries).
    pub launched: u64,
    /// Shard re-queues, of any cause.
    pub requeues: u64,
    /// Re-queues caused by nonzero exits or launch failures.
    pub crashes: u64,
    /// Re-queues caused by heartbeat-timeout kills.
    pub hangs: u64,
    /// Re-queues caused by straggler kills.
    pub stragglers: u64,
    /// Final attempt index per shard (0 = succeeded first try).
    pub attempts: Vec<u32>,
}

/// Why a sharded run failed. The variants map onto the binary's exit
/// contract: `BadInput` → 2, `Interrupted` → 3, `Aborted` → 130, the
/// rest → 1.
#[derive(Debug)]
pub enum ShardError {
    /// Malformed input or an inconsistent/mismatched work directory.
    BadInput(String),
    /// A shard failed `max_retries + 1` attempts; `last` is the final
    /// failure's description.
    RetriesExhausted { shard: usize, attempts: u32, last: String },
    /// Any other runtime failure (I/O, merge, worker output).
    Runtime(String),
    /// Graceful cancellation (signal or deadline) drained the fleet.
    Interrupted,
    /// A second signal hard-aborted the fleet.
    Aborted,
}

impl ShardError {
    /// Process exit status under the CLI contract: `2` usage/input
    /// error, `3` interrupted, `130` aborted, `1` everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            ShardError::BadInput(_) => 2,
            ShardError::Interrupted => crate::shutdown::EXIT_INTERRUPTED,
            ShardError::Aborted => crate::shutdown::EXIT_ABORTED,
            ShardError::RetriesExhausted { .. } | ShardError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BadInput(msg) => write!(f, "{msg}"),
            ShardError::RetriesExhausted { shard, attempts, last } => write!(
                f,
                "shard {shard} failed {attempts} attempts (last: {last}); \
                 giving up — the shard's journal keeps its durable chunks for a future rerun"
            ),
            ShardError::Runtime(msg) => write!(f, "{msg}"),
            ShardError::Interrupted => write!(
                f,
                "interrupted: workers drained; every finished chunk is durable — \
                 rerun with the same --workdir to complete"
            ),
            ShardError::Aborted => write!(f, "aborted on second signal; workers killed"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Indices whose rate is below `median / factor`. Requires at least
/// three samples (no meaningful median below that) and `factor > 1`.
/// A zero median (nobody has progressed) never marks stragglers.
pub fn stragglers(rates: &[f64], factor: f64) -> Vec<usize> {
    if rates.len() < 3 || !(factor > 1.0) {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
    if sorted.len() != rates.len() {
        return Vec::new();
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    let median =
        if sorted.len() % 2 == 1 { sorted[mid] } else { (sorted[mid - 1] + sorted[mid]) / 2.0 };
    if median <= 0.0 {
        return Vec::new();
    }
    (0..rates.len()).filter(|&i| rates[i] * factor < median).collect()
}

enum Slot {
    Pending { attempt: u32, not_before: Instant },
    Running { worker: Box<dyn Worker>, attempt: u32, started: Instant },
    Done,
}

impl Slot {
    fn is_running(&self) -> bool {
        matches!(self, Slot::Running { .. })
    }
}

/// Drives all `cfg.n_shards` shards to completion. `launch(shard,
/// attempt)` starts one worker attempt; the supervisor owns the rest.
pub fn supervise<L>(
    cfg: &ShardConfig,
    shutdown: &Shutdown,
    mut launch: L,
) -> Result<ShardReport, ShardError>
where
    L: FnMut(usize, u32) -> io::Result<Box<dyn Worker>>,
{
    let n = cfg.n_shards;
    if n == 0 {
        return Err(ShardError::BadInput("need at least one shard".to_string()));
    }
    let now = Instant::now();
    let mut slots: Vec<Slot> =
        (0..n).map(|_| Slot::Pending { attempt: 0, not_before: now }).collect();
    let mut report = ShardReport { attempts: vec![0; n], ..ShardReport::default() };
    let result = run_loop(cfg, shutdown, &mut launch, &mut slots, &mut report);
    match result {
        Ok(()) => Ok(report),
        Err(ShardError::Interrupted) => {
            drain(cfg, &mut slots);
            Err(ShardError::Interrupted)
        }
        Err(e) => {
            for slot in &mut slots {
                if let Slot::Running { worker, .. } = slot {
                    worker.kill();
                }
            }
            Err(e)
        }
    }
}

fn run_loop<L>(
    cfg: &ShardConfig,
    shutdown: &Shutdown,
    launch: &mut L,
    slots: &mut Vec<Slot>,
    report: &mut ShardReport,
) -> Result<(), ShardError>
where
    L: FnMut(usize, u32) -> io::Result<Box<dyn Worker>>,
{
    let n = cfg.n_shards;
    let max_workers = if cfg.max_workers == 0 { n } else { cfg.max_workers.max(1) };
    let mut backoffs: Vec<phylo_amc::Backoff> = (0..n)
        .map(|shard| {
            phylo_amc::Backoff::with_seed(
                cfg.backoff_base,
                cfg.backoff_cap,
                cfg.seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
        })
        .collect();
    let mut requeue = |slots: &mut Vec<Slot>,
                       report: &mut ShardReport,
                       shard: usize,
                       attempt: u32,
                       why: String|
     -> Result<(), ShardError> {
        let next = attempt + 1;
        if next > cfg.max_retries {
            return Err(ShardError::RetriesExhausted { shard, attempts: next, last: why });
        }
        report.requeues += 1;
        phylo_obs::counter("shard.requeues").inc();
        slots[shard] = Slot::Pending {
            attempt: next,
            not_before: Instant::now() + backoffs[shard].next_delay(),
        };
        Ok(())
    };

    loop {
        match shutdown.phase() {
            Phase::Aborting => {
                for slot in slots.iter_mut() {
                    if let Slot::Running { worker, .. } = slot {
                        worker.kill();
                    }
                }
                return Err(ShardError::Aborted);
            }
            Phase::Draining => return Err(ShardError::Interrupted),
            Phase::Running => {}
        }

        let now = Instant::now();
        // Launch due pending shards, capped by the worker budget.
        let mut running = slots.iter().filter(|s| s.is_running()).count();
        for shard in 0..n {
            if running >= max_workers {
                break;
            }
            let Slot::Pending { attempt, not_before } = slots[shard] else { continue };
            if not_before > now {
                continue;
            }
            match launch(shard, attempt) {
                Ok(worker) => {
                    report.launched += 1;
                    report.attempts[shard] = attempt;
                    phylo_obs::counter("shard.launched").inc();
                    slots[shard] = Slot::Running { worker, attempt, started: now };
                    running += 1;
                }
                Err(e) => {
                    report.crashes += 1;
                    requeue(slots, report, shard, attempt, format!("launch failed: {e}"))?;
                }
            }
        }

        // Poll running workers: exits, then hangs.
        for shard in 0..n {
            if !slots[shard].is_running() {
                continue;
            }
            let Slot::Running { mut worker, attempt, started } =
                std::mem::replace(&mut slots[shard], Slot::Done)
            else {
                unreachable!()
            };
            match worker.try_wait() {
                Ok(Some(0)) => {} // Done (already in place).
                Ok(Some(2)) => {
                    return Err(ShardError::BadInput(format!(
                        "shard {shard}: worker rejected its inputs (exit 2); the work \
                         directory no longer matches this invocation — remove it or rerun \
                         with the original inputs"
                    )));
                }
                Ok(Some(code)) => {
                    report.crashes += 1;
                    phylo_obs::counter("shard.crashes").inc();
                    let why = if code < 0 {
                        "killed by signal".to_string()
                    } else {
                        format!("exit status {code}")
                    };
                    requeue(slots, report, shard, attempt, why)?;
                }
                Ok(None) => {
                    let p = worker.progress();
                    let quiet_since = p.last_beat.unwrap_or(started);
                    if now.saturating_duration_since(quiet_since) > cfg.heartbeat_timeout {
                        worker.kill();
                        report.hangs += 1;
                        phylo_obs::counter("shard.hangs").inc();
                        requeue(
                            slots,
                            report,
                            shard,
                            attempt,
                            format!("no heartbeat for {:.1}s", cfg.heartbeat_timeout.as_secs_f64()),
                        )?;
                    } else {
                        slots[shard] = Slot::Running { worker, attempt, started };
                    }
                }
                Err(e) => {
                    worker.kill();
                    report.crashes += 1;
                    requeue(slots, report, shard, attempt, format!("wait failed: {e}"))?;
                }
            }
        }

        // Straggler pass over the still-running fleet.
        let samples: Vec<(usize, f64)> = slots
            .iter()
            .enumerate()
            .filter_map(|(shard, slot)| {
                let Slot::Running { worker, started, .. } = slot else { return None };
                let elapsed = now.saturating_duration_since(*started);
                if elapsed < cfg.straggler_grace {
                    return None;
                }
                let p = worker.progress();
                if p.beats == 0 {
                    return None;
                }
                Some((shard, p.queries_done as f64 / elapsed.as_secs_f64().max(1e-9)))
            })
            .collect();
        let rates: Vec<f64> = samples.iter().map(|&(_, r)| r).collect();
        for idx in stragglers(&rates, cfg.straggler_factor) {
            let shard = samples[idx].0;
            let Slot::Running { mut worker, attempt, .. } =
                std::mem::replace(&mut slots[shard], Slot::Done)
            else {
                continue;
            };
            worker.kill();
            report.stragglers += 1;
            phylo_obs::counter("shard.stragglers").inc();
            requeue(
                slots,
                report,
                shard,
                attempt,
                format!("straggler: {:.2} queries/s vs fleet median", samples[idx].1),
            )?;
        }

        if slots.iter().all(|s| matches!(s, Slot::Done)) {
            return Ok(());
        }
        std::thread::sleep(cfg.poll_interval);
    }
}

/// Graceful drain: SIGTERM every running worker, give them `term_grace`
/// to write their durable prefix and exit, then SIGKILL holdouts.
fn drain(cfg: &ShardConfig, slots: &mut [Slot]) {
    for slot in slots.iter_mut() {
        if let Slot::Running { worker, .. } = slot {
            worker.terminate();
        }
    }
    let deadline = Instant::now() + cfg.term_grace;
    loop {
        let mut alive = 0usize;
        for slot in slots.iter_mut() {
            if let Slot::Running { worker, .. } = slot {
                match worker.try_wait() {
                    Ok(Some(_)) => *slot = Slot::Done,
                    _ => alive += 1,
                }
            }
        }
        if alive == 0 {
            return;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(cfg.poll_interval);
    }
    for slot in slots.iter_mut() {
        if let Slot::Running { worker, .. } = slot {
            worker.kill();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Scripted worker: exits with `exit` after `polls` try_waits; beats
    /// on every progress() call when `beating`.
    struct Fake {
        polls: u32,
        exit: i32,
        beating: bool,
        kills: Arc<AtomicU64>,
        killed: bool,
    }

    impl Worker for Fake {
        fn try_wait(&mut self) -> io::Result<Option<i32>> {
            if self.killed {
                return Ok(Some(-1));
            }
            if self.polls == 0 {
                Ok(Some(self.exit))
            } else {
                self.polls -= 1;
                Ok(None)
            }
        }
        fn terminate(&mut self) {
            self.polls = 0;
            self.exit = 3;
        }
        fn kill(&mut self) {
            self.killed = true;
            self.kills.fetch_add(1, Ordering::SeqCst);
        }
        fn progress(&self) -> WorkerProgress {
            WorkerProgress {
                beats: u64::from(self.beating),
                last_beat: self.beating.then(Instant::now),
                ..WorkerProgress::default()
            }
        }
    }

    fn quick_cfg(n: usize) -> ShardConfig {
        ShardConfig {
            n_shards: n,
            heartbeat_timeout: Duration::from_millis(40),
            straggler_grace: Duration::from_secs(600),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            poll_interval: Duration::from_millis(1),
            term_grace: Duration::from_millis(50),
            ..ShardConfig::default()
        }
    }

    fn fake(polls: u32, exit: i32, kills: &Arc<AtomicU64>) -> Box<dyn Worker> {
        Box::new(Fake { polls, exit, beating: true, kills: kills.clone(), killed: false })
    }

    #[test]
    fn clean_fleet_finishes_without_requeues() {
        let kills = Arc::new(AtomicU64::new(0));
        let report =
            supervise(&quick_cfg(3), &Shutdown::new(), |_, _| Ok(fake(2, 0, &kills))).unwrap();
        assert_eq!(report.launched, 3);
        assert_eq!(report.requeues, 0);
        assert_eq!(report.attempts, vec![0, 0, 0]);
        assert_eq!(kills.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn crashed_worker_is_requeued_and_recovers() {
        let kills = Arc::new(AtomicU64::new(0));
        let report = supervise(&quick_cfg(2), &Shutdown::new(), |shard, attempt| {
            // Shard 1 crashes on its first attempt only.
            let exit = if shard == 1 && attempt == 0 { 1 } else { 0 };
            Ok(fake(1, exit, &kills))
        })
        .unwrap();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.requeues, 1);
        assert_eq!(report.launched, 3);
        assert_eq!(report.attempts, vec![0, 1]);
    }

    #[test]
    fn hung_worker_is_killed_and_requeued() {
        let kills = Arc::new(AtomicU64::new(0));
        let report = supervise(&quick_cfg(1), &Shutdown::new(), |_, attempt| {
            Ok(if attempt == 0 {
                // Never exits, never beats: a hang.
                Box::new(Fake {
                    polls: u32::MAX,
                    exit: 0,
                    beating: false,
                    kills: kills.clone(),
                    killed: false,
                })
            } else {
                fake(1, 0, &kills)
            })
        })
        .unwrap();
        assert_eq!(report.hangs, 1);
        assert_eq!(report.requeues, 1);
        assert!(kills.load(Ordering::SeqCst) >= 1, "the hung worker was killed");
    }

    #[test]
    fn retries_exhaust_into_a_typed_error() {
        let kills = Arc::new(AtomicU64::new(0));
        let cfg = ShardConfig { max_retries: 2, ..quick_cfg(1) };
        let err = supervise(&cfg, &Shutdown::new(), |_, _| Ok(fake(0, 1, &kills))).unwrap_err();
        match err {
            ShardError::RetriesExhausted { shard: 0, attempts: 3, .. } => {}
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn worker_exit_2_fails_fast_as_bad_input() {
        let kills = Arc::new(AtomicU64::new(0));
        let launches = Arc::new(AtomicU64::new(0));
        let l2 = launches.clone();
        let err = supervise(&quick_cfg(1), &Shutdown::new(), move |_, _| {
            l2.fetch_add(1, Ordering::SeqCst);
            Ok(fake(0, 2, &kills))
        })
        .unwrap_err();
        assert!(matches!(err, ShardError::BadInput(_)), "{err}");
        assert_eq!(launches.load(Ordering::SeqCst), 1, "no retries for rejected inputs");
    }

    #[test]
    fn launch_failure_counts_as_crash_and_retries() {
        let kills = Arc::new(AtomicU64::new(0));
        let report = supervise(&quick_cfg(1), &Shutdown::new(), |_, attempt| {
            if attempt == 0 {
                Err(io::Error::other("spawn failed"))
            } else {
                Ok(fake(1, 0, &kills))
            }
        })
        .unwrap();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.requeues, 1);
        assert_eq!(report.launched, 1, "only the successful attempt launched");
    }

    #[test]
    fn drain_on_first_signal_aborts_on_second() {
        let kills = Arc::new(AtomicU64::new(0));
        let shutdown = Shutdown::new();
        shutdown.on_signal();
        let err =
            supervise(&quick_cfg(2), &shutdown, |_, _| Ok(fake(1000, 0, &kills))).unwrap_err();
        assert!(matches!(err, ShardError::Interrupted), "{err}");

        let shutdown = Shutdown::new();
        shutdown.on_signal();
        shutdown.on_signal();
        let err =
            supervise(&quick_cfg(2), &shutdown, |_, _| Ok(fake(1000, 0, &kills))).unwrap_err();
        assert!(matches!(err, ShardError::Aborted), "{err}");
    }

    #[test]
    fn straggler_median_math() {
        assert!(stragglers(&[1.0, 2.0], 8.0).is_empty(), "needs three samples");
        assert!(stragglers(&[0.0, 0.0, 0.0], 8.0).is_empty(), "zero median never fires");
        assert_eq!(stragglers(&[10.0, 9.0, 1.0], 8.0), vec![2]);
        assert!(stragglers(&[10.0, 9.0, 2.0], 8.0).is_empty(), "2.0 * 8 > 9.5 median");
        assert_eq!(stragglers(&[10.0, 12.0, 11.0, 0.5], 8.0), vec![3]);
        assert!(stragglers(&[10.0, 9.0, 1.0], 1.0).is_empty(), "factor must exceed 1");
        assert!(stragglers(&[f64::NAN, 9.0, 1.0], 8.0).is_empty(), "non-finite rates bail");
    }

    #[test]
    fn slow_worker_is_killed_as_a_straggler() {
        let kills = Arc::new(AtomicU64::new(0));
        // Stragglers need real rates: fake progress via a custom worker.
        struct Paced {
            queries_done: usize,
            kills: Arc<AtomicU64>,
            done_after: Instant,
        }
        impl Worker for Paced {
            fn try_wait(&mut self) -> io::Result<Option<i32>> {
                Ok((Instant::now() >= self.done_after).then_some(0))
            }
            fn terminate(&mut self) {}
            fn kill(&mut self) {
                self.kills.fetch_add(1, Ordering::SeqCst);
                self.done_after = Instant::now();
            }
            fn progress(&self) -> WorkerProgress {
                WorkerProgress {
                    beats: 1,
                    queries_done: self.queries_done,
                    last_beat: Some(Instant::now()),
                    ..WorkerProgress::default()
                }
            }
        }
        let cfg = ShardConfig {
            straggler_grace: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_secs(60),
            ..quick_cfg(3)
        };
        let report = supervise(&cfg, &Shutdown::new(), |shard, attempt| {
            let healthy = shard != 2 || attempt > 0;
            Ok(Box::new(Paced {
                queries_done: if healthy { 1000 } else { 0 },
                kills: kills.clone(),
                done_after: Instant::now()
                    + if healthy { Duration::from_millis(60) } else { Duration::from_secs(600) },
            }) as Box<dyn Worker>)
        })
        .unwrap();
        assert_eq!(report.stragglers, 1);
        assert_eq!(report.requeues, 1);
        assert_eq!(report.attempts, vec![0, 0, 1]);
    }
}
