//! The subprocess-backed [`Worker`]: spawns a `phyloplace place
//! --heartbeat` child with piped stdout, parses heartbeat lines on a
//! reader thread, and forwards everything else to stderr with a shard
//! prefix.

use crate::heartbeat::{HbLine, Heartbeat, HeartbeatScanner};
use crate::supervisor::{Worker, WorkerProgress};
use std::io::{self, Read};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

#[derive(Default)]
struct HbState {
    beats: u64,
    hb: Heartbeat,
    last_beat: Option<Instant>,
}

/// One worker subprocess plus its heartbeat reader thread.
pub struct ProcessWorker {
    child: Child,
    hb: Arc<Mutex<HbState>>,
    reader: Option<JoinHandle<()>>,
}

#[cfg(unix)]
fn send_signal(pid: u32, sig: i32) {
    // Graceful stop needs SIGTERM; std's `Child::kill` is SIGKILL only,
    // so use the libc `kill(2)` std already links (same idiom as the
    // binary's signal handler installation).
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid as i32, sig);
    }
}

/// Live worker pids, for the abort escape hatch: a second SIGINT exits
/// the coordinator *from the signal watchdog*, bypassing the supervision
/// loop's own kill-everything paths — without this registry the fleet
/// (possibly hung, possibly mid-chunk) would be orphaned.
static LIVE_PIDS: Mutex<Vec<u32>> = Mutex::new(Vec::new());

fn register(pid: u32) {
    LIVE_PIDS.lock().unwrap_or_else(|e| e.into_inner()).push(pid);
}

fn deregister(pid: u32) {
    LIVE_PIDS.lock().unwrap_or_else(|e| e.into_inner()).retain(|p| *p != pid);
}

/// SIGKILLs every worker subprocess still registered as live. Called on
/// the hard-abort path right before `process::exit` — no reaping (the
/// OS inherits the zombies for the instant the coordinator has left).
pub fn kill_registered_workers() {
    let pids: Vec<u32> = std::mem::take(&mut *LIVE_PIDS.lock().unwrap_or_else(|e| e.into_inner()));
    for _pid in pids {
        #[cfg(unix)]
        send_signal(_pid, 9);
    }
}

/// Classifies one complete stdout line from a worker. Beats update the
/// shared progress state; lines that *look* like beats but do not parse
/// are skipped with a counter (a garbled beat is noise, not silence —
/// the worker's next clean beat still proves liveness); everything else
/// is forwarded to stderr with the shard prefix.
fn handle_line(state: &Arc<Mutex<HbState>>, shard: usize, line: HbLine) {
    match line {
        HbLine::Beat(beat) => {
            let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
            s.beats += 1;
            s.hb = beat;
            s.last_beat = Some(Instant::now());
        }
        HbLine::Malformed(raw) => {
            phylo_obs::counter("shard.heartbeat_malformed").inc();
            eprintln!("[shard {shard}] malformed heartbeat skipped: {raw}");
        }
        HbLine::Other(raw) => {
            if !raw.trim().is_empty() {
                eprintln!("[shard {shard}] {raw}");
            }
        }
    }
}

impl ProcessWorker {
    /// Spawns `cmd` with piped stdout and starts the heartbeat reader.
    /// `shard` labels forwarded non-heartbeat output.
    pub fn spawn(mut cmd: Command, shard: usize) -> io::Result<ProcessWorker> {
        cmd.stdout(Stdio::piped());
        let mut child = cmd.spawn()?;
        register(child.id());
        let stdout = child.stdout.take().expect("stdout was piped");
        let hb: Arc<Mutex<HbState>> = Arc::default();
        let state = hb.clone();
        let reader = std::thread::spawn(move || {
            // Raw reads through an incremental scanner, not
            // `BufReader::lines`: one invalid-UTF-8 byte on the pipe
            // must not kill this thread — that silenced every later
            // beat and made a *healthy* worker look hung, so the
            // supervisor would kill and requeue it for nothing.
            let mut stdout = stdout;
            let mut scanner = HeartbeatScanner::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = match stdout.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                for line in scanner.push(&buf[..n]) {
                    handle_line(&state, shard, line);
                }
            }
            if let Some(line) = scanner.finish() {
                handle_line(&state, shard, line);
            }
        });
        Ok(ProcessWorker { child, hb, reader: Some(reader) })
    }

    fn join_reader(&mut self) {
        // The child is dead, so the pipe is normally at (or racing
        // toward) EOF — but a grandchild the worker forked can inherit
        // the write end and keep the pipe open indefinitely (dash, for
        // one, forks even single commands). A reader join must never
        // wedge the supervision loop on such an orphan, so poll briefly
        // and then detach: the thread parks in `read` and exits on its
        // own at EOF, touching only its Arc'd heartbeat state.
        let Some(r) = self.reader.take() else { return };
        let deadline = Instant::now() + std::time::Duration::from_secs(1);
        while !r.is_finished() {
            if Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let _ = r.join();
    }
}

impl Worker for ProcessWorker {
    fn try_wait(&mut self) -> io::Result<Option<i32>> {
        match self.child.try_wait()? {
            Some(status) => {
                deregister(self.child.id());
                self.join_reader();
                // `code()` is None when the child died to a signal.
                Ok(Some(status.code().unwrap_or(-1)))
            }
            None => Ok(None),
        }
    }

    fn terminate(&mut self) {
        #[cfg(unix)]
        send_signal(self.child.id(), 15);
        #[cfg(not(unix))]
        {
            let _ = self.child.kill();
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        // Reap immediately — SIGKILL death is prompt and leaving the pid
        // unreaped would leak a zombie per re-queue.
        let _ = self.child.wait();
        deregister(self.child.id());
        self.join_reader();
    }

    fn progress(&self) -> WorkerProgress {
        let s = self.hb.lock().unwrap_or_else(|e| e.into_inner());
        WorkerProgress {
            beats: s.beats,
            chunks_done: s.hb.chunks_done,
            n_chunks: s.hb.n_chunks,
            queries_done: s.hb.queries_done,
            n_queries: s.hb.n_queries,
            last_beat: s.last_beat,
        }
    }
}

impl Drop for ProcessWorker {
    /// No worker outlives its supervisor: whatever path drops the handle
    /// (error unwind, abort), the subprocess is killed and reaped.
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        deregister(self.child.id());
        self.join_reader();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `kill_registered_workers` drains the process-global pid registry,
    // so tests that spawn workers must not overlap with it in time.
    static LOCK: Mutex<()> = Mutex::new(());

    fn sh(script: &str) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn exit_codes_and_heartbeats_are_observed() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut w = ProcessWorker::spawn(sh("echo 'HB 1 4 25 100'; exit 0"), 0).unwrap();
        let code = loop {
            if let Some(c) = w.try_wait().unwrap() {
                break c;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        assert_eq!(code, 0);
        let p = w.progress();
        assert_eq!(p.beats, 1);
        assert_eq!((p.chunks_done, p.n_chunks, p.queries_done, p.n_queries), (1, 4, 25, 100));
        assert!(p.last_beat.is_some());

        let mut w = ProcessWorker::spawn(sh("exit 7"), 0).unwrap();
        let code = loop {
            if let Some(c) = w.try_wait().unwrap() {
                break c;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        assert_eq!(code, 7);
    }

    #[test]
    fn garbage_and_malformed_lines_do_not_silence_later_beats() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Invalid UTF-8, then a truncated HB line, then a real beat: the
        // old `BufReader::lines` reader died at the first byte of junk
        // and never saw the beat, so the worker looked silent.
        let mut w = ProcessWorker::spawn(
            sh("printf 'bin \\377\\376 junk\\nHB 9 9\\nHB 2 4 50 100\\n'; exit 0"),
            0,
        )
        .unwrap();
        let code = loop {
            if let Some(c) = w.try_wait().unwrap() {
                break c;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        assert_eq!(code, 0);
        let p = w.progress();
        assert_eq!(p.beats, 1, "the beat after the garbage must still land");
        assert_eq!((p.chunks_done, p.n_chunks, p.queries_done, p.n_queries), (2, 4, 50, 100));
    }

    #[test]
    fn kill_stops_a_sleeping_child() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let start = Instant::now();
        // `exec` so the shell does not fork a grandchild that would
        // outlive the kill (dash forks even single commands).
        let mut w = ProcessWorker::spawn(sh("exec sleep 600"), 0).unwrap();
        assert_eq!(w.try_wait().unwrap(), None);
        w.kill();
        assert!(start.elapsed() < std::time::Duration::from_secs(30));
    }

    #[test]
    fn kill_is_not_wedged_by_a_pipe_holding_grandchild() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // The backgrounded grandchild inherits the stdout write end and
        // survives the kill; reaping the worker must not block on it.
        let mut w = ProcessWorker::spawn(sh("sleep 30 & exec sleep 600"), 0).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(100));
        let start = Instant::now();
        w.kill();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "kill blocked on an orphaned pipe holder"
        );
    }

    #[cfg(unix)]
    #[test]
    fn abort_registry_kills_live_workers() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut w = ProcessWorker::spawn(sh("exec sleep 600"), 0).unwrap();
        let pid = w.child.id();
        assert!(LIVE_PIDS.lock().unwrap().contains(&pid));
        kill_registered_workers();
        assert!(LIVE_PIDS.lock().unwrap().is_empty());
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if w.child.try_wait().unwrap().is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "registered worker survived the abort kill");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        w.join_reader();
    }

    #[cfg(unix)]
    #[test]
    fn terminate_sends_sigterm() {
        // Short sleeps in a loop: the trap runs after the current sleep
        // finishes, and no long-lived grandchild holds the stdout pipe
        // open past the shell's death.
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut w =
            ProcessWorker::spawn(sh("trap 'exit 3' TERM; while :; do sleep 0.1; done"), 0).unwrap();
        // Give the shell a beat to install the trap.
        std::thread::sleep(std::time::Duration::from_millis(100));
        w.terminate();
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        let code = loop {
            if let Some(c) = w.try_wait().unwrap() {
                break c;
            }
            assert!(Instant::now() < deadline, "SIGTERM was not delivered");
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert_eq!(code, 3);
    }
}
