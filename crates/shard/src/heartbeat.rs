//! The worker→coordinator heartbeat line protocol.
//!
//! Workers run with `--out` (the jplace goes to a file), which frees
//! their stdout for a line-oriented progress channel: one `HB` line at
//! run start and one after every *durable* chunk — the beat is emitted
//! only once the chunk's journal frame is fsynced, so the coordinator's
//! view of `chunks_done` never runs ahead of what a resume can restore.
//! Anything on stdout that is not a heartbeat is forwarded verbatim to
//! the coordinator's stderr, so workers stay free to print.

/// One worker progress beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Heartbeat {
    /// Chunks durably journaled so far.
    pub chunks_done: usize,
    /// Total chunks in the worker's plan.
    pub n_chunks: usize,
    /// Queries covered by the durable chunks.
    pub queries_done: usize,
    /// Total queries assigned to the worker.
    pub n_queries: usize,
}

/// Line prefix that marks a heartbeat.
pub const HB_PREFIX: &str = "HB ";

/// Renders a heartbeat as its wire line (no trailing newline).
pub fn format_heartbeat(hb: &Heartbeat) -> String {
    format!("HB {} {} {} {}", hb.chunks_done, hb.n_chunks, hb.queries_done, hb.n_queries)
}

/// Parses a wire line; `None` for anything that is not a well-formed
/// heartbeat (such lines are ordinary worker output, not an error).
pub fn parse_heartbeat(line: &str) -> Option<Heartbeat> {
    let rest = line.strip_prefix(HB_PREFIX)?;
    let mut fields = rest.split_ascii_whitespace().map(|f| f.parse::<usize>().ok());
    let mut next = || fields.next().flatten();
    let hb = Heartbeat {
        chunks_done: next()?,
        n_chunks: next()?,
        queries_done: next()?,
        n_queries: next()?,
    };
    if fields.next().is_some() {
        return None;
    }
    Some(hb)
}

/// One decoded line from a worker's stdout stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbLine {
    /// A well-formed heartbeat.
    Beat(Heartbeat),
    /// A line that *claims* to be a heartbeat (`HB ` prefix) but does
    /// not parse — truncated by an interleaved writer, garbled by a
    /// partial flush, or plain garbage. The reader skips it (counting
    /// `shard.heartbeat_malformed`) instead of letting it derail the
    /// stream: a worker with a mangled beat is noisy, not silent.
    Malformed(String),
    /// Ordinary worker output, forwarded verbatim.
    Other(String),
}

/// Incremental, byte-level splitter for a worker's stdout stream.
///
/// The naive reader (`BufReader::lines`) dies on the first invalid
/// UTF-8 byte — `lines()` yields `Err` and the loop breaks — which
/// silences every *later* heartbeat and makes a healthy worker look
/// hung (the supervisor then kills and requeues it). This scanner
/// never gives up on the stream: bytes are buffered until a `\n`,
/// decoded lossily, and classified per line. Partial lines survive
/// across arbitrarily split reads.
#[derive(Default)]
pub struct HeartbeatScanner {
    partial: Vec<u8>,
}

/// Cap on a buffered partial line: a worker that streams forever
/// without a newline must not grow the coordinator's memory without
/// bound. Past the cap the fragment is flushed as a (possibly
/// malformed) line on its own.
const MAX_LINE_BYTES: usize = 1 << 20;

impl HeartbeatScanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one read's worth of bytes; returns every line completed by
    /// it. A trailing fragment stays buffered for the next call.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<HbLine> {
        let mut out = Vec::new();
        for &b in bytes {
            if b == b'\n' {
                out.push(Self::classify(&std::mem::take(&mut self.partial)));
            } else {
                self.partial.push(b);
                if self.partial.len() >= MAX_LINE_BYTES {
                    out.push(Self::classify(&std::mem::take(&mut self.partial)));
                }
            }
        }
        out
    }

    /// Flushes a final unterminated fragment (stream hit EOF mid-line).
    pub fn finish(&mut self) -> Option<HbLine> {
        if self.partial.is_empty() {
            return None;
        }
        Some(Self::classify(&std::mem::take(&mut self.partial)))
    }

    fn classify(raw: &[u8]) -> HbLine {
        // Lossy decode: a worker writing binary junk (or two writers
        // interleaving mid-line) yields a replacement-charactered
        // string, which classifies as Other/Malformed like any text.
        let line = String::from_utf8_lossy(raw);
        let line = line.strip_suffix('\r').unwrap_or(&line);
        if let Some(hb) = parse_heartbeat(line) {
            return HbLine::Beat(hb);
        }
        if line.starts_with(HB_PREFIX) || line == HB_PREFIX.trim_end() {
            return HbLine::Malformed(line.to_string());
        }
        HbLine::Other(line.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let hb = Heartbeat { chunks_done: 3, n_chunks: 10, queries_done: 96, n_queries: 320 };
        assert_eq!(parse_heartbeat(&format_heartbeat(&hb)), Some(hb));
        let zero = Heartbeat::default();
        assert_eq!(parse_heartbeat(&format_heartbeat(&zero)), Some(zero));
    }

    #[test]
    fn non_heartbeat_lines_pass_through() {
        for line in
            ["", "HB", "HB 1 2 3", "HB 1 2 3 4 5", "HB a b c d", "placed 7 queries", "hb 1 2 3 4"]
        {
            assert_eq!(parse_heartbeat(line), None, "{line:?}");
        }
    }

    fn beat(c: usize, nc: usize, q: usize, nq: usize) -> HbLine {
        HbLine::Beat(Heartbeat { chunks_done: c, n_chunks: nc, queries_done: q, n_queries: nq })
    }

    #[test]
    fn scanner_reassembles_a_beat_split_across_reads() {
        let mut s = HeartbeatScanner::new();
        assert!(s.push(b"HB 1 ").is_empty());
        assert!(s.push(b"4 2").is_empty());
        assert_eq!(s.push(b"5 100\nHB 2 4 "), vec![beat(1, 4, 25, 100)]);
        assert_eq!(s.push(b"50 100\n"), vec![beat(2, 4, 50, 100)]);
        assert_eq!(s.finish(), None);
    }

    #[test]
    fn scanner_counts_junk_prefixed_and_truncated_hb_lines_as_malformed() {
        let mut s = HeartbeatScanner::new();
        // An interleaved writer glued its output onto the front of a
        // beat: the line is not a heartbeat and not silence — it is
        // ordinary (forwardable) output, and the *truncated* HB lines
        // are malformed beats.
        let lines = s.push(b"junkHB 1 4 25 100\nHB 1 4\nHB a b c d\nHB 2 4 50 100\n");
        assert_eq!(
            lines,
            vec![
                HbLine::Other("junkHB 1 4 25 100".into()),
                HbLine::Malformed("HB 1 4".into()),
                HbLine::Malformed("HB a b c d".into()),
                beat(2, 4, 50, 100),
            ]
        );
    }

    #[test]
    fn scanner_survives_invalid_utf8_and_keeps_decoding_later_beats() {
        let mut s = HeartbeatScanner::new();
        // 0xFF 0xFE is invalid UTF-8: `BufReader::lines` would error
        // here and the old reader died, losing the beat that follows.
        let mut bytes = b"binary \xFF\xFE garbage\n".to_vec();
        bytes.extend_from_slice(b"HB 3 4 75 100\n");
        let lines = s.push(&bytes);
        assert_eq!(lines.len(), 2);
        assert!(matches!(&lines[0], HbLine::Other(l) if l.contains("garbage")));
        assert_eq!(lines[1], beat(3, 4, 75, 100));
    }

    #[test]
    fn scanner_flushes_unterminated_tail_and_handles_crlf() {
        let mut s = HeartbeatScanner::new();
        assert_eq!(s.push(b"HB 1 2 3 4\r\n"), vec![beat(1, 2, 3, 4)]);
        assert!(s.push(b"HB 9 9 9").is_empty());
        assert_eq!(s.finish(), Some(HbLine::Malformed("HB 9 9 9".into())));
        assert_eq!(s.finish(), None);
    }

    #[test]
    fn scanner_caps_runaway_unterminated_lines() {
        let mut s = HeartbeatScanner::new();
        let lines = s.push(&vec![b'x'; (1 << 20) + 7]);
        // The capped fragment is flushed as its own (Other) line rather
        // than growing the buffer without bound.
        assert_eq!(lines.len(), 1);
        assert!(matches!(&lines[0], HbLine::Other(_)));
    }
}
