//! The worker→coordinator heartbeat line protocol.
//!
//! Workers run with `--out` (the jplace goes to a file), which frees
//! their stdout for a line-oriented progress channel: one `HB` line at
//! run start and one after every *durable* chunk — the beat is emitted
//! only once the chunk's journal frame is fsynced, so the coordinator's
//! view of `chunks_done` never runs ahead of what a resume can restore.
//! Anything on stdout that is not a heartbeat is forwarded verbatim to
//! the coordinator's stderr, so workers stay free to print.

/// One worker progress beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Heartbeat {
    /// Chunks durably journaled so far.
    pub chunks_done: usize,
    /// Total chunks in the worker's plan.
    pub n_chunks: usize,
    /// Queries covered by the durable chunks.
    pub queries_done: usize,
    /// Total queries assigned to the worker.
    pub n_queries: usize,
}

/// Line prefix that marks a heartbeat.
pub const HB_PREFIX: &str = "HB ";

/// Renders a heartbeat as its wire line (no trailing newline).
pub fn format_heartbeat(hb: &Heartbeat) -> String {
    format!("HB {} {} {} {}", hb.chunks_done, hb.n_chunks, hb.queries_done, hb.n_queries)
}

/// Parses a wire line; `None` for anything that is not a well-formed
/// heartbeat (such lines are ordinary worker output, not an error).
pub fn parse_heartbeat(line: &str) -> Option<Heartbeat> {
    let rest = line.strip_prefix(HB_PREFIX)?;
    let mut fields = rest.split_ascii_whitespace().map(|f| f.parse::<usize>().ok());
    let mut next = || fields.next().flatten();
    let hb = Heartbeat {
        chunks_done: next()?,
        n_chunks: next()?,
        queries_done: next()?,
        n_queries: next()?,
    };
    if fields.next().is_some() {
        return None;
    }
    Some(hb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let hb = Heartbeat { chunks_done: 3, n_chunks: 10, queries_done: 96, n_queries: 320 };
        assert_eq!(parse_heartbeat(&format_heartbeat(&hb)), Some(hb));
        let zero = Heartbeat::default();
        assert_eq!(parse_heartbeat(&format_heartbeat(&zero)), Some(zero));
    }

    #[test]
    fn non_heartbeat_lines_pass_through() {
        for line in
            ["", "HB", "HB 1 2 3", "HB 1 2 3 4 5", "HB a b c d", "placed 7 queries", "hb 1 2 3 4"]
        {
            assert_eq!(parse_heartbeat(line), None, "{line:?}");
        }
    }
}
