//! FASTA reading and writing.

use crate::alphabet::AlphabetKind;
use crate::error::SeqError;
use crate::sequence::Sequence;
use std::io::{BufRead, Write};

/// Parses FASTA text into sequences under the given alphabet.
///
/// Headers are truncated at the first whitespace (the conventional "id" /
/// "description" split); empty records are rejected.
pub fn parse(text: &str, kind: AlphabetKind) -> Result<Vec<Sequence>, SeqError> {
    read(text.as_bytes(), kind)
}

/// Reads FASTA from any buffered source.
pub fn read(reader: impl std::io::Read, kind: AlphabetKind) -> Result<Vec<Sequence>, SeqError> {
    let reader = std::io::BufReader::new(reader);
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    let mut body = String::new();
    let mut line_no = 0usize;

    let flush = |name: &mut Option<String>,
                 body: &mut String,
                 line_no: usize,
                 out: &mut Vec<Sequence>|
     -> Result<(), SeqError> {
        if let Some(n) = name.take() {
            if body.is_empty() {
                return Err(SeqError::Fasta {
                    line: line_no,
                    msg: format!("record {n:?} has no sequence data"),
                });
            }
            let seq = Sequence::from_text(n.clone(), kind, body).map_err(|e| match e {
                // Re-anchor residue errors to the record so a user can
                // find the offending line in a multi-record file.
                SeqError::BadCharacter { position, character } => SeqError::Fasta {
                    line: line_no,
                    msg: format!(
                        "record {n:?}: character {character:?} at sequence offset {position} \
                         is not in the alphabet"
                    ),
                },
                other => other,
            })?;
            out.push(seq);
            body.clear();
        }
        Ok(())
    };

    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            flush(&mut name, &mut body, line_no, &mut out)?;
            let id = header.split_whitespace().next().unwrap_or("");
            if id.is_empty() {
                return Err(SeqError::Fasta { line: line_no, msg: "empty header".into() });
            }
            name = Some(id.to_string());
        } else {
            if name.is_none() {
                return Err(SeqError::Fasta {
                    line: line_no,
                    msg: "sequence data before first '>' header".into(),
                });
            }
            body.push_str(line);
        }
    }
    flush(&mut name, &mut body, line_no, &mut out)?;
    if out.is_empty() {
        return Err(SeqError::Empty);
    }
    Ok(out)
}

/// Writes sequences as FASTA with the given line width (0 = single line).
pub fn write(
    writer: &mut impl Write,
    sequences: &[Sequence],
    line_width: usize,
) -> Result<(), SeqError> {
    for seq in sequences {
        writeln!(writer, ">{}", seq.name())?;
        let text = seq.to_text();
        if line_width == 0 {
            writeln!(writer, "{text}")?;
        } else {
            for chunk in text.as_bytes().chunks(line_width) {
                writer.write_all(chunk)?;
                writer.write_all(b"\n")?;
            }
        }
    }
    Ok(())
}

/// Serializes sequences to a FASTA string (convenience for tests and
/// dataset dumps).
pub fn to_string(sequences: &[Sequence], line_width: usize) -> String {
    let mut buf = Vec::new();
    write(&mut buf, sequences, line_width).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = ">a desc here\nACGT\n>b\nTG\nCA\n";
        let seqs = parse(text, AlphabetKind::Dna).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].name(), "a");
        assert_eq!(seqs[0].to_text(), "ACGT");
        assert_eq!(seqs[1].name(), "b");
        assert_eq!(seqs[1].to_text(), "TGCA");
    }

    #[test]
    fn parse_skips_blank_lines() {
        let seqs = parse(">a\n\nAC\n\nGT\n", AlphabetKind::Dna).unwrap();
        assert_eq!(seqs[0].to_text(), "ACGT");
    }

    #[test]
    fn parse_rejects_headerless_data() {
        assert!(parse("ACGT\n", AlphabetKind::Dna).is_err());
    }

    #[test]
    fn parse_rejects_empty_record() {
        assert!(parse(">a\n>b\nACGT\n", AlphabetKind::Dna).is_err());
        assert!(parse(">a\nACGT\n>b\n", AlphabetKind::Dna).is_err());
    }

    #[test]
    fn parse_rejects_empty_input() {
        assert!(matches!(parse("", AlphabetKind::Dna), Err(SeqError::Empty)));
    }

    #[test]
    fn round_trip_with_wrapping() {
        let seqs = vec![
            Sequence::from_text("x", AlphabetKind::Dna, "ACGTACGTACGT").unwrap(),
            Sequence::from_text("y", AlphabetKind::Dna, "TTTT").unwrap(),
        ];
        let text = to_string(&seqs, 5);
        let parsed = parse(&text, AlphabetKind::Dna).unwrap();
        assert_eq!(parsed, seqs);
    }

    #[test]
    fn protein_fasta() {
        let seqs = parse(">p\nMKVL\n", AlphabetKind::Protein).unwrap();
        assert_eq!(seqs[0].to_text(), "MKVL");
    }

    #[test]
    fn non_alphabet_residue_names_record_and_offset() {
        match parse(">ok\nACGT\n>bad\nACXT\n", AlphabetKind::Dna) {
            Err(SeqError::Fasta { line, msg }) => {
                assert_eq!(line, 4);
                assert!(msg.contains("\"bad\""), "{msg}");
                assert!(msg.contains("'X'"), "{msg}");
                assert!(msg.contains("offset 2"), "{msg}");
            }
            other => panic!("expected Fasta error, got {other:?}"),
        }
    }

    #[test]
    fn empty_header_rejected_with_line() {
        match parse(">a\nAC\n>\nGT\n", AlphabetKind::Dna) {
            Err(SeqError::Fasta { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Fasta error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_trailing_record_rejected() {
        // A file that ends right after a header (e.g. a cut-short
        // download) must fail, not yield a zero-length sequence.
        match parse(">a\nACGT\n>trailing\n", AlphabetKind::Dna) {
            Err(SeqError::Fasta { msg, .. }) => assert!(msg.contains("no sequence data")),
            other => panic!("expected Fasta error, got {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let seqs = parse(">a\r\nAC\r\nGT\r\n", AlphabetKind::Dna).unwrap();
        assert_eq!(seqs[0].to_text(), "ACGT");
    }

    #[test]
    fn crlf_and_lowercase_mix_within_one_record() {
        // Real-world files mix Windows line endings with soft-masked
        // (lowercase) residues, sometimes inside a single record with
        // Unix-ended lines. The decoded codes must match the clean
        // uppercase LF-only equivalent exactly — no stray '\r' reaching
        // the alphabet decoder, no case sensitivity.
        let messy = ">q1 soft-masked\r\nacG\nT\r\ntgCA\r\n>q2\ngggg\n";
        let clean = ">q1\nACGTTGCA\n>q2\nGGGG\n";
        let a = parse(messy, AlphabetKind::Dna).unwrap();
        let b = parse(clean, AlphabetKind::Dna).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].name(), "q1");
        assert_eq!(a[0].codes(), b[0].codes());
        assert_eq!(a[1].codes(), b[1].codes());
        assert_eq!(a[0].to_text(), "ACGTTGCA");
    }
}
