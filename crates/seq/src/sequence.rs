//! A single named, encoded sequence.

use crate::alphabet::{Alphabet, AlphabetKind};
use crate::error::SeqError;

/// A named molecular sequence, stored as alphabet codes (see
/// [`Alphabet`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    name: String,
    kind: AlphabetKind,
    codes: Vec<u8>,
}

impl Sequence {
    /// Encodes `text` under the given alphabet.
    pub fn from_text(
        name: impl Into<String>,
        kind: AlphabetKind,
        text: &str,
    ) -> Result<Self, SeqError> {
        let codes = kind.alphabet().encode_str(text)?;
        Ok(Sequence { name: name.into(), kind, codes })
    }

    /// Wraps pre-encoded codes. Codes are validated against the alphabet's
    /// code range.
    pub fn from_codes(
        name: impl Into<String>,
        kind: AlphabetKind,
        codes: Vec<u8>,
    ) -> Result<Self, SeqError> {
        let n_codes = kind.alphabet().n_codes() as u8;
        if let Some(pos) = codes.iter().position(|&c| c >= n_codes) {
            return Err(SeqError::BadCharacter { position: pos, character: codes[pos] as char });
        }
        Ok(Sequence { name: name.into(), kind, codes })
    }

    /// The sequence name (FASTA header without `>`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The alphabet this sequence is encoded under.
    #[inline]
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// The matching alphabet instance.
    #[inline]
    pub fn alphabet(&self) -> &'static Alphabet {
        self.kind.alphabet()
    }

    /// The encoded characters.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Sequence length in characters.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the sequence has no characters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Decodes back to text.
    pub fn to_text(&self) -> String {
        self.alphabet().decode_str(&self.codes)
    }

    /// Fraction of characters that are concrete (non-ambiguous) states.
    pub fn concrete_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        let alphabet = self.alphabet();
        let concrete = self.codes.iter().filter(|&&c| alphabet.is_concrete(c)).count();
        concrete as f64 / self.codes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let s = Sequence::from_text("q1", AlphabetKind::Dna, "ACGTN").unwrap();
        assert_eq!(s.name(), "q1");
        assert_eq!(s.len(), 5);
        assert_eq!(s.to_text(), "ACGTN");
    }

    #[test]
    fn codes_validated() {
        assert!(Sequence::from_codes("x", AlphabetKind::Dna, vec![0, 1, 2, 3]).is_ok());
        assert!(Sequence::from_codes("x", AlphabetKind::Dna, vec![0, 200]).is_err());
    }

    #[test]
    fn concrete_fraction() {
        let s = Sequence::from_text("q", AlphabetKind::Dna, "ACG-").unwrap();
        assert!((s.concrete_fraction() - 0.75).abs() < 1e-12);
    }
}
