//! Error type for sequence handling.

use std::fmt;

/// Errors produced while encoding, parsing, or aligning sequences.
#[derive(Debug)]
pub enum SeqError {
    /// A character outside the alphabet was encountered.
    BadCharacter {
        /// Offset of the character in its sequence.
        position: usize,
        /// The rejected character.
        character: char,
    },
    /// Sequences in an alignment have differing lengths.
    RaggedAlignment {
        /// The offending sequence's name.
        name: String,
        /// The alignment's column count.
        expected: usize,
        /// The sequence's length.
        found: usize,
    },
    /// A sequence name occurs more than once in an alignment.
    DuplicateName(String),
    /// FASTA text was malformed.
    Fasta {
        /// 1-based line number of the error.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// An alignment was empty or otherwise unusable.
    Empty,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::BadCharacter { position, character } => {
                write!(f, "invalid character {character:?} at position {position}")
            }
            SeqError::RaggedAlignment { name, expected, found } => write!(
                f,
                "sequence {name:?} has length {found}, but the alignment is {expected} columns"
            ),
            SeqError::DuplicateName(name) => write!(f, "duplicate sequence name {name:?}"),
            SeqError::Fasta { line, msg } => write!(f, "FASTA parse error at line {line}: {msg}"),
            SeqError::Empty => write!(f, "empty alignment"),
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e)
    }
}
