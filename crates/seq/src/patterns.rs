//! Site-pattern compression.
//!
//! Alignment columns that are identical across all rows contribute the same
//! per-site likelihood, so they are computed once and weighted by their
//! multiplicity. All CLV and lookup-table sizes downstream are proportional
//! to the number of *patterns*, not raw sites; the paper's `sites` numbers
//! are alignment widths, and compression is what real libpll-2 applies
//! before allocating.

use crate::error::SeqError;
use crate::msa::Msa;
use std::collections::HashMap;

/// An alignment compressed to unique columns with multiplicities.
#[derive(Debug, Clone)]
pub struct PatternMsa {
    /// Per-row encoded characters over *patterns*: `data[row * n_patterns +
    /// p]`.
    data: Vec<u8>,
    n_rows: usize,
    n_patterns: usize,
    /// Pattern multiplicities; sums to the original site count.
    weights: Vec<u32>,
    /// For each original site, which pattern it maps to.
    site_to_pattern: Vec<u32>,
    /// Row names, in the original MSA order.
    names: Vec<String>,
}

impl PatternMsa {
    /// Number of unique patterns.
    #[inline]
    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Original (uncompressed) site count.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.site_to_pattern.len()
    }

    /// Pattern multiplicities.
    #[inline]
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Mapping original site → pattern index.
    #[inline]
    pub fn site_to_pattern(&self) -> &[u32] {
        &self.site_to_pattern
    }

    /// The compressed character row for one taxon.
    #[inline]
    pub fn row(&self, row: usize) -> &[u8] {
        &self.data[row * self.n_patterns..(row + 1) * self.n_patterns]
    }

    /// Row names in original order.
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Looks up a row index by name (linear; do the mapping once).
    pub fn row_by_name(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Approximate heap footprint in bytes (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.data.len()
            + self.weights.len() * 4
            + self.site_to_pattern.len() * 4
            + self.names.iter().map(|n| n.len()).sum::<usize>()
    }
}

/// Compresses an alignment into unique site patterns.
pub fn compress(msa: &Msa) -> Result<PatternMsa, SeqError> {
    let n_rows = msa.n_rows();
    let n_sites = msa.n_sites();
    if n_rows == 0 || n_sites == 0 {
        return Err(SeqError::Empty);
    }
    let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut order: Vec<Vec<u8>> = Vec::new();
    let mut weights: Vec<u32> = Vec::new();
    let mut site_to_pattern = Vec::with_capacity(n_sites);
    let mut col = Vec::with_capacity(n_rows);
    for site in 0..n_sites {
        msa.column(site, &mut col);
        let p = match index.get(&col) {
            Some(&p) => p,
            None => {
                let p = order.len() as u32;
                index.insert(col.clone(), p);
                order.push(col.clone());
                weights.push(0);
                p
            }
        };
        weights[p as usize] += 1;
        site_to_pattern.push(p);
    }
    let n_patterns = order.len();
    // Transpose: pattern-major columns into row-major storage.
    let mut data = vec![0u8; n_rows * n_patterns];
    for (p, col) in order.iter().enumerate() {
        for (row, &code) in col.iter().enumerate() {
            data[row * n_patterns + p] = code;
        }
    }
    Ok(PatternMsa {
        data,
        n_rows,
        n_patterns,
        weights,
        site_to_pattern,
        names: msa.rows().iter().map(|r| r.name().to_string()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::AlphabetKind;
    use crate::sequence::Sequence;

    fn msa(rows: &[(&str, &str)]) -> Msa {
        Msa::new(
            rows.iter()
                .map(|(n, t)| Sequence::from_text(*n, AlphabetKind::Dna, t).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn identical_columns_collapse() {
        // Columns: ACA / ACA / GTG -> patterns {ACA(x2 at sites 0,1... wait)
        let m = msa(&[("a", "AAG"), ("b", "CCT"), ("c", "AAG")]);
        let p = compress(&m).unwrap();
        assert_eq!(p.n_patterns(), 2);
        assert_eq!(p.n_sites(), 3);
        assert_eq!(p.weights(), &[2, 1]);
        assert_eq!(p.site_to_pattern(), &[0, 0, 1]);
        assert_eq!(p.row(0), &[0, 2]); // A, G
        assert_eq!(p.row(1), &[1, 3]); // C, T
    }

    #[test]
    fn weights_sum_to_sites() {
        let m = msa(&[("a", "ACGTACGT"), ("b", "ACGTTGCA"), ("c", "AAAACCCC")]);
        let p = compress(&m).unwrap();
        let total: u32 = p.weights().iter().sum();
        assert_eq!(total as usize, m.n_sites());
        assert!(p.n_patterns() <= m.n_sites());
    }

    #[test]
    fn all_unique_columns() {
        let m = msa(&[("a", "ACGT"), ("b", "AAAA")]);
        let p = compress(&m).unwrap();
        assert_eq!(p.n_patterns(), 4);
        assert!(p.weights().iter().all(|&w| w == 1));
    }

    #[test]
    fn ambiguity_distinguishes_patterns() {
        // A vs N in row b must not collapse.
        let m = msa(&[("a", "AA"), ("b", "AN")]);
        let p = compress(&m).unwrap();
        assert_eq!(p.n_patterns(), 2);
    }

    #[test]
    fn site_to_pattern_is_consistent() {
        let m = msa(&[("a", "ACACAC"), ("b", "GTGTGT")]);
        let p = compress(&m).unwrap();
        assert_eq!(p.n_patterns(), 2);
        for site in 0..m.n_sites() {
            let pat = p.site_to_pattern()[site] as usize;
            for row in 0..m.n_rows() {
                assert_eq!(p.row(row)[pat], m.row(row).codes()[site]);
            }
        }
    }
}
