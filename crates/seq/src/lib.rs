//! Molecular sequences and alignments.
//!
//! Provides the data substrate for likelihood computation:
//!
//! * [`Alphabet`] — nucleotide (4-state) and amino-acid (20-state)
//!   character coding, including IUPAC ambiguity codes mapped to multi-state
//!   tip vectors;
//! * [`Sequence`] / [`Msa`] — encoded sequences and multiple sequence
//!   alignments;
//! * [`fasta`] / [`phylip`] — FASTA and PHYLIP reading and writing;
//! * [`patterns`] — site-pattern compression: identical alignment columns
//!   are collapsed into one pattern with a weight, the standard trick that
//!   makes wide alignments tractable and that all CLV sizes in this
//!   workspace are expressed in.

pub mod alphabet;
pub mod error;
pub mod fasta;
pub mod msa;
pub mod patterns;
pub mod phylip;
pub mod sequence;

pub use alphabet::{Alphabet, AlphabetKind};
pub use error::SeqError;
pub use msa::Msa;
pub use patterns::{compress, PatternMsa};
pub use sequence::Sequence;
