//! Multiple sequence alignments.

use crate::alphabet::AlphabetKind;
use crate::error::SeqError;
use crate::sequence::Sequence;
use std::collections::HashMap;

/// A rectangular multiple sequence alignment: every row has the same number
/// of columns ("sites").
#[derive(Debug, Clone)]
pub struct Msa {
    kind: AlphabetKind,
    n_sites: usize,
    rows: Vec<Sequence>,
    by_name: HashMap<String, usize>,
}

impl Msa {
    /// Builds an alignment from rows, checking rectangularity, non-emptiness,
    /// alphabet consistency, and name uniqueness.
    pub fn new(rows: Vec<Sequence>) -> Result<Self, SeqError> {
        let first = rows.first().ok_or(SeqError::Empty)?;
        let kind = first.kind();
        let n_sites = first.len();
        if n_sites == 0 {
            return Err(SeqError::Empty);
        }
        let mut by_name = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if row.kind() != kind {
                return Err(SeqError::Fasta {
                    line: 0,
                    msg: format!("row {:?} uses a different alphabet", row.name()),
                });
            }
            if row.len() != n_sites {
                return Err(SeqError::RaggedAlignment {
                    name: row.name().to_string(),
                    expected: n_sites,
                    found: row.len(),
                });
            }
            if by_name.insert(row.name().to_string(), i).is_some() {
                return Err(SeqError::DuplicateName(row.name().to_string()));
            }
        }
        Ok(Msa { kind, n_sites, rows, by_name })
    }

    /// The alphabet of the alignment.
    #[inline]
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// Number of columns.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of rows (taxa).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// All rows in insertion order.
    #[inline]
    pub fn rows(&self) -> &[Sequence] {
        &self.rows
    }

    /// A row by index.
    #[inline]
    pub fn row(&self, i: usize) -> &Sequence {
        &self.rows[i]
    }

    /// Looks up a row index by sequence name.
    pub fn row_by_name(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Copies column `site` into `out` (one code per row).
    pub fn column(&self, site: usize, out: &mut Vec<u8>) {
        out.clear();
        out.extend(self.rows.iter().map(|r| r.codes()[site]));
    }

    /// Approximate heap footprint in bytes (used by memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.len() + r.name().len() + std::mem::size_of::<Sequence>())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(name: &str, text: &str) -> Sequence {
        Sequence::from_text(name, AlphabetKind::Dna, text).unwrap()
    }

    #[test]
    fn rectangular_ok() {
        let m = Msa::new(vec![seq("a", "ACGT"), seq("b", "TGCA")]).unwrap();
        assert_eq!(m.n_sites(), 4);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row_by_name("b"), Some(1));
        assert_eq!(m.row_by_name("c"), None);
    }

    #[test]
    fn ragged_rejected() {
        let err = Msa::new(vec![seq("a", "ACGT"), seq("b", "TGC")]).unwrap_err();
        assert!(matches!(err, SeqError::RaggedAlignment { .. }));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(Msa::new(vec![]), Err(SeqError::Empty)));
        assert!(Msa::new(vec![seq("a", "")]).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Msa::new(vec![seq("a", "AC"), seq("a", "GT")]).unwrap_err();
        assert!(matches!(err, SeqError::DuplicateName(_)));
    }

    #[test]
    fn column_extraction() {
        let m = Msa::new(vec![seq("a", "ACGT"), seq("b", "TGCA")]).unwrap();
        let mut col = Vec::new();
        m.column(0, &mut col);
        assert_eq!(col, vec![0, 3]); // A, T
        m.column(3, &mut col);
        assert_eq!(col, vec![3, 0]); // T, A
    }
}
