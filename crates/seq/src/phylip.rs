//! PHYLIP alignment reading and writing.
//!
//! The other interchange format reference alignments commonly arrive in
//! (RAxML's native input). Both sequential and interleaved layouts are
//! read; writing uses the relaxed sequential layout (names of any length,
//! terminated by whitespace).

use crate::alphabet::AlphabetKind;
use crate::error::SeqError;
use crate::msa::Msa;
use crate::sequence::Sequence;

/// Parses PHYLIP text (sequential or interleaved, relaxed names) into an
/// alignment.
pub fn parse(text: &str, kind: AlphabetKind) -> Result<Msa, SeqError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(SeqError::Empty)?;
    let mut parts = header.split_whitespace();
    let n_taxa: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| SeqError::Fasta { line: 1, msg: "bad PHYLIP header (taxa count)".into() })?;
    let n_sites: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| SeqError::Fasta { line: 1, msg: "bad PHYLIP header (site count)".into() })?;
    if n_taxa == 0 || n_sites == 0 {
        return Err(SeqError::Empty);
    }

    let mut names: Vec<String> = Vec::with_capacity(n_taxa);
    let mut bodies: Vec<String> = vec![String::new(); n_taxa];
    let mut row = 0usize;
    for (line_no, line) in lines {
        let line = line.trim_end();
        if names.len() < n_taxa {
            // First block: leading name, then sequence characters.
            let mut parts = line.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| SeqError::Fasta { line: line_no + 1, msg: "missing name".into() })?
                .to_string();
            names.push(name);
            let idx = names.len() - 1;
            for p in parts {
                bodies[idx].push_str(p);
            }
        } else {
            // Interleaved continuation blocks: rows cycle in order.
            for p in line.split_whitespace() {
                bodies[row].push_str(p);
            }
            row = (row + 1) % n_taxa;
        }
    }
    if names.len() != n_taxa {
        return Err(SeqError::Fasta {
            line: 0,
            msg: format!("expected {n_taxa} taxa, found {}", names.len()),
        });
    }
    let mut rows = Vec::with_capacity(n_taxa);
    for (name, body) in names.into_iter().zip(bodies) {
        let seq = Sequence::from_text(&name, kind, &body)?;
        if seq.len() != n_sites {
            return Err(SeqError::RaggedAlignment { name, expected: n_sites, found: seq.len() });
        }
        rows.push(seq);
    }
    Msa::new(rows)
}

/// Writes an alignment in relaxed sequential PHYLIP.
pub fn to_string(msa: &Msa) -> String {
    let mut out = format!("{} {}\n", msa.n_rows(), msa.n_sites());
    for row in msa.rows() {
        out.push_str(row.name());
        out.push(' ');
        out.push_str(&row.to_text());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_round_trip() {
        let text = "3 8\ntaxA ACGTACGT\ntaxB ACGTTGCA\ntaxC AAAACCCC\n";
        let msa = parse(text, AlphabetKind::Dna).unwrap();
        assert_eq!(msa.n_rows(), 3);
        assert_eq!(msa.n_sites(), 8);
        assert_eq!(msa.row(1).to_text(), "ACGTTGCA");
        let again = parse(&to_string(&msa), AlphabetKind::Dna).unwrap();
        assert_eq!(again.row(2).to_text(), msa.row(2).to_text());
    }

    #[test]
    fn interleaved_layout() {
        let text = "2 8\nA ACGT\nB TTTT\nACGT\nCCCC\n";
        let msa = parse(text, AlphabetKind::Dna).unwrap();
        assert_eq!(msa.row(0).to_text(), "ACGTACGT");
        assert_eq!(msa.row(1).to_text(), "TTTTCCCC");
    }

    #[test]
    fn spaces_inside_sequences() {
        let text = "1 8\nx ACGT ACGT\n";
        // 1 taxon is below the MSA minimum? Msa::new allows 1 row; the
        // tree layer is what needs ≥3. Check parsing only.
        let msa = parse(text, AlphabetKind::Dna).unwrap();
        assert_eq!(msa.row(0).to_text(), "ACGTACGT");
    }

    #[test]
    fn header_errors() {
        assert!(parse("", AlphabetKind::Dna).is_err());
        assert!(parse("x y\nA ACGT\n", AlphabetKind::Dna).is_err());
        assert!(parse("0 4\n", AlphabetKind::Dna).is_err());
    }

    #[test]
    fn wrong_length_rejected() {
        let text = "2 8\nA ACGTACGT\nB ACGT\n";
        let err = parse(text, AlphabetKind::Dna).unwrap_err();
        assert!(matches!(err, SeqError::RaggedAlignment { .. }));
    }

    #[test]
    fn missing_taxa_rejected() {
        let text = "3 4\nA ACGT\nB ACGT\n";
        // Parses two names then treats nothing as continuation; the count
        // check fires.
        assert!(parse(text, AlphabetKind::Dna).is_err());
    }

    #[test]
    fn protein_phylip() {
        let text = "2 4\np1 MKVL\np2 MRVL\n";
        let msa = parse(text, AlphabetKind::Protein).unwrap();
        assert_eq!(msa.kind(), AlphabetKind::Protein);
    }
}
