//! Character-state alphabets.
//!
//! A sequence character is stored as a `u8` *code*. Codes `0..states` are
//! concrete states; higher codes are ambiguity codes (including gaps and
//! unknowns), each of which expands to a bitmask over the concrete states.
//! Likelihood kernels turn a code into a 0/1 tip vector via
//! [`Alphabet::state_mask`], so ambiguity handling costs nothing extra in
//! the inner loop.

use crate::error::SeqError;

/// Which biological alphabet a dataset uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlphabetKind {
    /// Nucleotides: A, C, G, T(/U) plus IUPAC ambiguity codes.
    Dna,
    /// Amino acids: the 20 standard residues plus B/Z/J/X ambiguities.
    Protein,
}

impl AlphabetKind {
    /// The matching alphabet instance.
    pub fn alphabet(self) -> &'static Alphabet {
        match self {
            AlphabetKind::Dna => dna(),
            AlphabetKind::Protein => protein(),
        }
    }

    /// Number of concrete states (4 or 20).
    pub fn states(self) -> usize {
        match self {
            AlphabetKind::Dna => 4,
            AlphabetKind::Protein => 20,
        }
    }
}

impl std::fmt::Display for AlphabetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphabetKind::Dna => write!(f, "NT"),
            AlphabetKind::Protein => write!(f, "AA"),
        }
    }
}

/// A character-state alphabet with ambiguity support.
pub struct Alphabet {
    kind: AlphabetKind,
    states: usize,
    /// Printable character per code (concrete states first).
    chars: Vec<u8>,
    /// Bitmask over concrete states per code.
    masks: Vec<u32>,
    /// ASCII byte (uppercased) → code, 255 = invalid.
    decode: [u8; 256],
}

impl Alphabet {
    fn build(kind: AlphabetKind, states: usize, table: &[(u8, u32)]) -> Alphabet {
        let mut chars = Vec::with_capacity(table.len());
        let mut masks = Vec::with_capacity(table.len());
        let mut decode = [255u8; 256];
        for (code, &(ch, mask)) in table.iter().enumerate() {
            chars.push(ch);
            masks.push(mask);
            decode[ch.to_ascii_uppercase() as usize] = code as u8;
            decode[ch.to_ascii_lowercase() as usize] = code as u8;
        }
        Alphabet { kind, states, chars, masks, decode }
    }

    /// Which biological alphabet this is.
    #[inline]
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// Number of concrete states.
    #[inline]
    pub fn states(&self) -> usize {
        self.states
    }

    /// Total number of codes (concrete + ambiguity).
    #[inline]
    pub fn n_codes(&self) -> usize {
        self.chars.len()
    }

    /// The code of the fully-ambiguous "unknown" character (N or X); also
    /// used for gaps, which carry no signal in the likelihood model.
    #[inline]
    pub fn unknown_code(&self) -> u8 {
        // By construction the fully-ambiguous code is the last entry whose
        // mask covers all states; we place it right after the concrete
        // states for both alphabets.
        self.states as u8
    }

    /// Encodes one ASCII character, or `None` if it is not in the alphabet.
    #[inline]
    pub fn encode(&self, ch: u8) -> Option<u8> {
        let code = self.decode[ch as usize];
        (code != 255).then_some(code)
    }

    /// Encodes a full string, mapping gaps (`-`, `.`, `?`) to the unknown
    /// code and rejecting anything else that is not in the alphabet.
    pub fn encode_str(&self, text: &str) -> Result<Vec<u8>, SeqError> {
        let mut out = Vec::with_capacity(text.len());
        for (i, &b) in text.as_bytes().iter().enumerate() {
            if b.is_ascii_whitespace() {
                continue;
            }
            if matches!(b, b'-' | b'.' | b'?') {
                out.push(self.unknown_code());
                continue;
            }
            match self.encode(b) {
                Some(code) => out.push(code),
                None => return Err(SeqError::BadCharacter { position: i, character: b as char }),
            }
        }
        Ok(out)
    }

    /// The printable character for a code.
    #[inline]
    pub fn decode_char(&self, code: u8) -> char {
        self.chars[code as usize] as char
    }

    /// Decodes a full code sequence back to text.
    pub fn decode_str(&self, codes: &[u8]) -> String {
        codes.iter().map(|&c| self.decode_char(c)).collect()
    }

    /// Bitmask over concrete states for a code: bit `i` set means state `i`
    /// is compatible with the observed character.
    #[inline]
    pub fn state_mask(&self, code: u8) -> u32 {
        self.masks[code as usize]
    }

    /// True if the code is a concrete (unambiguous) state.
    #[inline]
    pub fn is_concrete(&self, code: u8) -> bool {
        (code as usize) < self.states
    }

    /// Writes the 0/1 tip vector for `code` into `out` (`out.len() ==
    /// states`).
    pub fn tip_vector(&self, code: u8, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.states);
        let mask = self.state_mask(code);
        for (i, v) in out.iter_mut().enumerate() {
            *v = ((mask >> i) & 1) as f64;
        }
    }
}

fn dna_table() -> Vec<(u8, u32)> {
    const A: u32 = 1 << 0;
    const C: u32 = 1 << 1;
    const G: u32 = 1 << 2;
    const T: u32 = 1 << 3;
    vec![
        (b'A', A),
        (b'C', C),
        (b'G', G),
        (b'T', T),
        // Ambiguities; `N` (all states) first so `unknown_code == 4`.
        (b'N', A | C | G | T),
        (b'U', T),
        (b'R', A | G),
        (b'Y', C | T),
        (b'S', C | G),
        (b'W', A | T),
        (b'K', G | T),
        (b'M', A | C),
        (b'B', C | G | T),
        (b'D', A | G | T),
        (b'H', A | C | T),
        (b'V', A | C | G),
    ]
}

fn protein_table() -> Vec<(u8, u32)> {
    // Canonical residue order used throughout this workspace:
    // A R N D C Q E G H I L K M F P S T W Y V
    let order = b"ARNDCQEGHILKMFPSTWYV";
    let mut table: Vec<(u8, u32)> =
        order.iter().enumerate().map(|(i, &ch)| (ch, 1u32 << i)).collect();
    let idx = |ch: u8| order.iter().position(|&c| c == ch).unwrap();
    let all: u32 = (1 << 20) - 1;
    table.push((b'X', all)); // unknown_code == 20
    table.push((b'B', (1 << idx(b'N')) | (1 << idx(b'D'))));
    table.push((b'Z', (1 << idx(b'Q')) | (1 << idx(b'E'))));
    table.push((b'J', (1 << idx(b'I')) | (1 << idx(b'L'))));
    table
}

/// The shared nucleotide alphabet.
pub fn dna() -> &'static Alphabet {
    use std::sync::OnceLock;
    static DNA: OnceLock<Alphabet> = OnceLock::new();
    DNA.get_or_init(|| Alphabet::build(AlphabetKind::Dna, 4, &dna_table()))
}

/// The shared amino-acid alphabet.
pub fn protein() -> &'static Alphabet {
    use std::sync::OnceLock;
    static AA: OnceLock<Alphabet> = OnceLock::new();
    AA.get_or_init(|| Alphabet::build(AlphabetKind::Protein, 20, &protein_table()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_concrete_round_trip() {
        let a = dna();
        for (i, ch) in "ACGT".chars().enumerate() {
            let code = a.encode(ch as u8).unwrap();
            assert_eq!(code, i as u8);
            assert!(a.is_concrete(code));
            assert_eq!(a.decode_char(code), ch);
            assert_eq!(a.state_mask(code), 1 << i);
        }
    }

    #[test]
    fn dna_ambiguity_masks() {
        let a = dna();
        let n = a.encode(b'N').unwrap();
        assert_eq!(a.state_mask(n), 0b1111);
        assert_eq!(n, a.unknown_code());
        let r = a.encode(b'R').unwrap();
        assert_eq!(a.state_mask(r), 0b0101); // A|G
        let u = a.encode(b'U').unwrap();
        assert_eq!(a.state_mask(u), 0b1000); // T
    }

    #[test]
    fn dna_lowercase_and_gaps() {
        let a = dna();
        let codes = a.encode_str("acgt-N.?u").unwrap();
        assert_eq!(codes[0], 0);
        assert_eq!(codes[3], 3);
        assert_eq!(codes[4], a.unknown_code());
        assert_eq!(codes[5], a.unknown_code());
        assert_eq!(codes[6], a.unknown_code());
        assert_eq!(codes[7], a.unknown_code());
        assert_eq!(a.state_mask(codes[8]), 0b1000);
    }

    #[test]
    fn dna_rejects_junk() {
        let err = dna().encode_str("ACGTQ").unwrap_err();
        assert!(matches!(err, SeqError::BadCharacter { character: 'Q', .. }));
    }

    #[test]
    fn protein_round_trip() {
        let a = protein();
        assert_eq!(a.states(), 20);
        let text = "ARNDCQEGHILKMFPSTWYV";
        let codes = a.encode_str(text).unwrap();
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(c as usize, i);
        }
        assert_eq!(a.decode_str(&codes), text);
    }

    #[test]
    fn protein_ambiguities() {
        let a = protein();
        let x = a.encode(b'X').unwrap();
        assert_eq!(x, a.unknown_code());
        assert_eq!(a.state_mask(x).count_ones(), 20);
        let b = a.encode(b'B').unwrap();
        assert_eq!(a.state_mask(b).count_ones(), 2);
        let z = a.encode(b'Z').unwrap();
        assert_eq!(a.state_mask(z).count_ones(), 2);
    }

    #[test]
    fn tip_vectors() {
        let a = dna();
        let mut v = [0.0; 4];
        a.tip_vector(2, &mut v); // G
        assert_eq!(v, [0.0, 0.0, 1.0, 0.0]);
        a.tip_vector(a.encode(b'Y').unwrap(), &mut v); // C|T
        assert_eq!(v, [0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn whitespace_skipped() {
        let codes = dna().encode_str("AC GT\n").unwrap();
        assert_eq!(codes.len(), 4);
    }
}
