//! Active Management of CLVs (AMC) — the paper's core contribution.
//!
//! Likelihood-based placement wants `3·(n − 2)` conditional likelihood
//! vectors resident at once; this crate lets an engine run with any number
//! of physical **slots** from `⌈log₂ n⌉ + 2` up to the full set, trading
//! recomputation time for memory exactly as described in Barbera &
//! Stamatakis (IPPS 2021):
//!
//! * [`slots::SlotManager`] — the two index maps (`clv → slot`,
//!   `slot → clv`) with sentinel states, pin counts, and hit/miss/eviction
//!   statistics;
//! * [`strategy`] — the replacement-strategy interface (the paper's
//!   callback customization point) with the default
//!   recomputation-cost-based policy plus LRU/MRU/FIFO/random for
//!   ablation;
//! * [`arena::SlotArena`] — slot-backed CLV + scaler storage with safe
//!   disjoint target/children access for the kernels, plus the
//!   concurrent lease API ([`arena::ReadLease`]/[`arena::ComputeLease`]):
//!   the manager and arena are internally synchronized (`&self` API,
//!   lock-free residency lookups, per-slot publish latches), so distinct
//!   CLVs can be recomputed concurrently while readers of other slots
//!   never block — see the module docs and DESIGN.md §6 for the lock
//!   order and deadlock-freedom argument;
//! * [`fpa`] — the slot-constrained Felsenstein traversal planner: given a
//!   set of target CLVs it emits a pin-correct compute schedule,
//!   guaranteed to succeed whenever `⌈log₂ n⌉ + 2` slots are unpinned;
//! * [`budget`] — deterministic memory accounting and the `--maxmem`-style
//!   budget planner that decides slot counts and optional structures.

pub mod arena;
pub mod budget;
pub mod cancel;
pub mod error;
pub mod fpa;
pub mod retry;
pub mod slots;
pub mod strategy;
pub mod tier;

pub use arena::{ComputeLease, Lease, ReadLease, SlotArena};
pub use budget::{MemCategory, MemoryTracker};
pub use cancel::CancelToken;
pub use error::AmcError;
pub use fpa::{ensure_resident, DepSource, FpaOp, ResidentSet};
pub use retry::Backoff;
pub use slots::{Acquire, ClvKey, SlotId, SlotManager, SlotStats};
pub use strategy::{
    CostBased, Fifo, Lru, Mru, RandomEvict, ReplacementStrategy, StrategyKind, VictimView,
};
pub use tier::{StorageTier, TierConfig, TierKind, TierStats, TieredStore};
