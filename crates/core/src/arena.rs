//! Slot-backed CLV storage.
//!
//! The arena owns one flat `f64` buffer holding `n_slots` CLVs plus the
//! matching per-pattern scaler vectors, and couples them with a
//! [`SlotManager`]. A Felsenstein step needs simultaneous access to the
//! (mutable) target slot and the (shared) child slots; [`SlotArena::
//! compute_view`] hands these out as disjoint slices with a runtime
//! distinctness check.

use crate::error::AmcError;
use crate::slots::{Acquire, ClvKey, SlotId, SlotManager, SlotStats};
use crate::strategy::ReplacementStrategy;

/// Slot storage + slot manager for one CLV shape.
pub struct SlotArena {
    mgr: SlotManager,
    clv_len: usize,
    patterns: usize,
    data: Vec<f64>,
    scales: Vec<u32>,
}

/// Disjoint access to a compute target and its resident children.
pub struct ComputeView<'a> {
    /// The target CLV buffer to fill.
    pub target_clv: &'a mut [f64],
    /// The target's per-pattern scaler counts to fill.
    pub target_scale: &'a mut [u32],
    /// `(clv, scale)` of each requested child slot, in request order.
    pub children: Vec<(&'a [f64], &'a [u32])>,
}

impl SlotArena {
    /// Allocates an arena of `n_slots` CLVs of `clv_len` entries
    /// (`patterns` scaler counts each) over `n_clvs` logical keys.
    pub fn new(
        n_clvs: usize,
        n_slots: usize,
        clv_len: usize,
        patterns: usize,
        strategy: Box<dyn ReplacementStrategy>,
    ) -> Self {
        SlotArena {
            mgr: SlotManager::new(n_clvs, n_slots, strategy),
            clv_len,
            patterns,
            data: vec![0.0; n_slots * clv_len],
            scales: vec![0; n_slots * patterns],
        }
    }

    /// The slot manager (for pinning, stats, lookups).
    #[inline]
    pub fn manager(&self) -> &SlotManager {
        &self.mgr
    }

    /// Mutable access to the slot manager.
    #[inline]
    pub fn manager_mut(&mut self) -> &mut SlotManager {
        &mut self.mgr
    }

    /// Number of physical slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.mgr.n_slots()
    }

    /// Entries per CLV.
    #[inline]
    pub fn clv_len(&self) -> usize {
        self.clv_len
    }

    /// Traffic statistics.
    #[inline]
    pub fn stats(&self) -> SlotStats {
        self.mgr.stats()
    }

    /// Shorthand for [`SlotManager::acquire`].
    pub fn acquire(&mut self, clv: ClvKey) -> Result<Acquire, AmcError> {
        self.mgr.acquire(clv)
    }

    /// The CLV data of a slot.
    #[inline]
    pub fn clv(&self, slot: SlotId) -> &[f64] {
        &self.data[slot.idx() * self.clv_len..(slot.idx() + 1) * self.clv_len]
    }

    /// The scaler counts of a slot.
    #[inline]
    pub fn scale(&self, slot: SlotId) -> &[u32] {
        &self.scales[slot.idx() * self.patterns..(slot.idx() + 1) * self.patterns]
    }

    /// Mutable CLV data of a slot (single-slot writes, e.g. copying in a
    /// precomputed vector).
    #[inline]
    pub fn clv_mut(&mut self, slot: SlotId) -> (&mut [f64], &mut [u32]) {
        let clv = &mut self.data[slot.idx() * self.clv_len..(slot.idx() + 1) * self.clv_len];
        let scale = &mut self.scales[slot.idx() * self.patterns..(slot.idx() + 1) * self.patterns];
        (clv, scale)
    }

    /// Simultaneous mutable access to `target` and shared access to
    /// `children`. Panics if `target` appears among `children` (a compute
    /// step never reads its own output).
    pub fn compute_view(&mut self, target: SlotId, children: &[SlotId]) -> ComputeView<'_> {
        assert!(
            children.iter().all(|&c| c != target),
            "compute target {target:?} aliases a child slot"
        );
        let clv_len = self.clv_len;
        let patterns = self.patterns;
        // SAFETY: slots are disjoint, fixed-size ranges of `data` and
        // `scales`; `target` is distinct from every child (asserted above),
        // so one mutable and many shared borrows never alias.
        unsafe {
            let data_ptr = self.data.as_mut_ptr();
            let scale_ptr = self.scales.as_mut_ptr();
            let target_clv =
                std::slice::from_raw_parts_mut(data_ptr.add(target.idx() * clv_len), clv_len);
            let target_scale =
                std::slice::from_raw_parts_mut(scale_ptr.add(target.idx() * patterns), patterns);
            let children = children
                .iter()
                .map(|&c| {
                    let clv = std::slice::from_raw_parts(
                        data_ptr.add(c.idx() * clv_len) as *const f64,
                        clv_len,
                    );
                    let scale = std::slice::from_raw_parts(
                        scale_ptr.add(c.idx() * patterns) as *const u32,
                        patterns,
                    );
                    (clv, scale)
                })
                .collect();
            ComputeView { target_clv, target_scale, children }
        }
    }

    /// Bytes held by the CLV and scaler buffers — the quantity the paper's
    /// `--maxmem` budget controls.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
            + self.scales.len() * std::mem::size_of::<u32>()
    }

    /// Bytes one slot costs, for budget planning.
    pub fn bytes_per_slot(clv_len: usize, patterns: usize) -> usize {
        clv_len * std::mem::size_of::<f64>() + patterns * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for SlotArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotArena")
            .field("manager", &self.mgr)
            .field("clv_len", &self.clv_len)
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Fifo;

    fn arena(n_clvs: usize, n_slots: usize) -> SlotArena {
        SlotArena::new(n_clvs, n_slots, 8, 2, Box::new(Fifo::new()))
    }

    #[test]
    fn write_then_read() {
        let mut a = arena(4, 2);
        let s = a.acquire(ClvKey(0)).unwrap().slot();
        {
            let (clv, scale) = a.clv_mut(s);
            clv.fill(1.5);
            scale.fill(3);
        }
        assert!(a.clv(s).iter().all(|&v| v == 1.5));
        assert!(a.scale(s).iter().all(|&v| v == 3));
    }

    #[test]
    fn compute_view_disjoint() {
        let mut a = arena(4, 3);
        let s0 = a.acquire(ClvKey(0)).unwrap().slot();
        let s1 = a.acquire(ClvKey(1)).unwrap().slot();
        let s2 = a.acquire(ClvKey(2)).unwrap().slot();
        {
            let (clv, _) = a.clv_mut(s0);
            clv.fill(2.0);
        }
        {
            let (clv, _) = a.clv_mut(s1);
            clv.fill(3.0);
        }
        let view = a.compute_view(s2, &[s0, s1]);
        for i in 0..8 {
            view.target_clv[i] = view.children[0].0[i] * view.children[1].0[i];
        }
        assert!(a.clv(s2).iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "aliases")]
    fn compute_view_rejects_aliasing() {
        let mut a = arena(4, 2);
        let s = a.acquire(ClvKey(0)).unwrap().slot();
        let _ = a.compute_view(s, &[s]);
    }

    #[test]
    fn bytes_accounting() {
        let a = SlotArena::new(10, 5, 100, 25, Box::new(Fifo::new()));
        assert_eq!(a.bytes(), 5 * 100 * 8 + 5 * 25 * 4);
        assert_eq!(SlotArena::bytes_per_slot(100, 25), 900);
    }
}
