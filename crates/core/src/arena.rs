//! Slot-backed CLV storage.
//!
//! The arena owns one flat `f64` buffer holding `n_slots` CLVs plus the
//! matching per-pattern scaler vectors, and couples them with a
//! [`SlotManager`]. A Felsenstein step needs simultaneous access to the
//! (mutable) target slot and the (shared) child slots; [`SlotArena::
//! compute_view`] hands these out as disjoint slices with a runtime
//! distinctness check.
//!
//! # Shared-access protocol
//!
//! The buffers live in `UnsafeCell`s so the arena can be shared across
//! threads (`&SlotArena` is `Sync`); slot disjointness plus the manager's
//! pin/publish discipline replace the borrow checker:
//!
//! * a slot's data may be **read** ([`SlotArena::clv`]/[`SlotArena::
//!   scale`]) only while the reader holds a pin on the slot *and* the
//!   slot is published ([`SlotManager::is_ready`]) — exactly what a
//!   [`ReadLease`] certifies;
//! * a slot's data may be **written** ([`SlotArena::compute_view`]) only
//!   by the single thread that installed the mapping and has not yet
//!   published it — exactly what a [`ComputeLease`] (or an executing FPA
//!   plan) certifies.
//!
//! Because an unpublished slot cannot be leased for reading and a
//! published, pinned slot cannot be remapped, writers are exclusive and
//! readers race only with other readers. The lease API below packages
//! this protocol; `phylo_engine` composes the same primitives for
//! whole-traversal plans.

use std::cell::UnsafeCell;
use std::sync::{Arc, OnceLock};

use crate::error::AmcError;
use crate::slots::{Acquire, ClvKey, SlotId, SlotManager, SlotStats};
use crate::strategy::ReplacementStrategy;
use crate::tier::TieredStore;

/// Interior-mutable storage shared across threads; all access goes
/// through raw pointers under the protocol above.
struct SyncBuf<T>(UnsafeCell<Vec<T>>);

// SAFETY: `SyncBuf` is a plain buffer; synchronization of access is the
// arena protocol's responsibility (pins + publish latches), not the
// type's. `T` is `Send + Sync` plain-old-data here (f64/u32).
unsafe impl<T: Send + Sync> Sync for SyncBuf<T> {}

impl<T> SyncBuf<T> {
    fn new(v: Vec<T>) -> Self {
        SyncBuf(UnsafeCell::new(v))
    }

    #[inline]
    fn ptr(&self) -> *mut T {
        // SAFETY: only derives a pointer; no reference to the Vec escapes.
        unsafe { (*self.0.get()).as_mut_ptr() }
    }

    #[inline]
    fn len(&self) -> usize {
        // SAFETY: the Vec is never resized after construction.
        unsafe { (*self.0.get()).len() }
    }
}

/// Slot storage + slot manager for one CLV shape.
pub struct SlotArena {
    mgr: SlotManager,
    clv_len: usize,
    patterns: usize,
    data: SyncBuf<f64>,
    scales: SyncBuf<u32>,
    /// Optional demotion tiers ([`SlotArena::set_tiers`]). When set,
    /// eviction in the lease path demotes published victims and misses
    /// try a tier reload before falling back to recomputation.
    tiers: OnceLock<Arc<TieredStore>>,
}

/// Disjoint access to a compute target and its resident children.
pub struct ComputeView<'a> {
    /// The target CLV buffer to fill.
    pub target_clv: &'a mut [f64],
    /// The target's per-pattern scaler counts to fill.
    pub target_scale: &'a mut [u32],
    /// `(clv, scale)` of each requested child slot, in request order.
    pub children: Vec<(&'a [f64], &'a [u32])>,
}

impl SlotArena {
    /// Allocates an arena of `n_slots` CLVs of `clv_len` entries
    /// (`patterns` scaler counts each) over `n_clvs` logical keys.
    /// Panics if the buffers cannot be allocated; fallible callers use
    /// [`SlotArena::try_new`].
    pub fn new(
        n_clvs: usize,
        n_slots: usize,
        clv_len: usize,
        patterns: usize,
        strategy: Box<dyn ReplacementStrategy>,
    ) -> Self {
        Self::try_new(n_clvs, n_slots, clv_len, patterns, strategy)
            .expect("CLV slot arena allocation failed")
    }

    /// As [`SlotArena::new`], but reports an allocation failure as
    /// [`AmcError::AllocationFailed`] instead of aborting — slot storage
    /// is by far the largest allocation in a placement run (the whole
    /// point of the `--maxmem` budget), so it is the one worth failing
    /// gracefully on.
    pub fn try_new(
        n_clvs: usize,
        n_slots: usize,
        clv_len: usize,
        patterns: usize,
        strategy: Box<dyn ReplacementStrategy>,
    ) -> Result<Self, AmcError> {
        let bytes = Self::bytes_per_slot(clv_len, patterns).saturating_mul(n_slots);
        if phylo_faults::fire("amc::arena_alloc") {
            return Err(AmcError::AllocationFailed { bytes });
        }
        let mut data: Vec<f64> = Vec::new();
        data.try_reserve_exact(n_slots * clv_len)
            .map_err(|_| AmcError::AllocationFailed { bytes })?;
        data.resize(n_slots * clv_len, 0.0);
        let mut scales: Vec<u32> = Vec::new();
        scales
            .try_reserve_exact(n_slots * patterns)
            .map_err(|_| AmcError::AllocationFailed { bytes })?;
        scales.resize(n_slots * patterns, 0);
        Ok(SlotArena {
            mgr: SlotManager::new(n_clvs, n_slots, strategy),
            clv_len,
            patterns,
            data: SyncBuf::new(data),
            scales: SyncBuf::new(scales),
            tiers: OnceLock::new(),
        })
    }

    /// Attaches demotion storage tiers (at most once; later calls are
    /// ignored). From then on, evictions through the lease path offer
    /// published victims to the store and misses try [`TieredStore::
    /// fetch_into`] before recomputing.
    pub fn set_tiers(&self, tiers: Arc<TieredStore>) {
        let _ = self.tiers.set(tiers);
    }

    /// The attached tier store, if any.
    pub fn tiers(&self) -> Option<&Arc<TieredStore>> {
        self.tiers.get()
    }

    /// The slot manager (for pinning, stats, lookups).
    #[inline]
    pub fn manager(&self) -> &SlotManager {
        &self.mgr
    }

    /// The slot manager, from exclusive arena access (kept for API
    /// symmetry; the manager's whole API takes `&self`).
    #[inline]
    pub fn manager_mut(&mut self) -> &SlotManager {
        &self.mgr
    }

    /// Number of physical slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.mgr.n_slots()
    }

    /// Entries per CLV.
    #[inline]
    pub fn clv_len(&self) -> usize {
        self.clv_len
    }

    /// Traffic statistics.
    #[inline]
    pub fn stats(&self) -> SlotStats {
        self.mgr.stats()
    }

    /// Shorthand for [`SlotManager::acquire`].
    pub fn acquire(&self, clv: ClvKey) -> Result<Acquire, AmcError> {
        self.mgr.acquire(clv)
    }

    /// The CLV data of a slot.
    ///
    /// Protocol: the caller must hold a pin on `slot` and the slot must
    /// be published (a [`ReadLease`] certifies both), or the caller must
    /// otherwise be the slot's exclusive owner.
    #[inline]
    pub fn clv(&self, slot: SlotId) -> &[f64] {
        debug_assert!(slot.idx() * self.clv_len < self.data.len());
        // SAFETY: in-bounds fixed-size range; the protocol above rules
        // out a concurrent writer to this slot.
        unsafe {
            std::slice::from_raw_parts(self.data.ptr().add(slot.idx() * self.clv_len), self.clv_len)
        }
    }

    /// The scaler counts of a slot (same protocol as [`SlotArena::clv`]).
    #[inline]
    pub fn scale(&self, slot: SlotId) -> &[u32] {
        debug_assert!(slot.idx() * self.patterns < self.scales.len());
        // SAFETY: as in `clv`.
        unsafe {
            std::slice::from_raw_parts(
                self.scales.ptr().add(slot.idx() * self.patterns),
                self.patterns,
            )
        }
    }

    /// Mutable CLV data of a slot (single-slot writes, e.g. copying in a
    /// precomputed vector). Exclusive arena access makes this safe
    /// unconditionally.
    #[inline]
    pub fn clv_mut(&mut self, slot: SlotId) -> (&mut [f64], &mut [u32]) {
        // SAFETY: `&mut self` rules out any other access.
        unsafe { self.slot_raw_mut(slot) }
    }

    /// Raw mutable slices for one slot.
    ///
    /// SAFETY: the caller must be the slot's exclusive writer (own its
    /// unpublished Computing phase, or hold `&mut` arena access).
    #[inline]
    unsafe fn slot_raw_mut(&self, slot: SlotId) -> (&mut [f64], &mut [u32]) {
        let clv = std::slice::from_raw_parts_mut(
            self.data.ptr().add(slot.idx() * self.clv_len),
            self.clv_len,
        );
        let scale = std::slice::from_raw_parts_mut(
            self.scales.ptr().add(slot.idx() * self.patterns),
            self.patterns,
        );
        (clv, scale)
    }

    /// Simultaneous mutable access to `target` and shared access to
    /// `children`. Panics if `target` appears among `children` (a compute
    /// step never reads its own output).
    ///
    /// Protocol: the caller must be `target`'s exclusive writer (its
    /// unpublished Computing phase) and must hold pins on every child,
    /// each published — the shape an executing FPA plan guarantees.
    pub fn compute_view(&self, target: SlotId, children: &[SlotId]) -> ComputeView<'_> {
        assert!(
            children.iter().all(|&c| c != target),
            "compute target {target:?} aliases a child slot"
        );
        // SAFETY: slots are disjoint, fixed-size ranges of `data` and
        // `scales`; `target` is distinct from every child (asserted above),
        // so one mutable and many shared borrows never alias; the protocol
        // above rules out concurrent writers to any of them.
        unsafe {
            let (target_clv, target_scale) = self.slot_raw_mut(target);
            let children = children.iter().map(|&c| (self.clv(c), self.scale(c))).collect();
            ComputeView { target_clv, target_scale, children }
        }
    }

    // ---- lease API ---------------------------------------------------

    /// Non-blocking read lease on a resident, published CLV. Pins the
    /// slot for the lease's lifetime; `None` if the CLV is absent or
    /// still being computed (use [`SlotArena::acquire_compute`]).
    pub fn acquire_read(&self, clv: ClvKey) -> Option<ReadLease<'_>> {
        let slot = self.mgr.pin_if_ready(clv)?;
        Some(ReadLease { arena: self, clv, slot })
    }

    /// Lease for a CLV that may need computing. Takes the plan lock for
    /// the table operation only, then either:
    ///
    /// * the CLV is resident → pins it, waits (off-lock) for its data to
    ///   be published, returns [`Lease::Ready`];
    /// * the CLV misses → assigns a slot (evicting per strategy), pins
    ///   it, returns [`Lease::Compute`] — the caller fills the buffers
    ///   and calls [`ComputeLease::finish`].
    ///
    /// A thread must not re-acquire a CLV whose unfinished
    /// [`ComputeLease`] it already holds (it would wait on itself).
    ///
    /// If the thread computing a hit's data dies before publishing (its
    /// [`ComputeLease`] poisons the slot on drop), the waiter does not
    /// hang: the poison's version bump wakes it, the acquire retries, and
    /// the retry misses — this thread then recomputes the CLV itself.
    pub fn acquire_compute(&self, clv: ClvKey) -> Result<Lease<'_>, AmcError> {
        loop {
            let guard = self.mgr.plan_guard();
            let acq = self.mgr.acquire(clv)?;
            let slot = acq.slot();
            self.mgr.pin(slot);
            // Snapshot under the plan guard: poisoning also takes the
            // guard, so the version cannot move between the acquire and
            // this read.
            let version = self.mgr.version(slot);
            drop(guard);
            if !acq.is_hit() {
                if let Some(tiers) = self.tiers.get() {
                    // Demotion: the victim's bytes are still in the slot
                    // (nothing writes until this lease does) and the pin
                    // plus unpublished phase make us its exclusive owner.
                    if let Acquire::Evicted { victim, victim_ready: true, .. } = acq {
                        tiers.offer(victim, self.clv(slot), self.scale(slot));
                    }
                    // Promotion: answer the miss from a tier if possible.
                    // SAFETY: same exclusivity a ComputeLease certifies —
                    // the slot is mapped to `clv`, pinned, unpublished.
                    let (clv_buf, scale_buf) = unsafe { self.slot_raw_mut(slot) };
                    if tiers.fetch_into(clv, clv_buf, scale_buf) {
                        self.mgr.mark_ready(slot);
                        return Ok(Lease::Ready(ReadLease { arena: self, clv, slot }));
                    }
                }
                return Ok(Lease::Compute(ComputeLease { arena: self, clv, slot }));
            }
            // Resident but possibly still computing in another thread —
            // the pin forbids remapping, so the wait is on this CLV's own
            // data. It returns when the planner publishes, when the slot
            // is poisoned (version bump), or on watchdog timeout.
            match self.mgr.wait_ready_at(slot, version) {
                Ok(()) if self.mgr.is_ready(slot) => {
                    // Published while we hold a pin: the mapping is
                    // stable (only unpublished slots can be poisoned,
                    // and pinned slots are never remapped).
                    return Ok(Lease::Ready(ReadLease { arena: self, clv, slot }));
                }
                Ok(()) => {
                    // Woken by a poison: the mapping is gone. Drop the
                    // pin (freeing the slot once every waiter drains)
                    // and retry from the top.
                    let _ = self.mgr.unpin(slot);
                }
                Err(e) => {
                    let _ = self.mgr.unpin(slot);
                    return Err(e);
                }
            }
        }
    }

    /// Bytes held by the CLV and scaler buffers — the quantity the paper's
    /// `--maxmem` budget controls.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
            + self.scales.len() * std::mem::size_of::<u32>()
    }

    /// Bytes one slot costs, for budget planning.
    pub fn bytes_per_slot(clv_len: usize, patterns: usize) -> usize {
        clv_len * std::mem::size_of::<f64>() + patterns * std::mem::size_of::<u32>()
    }
}

/// Outcome of [`SlotArena::acquire_compute`].
pub enum Lease<'a> {
    /// The CLV was resident and published; read away.
    Ready(ReadLease<'a>),
    /// The CLV needs computing; the holder owns the slot's write phase.
    Compute(ComputeLease<'a>),
}

impl<'a> Lease<'a> {
    /// The leased slot.
    pub fn slot(&self) -> SlotId {
        match self {
            Lease::Ready(l) => l.slot(),
            Lease::Compute(l) => l.slot(),
        }
    }
}

/// Shared lease on one published CLV: holds a pin, so the slot can be
/// neither evicted nor rewritten while the lease lives. Many read leases
/// on the same slot coexist.
pub struct ReadLease<'a> {
    arena: &'a SlotArena,
    clv: ClvKey,
    slot: SlotId,
}

impl<'a> ReadLease<'a> {
    /// The leased logical CLV.
    pub fn key(&self) -> ClvKey {
        self.clv
    }

    /// The physical slot holding it.
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// The CLV data.
    pub fn clv(&self) -> &[f64] {
        self.arena.clv(self.slot)
    }

    /// The scaler counts.
    pub fn scale(&self) -> &[u32] {
        self.arena.scale(self.slot)
    }
}

impl Drop for ReadLease<'_> {
    fn drop(&mut self) {
        let _ = self.arena.mgr.unpin(self.slot);
    }
}

/// Exclusive write lease on one slot whose CLV is being (re)computed.
/// The holder fills the buffers via [`ComputeLease::target`], then
/// publishes with [`ComputeLease::finish`]. Dropping without finishing —
/// which happens when the computing thread panics mid-closure — **poisons
/// the slot** ([`SlotManager::poison`]): the mapping is torn down so the
/// half-written data can never be read, waiters blocked on the publish
/// latch wake and recompute the CLV themselves, and the slot returns to
/// the free list once their pins drain.
pub struct ComputeLease<'a> {
    arena: &'a SlotArena,
    clv: ClvKey,
    slot: SlotId,
}

impl<'a> ComputeLease<'a> {
    /// The leased logical CLV.
    pub fn key(&self) -> ClvKey {
        self.clv
    }

    /// The physical slot assigned to it.
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// The buffers to fill.
    pub fn target(&mut self) -> (&mut [f64], &mut [u32]) {
        // SAFETY: the lease owns the slot's unpublished Computing phase:
        // no reader can lease it (pin_if_ready refuses) and no other
        // writer can claim it (it is mapped and pinned).
        unsafe { self.arena.slot_raw_mut(self.slot) }
    }

    /// Publishes the computed data, downgrading to a read lease (the pin
    /// carries over).
    pub fn finish(self) -> ReadLease<'a> {
        let lease = ReadLease { arena: self.arena, clv: self.clv, slot: self.slot };
        self.arena.mgr.mark_ready(self.slot);
        std::mem::forget(self); // pin ownership moved into `lease`
        lease
    }
}

impl Drop for ComputeLease<'_> {
    fn drop(&mut self) {
        // Abandoned mid-compute (typically a panic unwind): the buffers
        // hold garbage, so the slot must NOT be published. Poisoning
        // consumes this lease's pin.
        self.arena.mgr.poison(self.slot);
    }
}

impl std::fmt::Debug for SlotArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotArena")
            .field("manager", &self.mgr)
            .field("clv_len", &self.clv_len)
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Fifo;

    fn arena(n_clvs: usize, n_slots: usize) -> SlotArena {
        SlotArena::new(n_clvs, n_slots, 8, 2, Box::new(Fifo::new()))
    }

    #[test]
    fn write_then_read() {
        let mut a = arena(4, 2);
        let s = a.acquire(ClvKey(0)).unwrap().slot();
        {
            let (clv, scale) = a.clv_mut(s);
            clv.fill(1.5);
            scale.fill(3);
        }
        assert!(a.clv(s).iter().all(|&v| v == 1.5));
        assert!(a.scale(s).iter().all(|&v| v == 3));
    }

    #[test]
    fn compute_view_disjoint() {
        let mut a = arena(4, 3);
        let s0 = a.acquire(ClvKey(0)).unwrap().slot();
        let s1 = a.acquire(ClvKey(1)).unwrap().slot();
        let s2 = a.acquire(ClvKey(2)).unwrap().slot();
        {
            let (clv, _) = a.clv_mut(s0);
            clv.fill(2.0);
        }
        {
            let (clv, _) = a.clv_mut(s1);
            clv.fill(3.0);
        }
        let view = a.compute_view(s2, &[s0, s1]);
        for i in 0..8 {
            view.target_clv[i] = view.children[0].0[i] * view.children[1].0[i];
        }
        assert!(a.clv(s2).iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "aliases")]
    fn compute_view_rejects_aliasing() {
        let a = arena(4, 2);
        let s = a.acquire(ClvKey(0)).unwrap().slot();
        let _ = a.compute_view(s, &[s]);
    }

    #[test]
    fn bytes_accounting() {
        let a = SlotArena::new(10, 5, 100, 25, Box::new(Fifo::new()));
        assert_eq!(a.bytes(), 5 * 100 * 8 + 5 * 25 * 4);
        assert_eq!(SlotArena::bytes_per_slot(100, 25), 900);
    }

    #[test]
    fn lease_roundtrip() {
        let a = arena(6, 2);
        // Miss → compute lease; fill and publish.
        let lease = a.acquire_compute(ClvKey(2)).unwrap();
        let Lease::Compute(mut c) = lease else { panic!("expected compute lease") };
        assert!(a.acquire_read(ClvKey(2)).is_none(), "unpublished CLV must not read-lease");
        let (clv, scale) = c.target();
        clv.fill(7.0);
        scale.fill(1);
        let r = c.finish();
        assert!(r.clv().iter().all(|&v| v == 7.0));
        drop(r);
        // Now resident + published → read lease; pin blocks eviction.
        let r = a.acquire_read(ClvKey(2)).expect("published CLV read-leases");
        assert_eq!(a.manager().pin_count(r.slot()), 1);
        assert!(r.scale().iter().all(|&v| v == 1));
        drop(r);
        assert_eq!(a.manager().n_pinned(), 0);
        a.manager().check_invariants().unwrap();
    }

    #[test]
    fn acquire_compute_hit_returns_ready() {
        let a = arena(6, 2);
        let Lease::Compute(c) = a.acquire_compute(ClvKey(1)).unwrap() else {
            panic!("first acquire must miss")
        };
        drop(c.finish());
        let lease = a.acquire_compute(ClvKey(1)).unwrap();
        match &lease {
            Lease::Ready(r) => assert_eq!(r.key(), ClvKey(1)),
            Lease::Compute(_) => panic!("resident CLV must not re-compute"),
        }
        drop(lease);
    }

    #[test]
    fn dropped_compute_lease_poisons_the_slot() {
        let a = arena(6, 2);
        let Lease::Compute(c) = a.acquire_compute(ClvKey(3)).unwrap() else { panic!() };
        let slot = c.slot();
        drop(c); // abandoned: mapping torn down, garbage never published
        assert!(!a.manager().is_ready(slot), "garbage must not be published");
        assert_eq!(a.manager().lookup(ClvKey(3)), None, "mapping must be gone");
        assert_eq!(a.manager().pin_count(slot), 0);
        a.manager().check_invariants().unwrap();
        // The slot is reclaimable: the same CLV can be acquired afresh.
        let Lease::Compute(mut c) = a.acquire_compute(ClvKey(3)).unwrap() else {
            panic!("poisoned CLV must miss, not hit")
        };
        c.target().0.fill(2.0);
        let r = c.finish();
        assert!(r.clv().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn panicking_compute_closure_leaves_arena_usable() {
        // The lease-poisoning regression: a worker panics mid-compute; the
        // slot must be reclaimed and a later acquire_compute on the SAME
        // CLV must succeed with freshly computed data.
        let a = arena(6, 2);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let Lease::Compute(mut c) = a.acquire_compute(ClvKey(1)).unwrap() else { panic!() };
            c.target().0.fill(666.0); // half-written garbage
            panic!("injected compute failure");
        }));
        assert!(panicked.is_err());
        a.manager().check_invariants().unwrap();
        assert_eq!(a.manager().n_pinned(), 0, "the panicked lease's pin must drain");
        let Lease::Compute(mut c) = a.acquire_compute(ClvKey(1)).unwrap() else {
            panic!("CLV 1 must need recomputing after the poison")
        };
        c.target().0.fill(9.0);
        let r = c.finish();
        assert!(r.clv().iter().all(|&v| v == 9.0), "reader must see the recomputed data");
    }

    #[test]
    fn waiter_on_poisoned_slot_recomputes() {
        // A concurrent acquire_compute blocked on a computing slot must
        // wake on the poison and transparently recompute rather than hang
        // or read garbage.
        use std::sync::Arc;
        let a = Arc::new(arena(6, 2));
        let Lease::Compute(c) = a.acquire_compute(ClvKey(2)).unwrap() else { panic!() };
        let a2 = Arc::clone(&a);
        let waiter = std::thread::spawn(move || {
            let lease = a2.acquire_compute(ClvKey(2)).unwrap();
            match lease {
                Lease::Ready(_) => panic!("waiter must not read the poisoned data"),
                Lease::Compute(mut c2) => {
                    c2.target().0.fill(5.0);
                    let r = c2.finish();
                    assert!(r.clv().iter().all(|&v| v == 5.0));
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(c); // poison while the waiter is blocked
        waiter.join().unwrap();
        a.manager().check_invariants().unwrap();
        assert_eq!(a.manager().n_pinned(), 0);
    }

    #[test]
    fn concurrent_compute_and_read_distinct_slots() {
        use std::sync::Arc;
        let a = Arc::new(arena(8, 3));
        let Lease::Compute(mut c) = a.acquire_compute(ClvKey(0)).unwrap() else { panic!() };
        c.target().0.fill(4.0);
        drop(c.finish());
        // Hold an unfinished compute lease on CLV 1...
        let Lease::Compute(c1) = a.acquire_compute(ClvKey(1)).unwrap() else { panic!() };
        // ...while another thread freely read-leases CLV 0.
        let a2 = Arc::clone(&a);
        std::thread::spawn(move || {
            let r = a2.acquire_read(ClvKey(0)).expect("reader of another slot never blocks");
            assert!(r.clv().iter().all(|&v| v == 4.0));
        })
        .join()
        .unwrap();
        drop(c1);
        a.manager().check_invariants().unwrap();
    }
}
