//! The slot-constrained Felsenstein traversal planner.
//!
//! Given a set of target CLVs (directed edges of the reference tree), this
//! module produces a **compute schedule** that makes every target resident
//! in a slot, recomputing whatever intermediate CLVs were evicted, while
//! never exceeding the configured slot count. Pinning guarantees that a
//! CLV survives from the step that computes it to the last step that reads
//! it; the paper's invariant — the traversal always succeeds while at
//! least `⌈log₂ n⌉ + 2` slots remain unpinned — is upheld by scheduling
//! dependencies in Sethi–Ullman (heavier-subtree-first) order.
//!
//! Planning is separated from execution: [`ensure_resident`] mutates only
//! the slot *maps* and emits [`FpaOp`]s; the caller then runs the ops
//! against the [`SlotArena`](crate::SlotArena) storage with its kernels.
//! Because planning and execution process ops in the same order, the slot
//! assignments recorded in the ops are exactly the slots that hold the
//! right data at execution time.
//!
//! Under concurrency (DESIGN.md §6) the whole planning pass runs inside
//! the manager's plan lock, so planners are serialized and each one sees
//! the sequential algorithm's exact pin dance — the `⌈log₂ n⌉ + 2`
//! unpinned-slot guarantee holds per planning thread. Before the lock is
//! released, every slot the schedule will read or write gains one
//! **execution pin** (recorded in [`ResidentSet::release_exec`]'s list),
//! so a later planner cannot evict the working set out from under the
//! still-running execution; the executor drops these pins once the ops
//! have run. A concurrent planner that finds too few unpinned slots gets
//! [`AmcError::AllSlotsPinned`] and can simply retry — the earlier plan's
//! execution never blocks on a lock, so it always completes and releases.

use crate::error::AmcError;
use crate::slots::{Acquire, ClvKey, SlotId, SlotManager};
use phylo_tree::traversal::{extend_plan_for, OrderPolicy};
use phylo_tree::{DirEdgeId, NodeId, Tree};

/// Where a compute step reads one of its two inputs from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepSource {
    /// A resident CLV in the given slot.
    Slot(SlotId),
    /// A tip: the engine supplies the leaf's encoded characters.
    Tip(NodeId),
}

/// One Felsenstein step: compute the CLV of `target` into `slot` from two
/// dependency sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpaOp {
    /// The directed edge whose CLV is produced.
    pub target: DirEdgeId,
    /// The slot to write.
    pub slot: SlotId,
    /// The two inputs (orientations into the target's source node).
    pub deps: [DepSource; 2],
    /// The directed edges corresponding to `deps` (the engine needs them to
    /// select branch lengths / transition matrices).
    pub dep_edges: [DirEdgeId; 2],
    /// Slot version snapshot per dependency, taken when the dep was
    /// recorded ([`DepSource::Tip`] entries hold 0). The executor waits on
    /// a dep's publish latch only while the slot still carries this
    /// version ([`SlotManager::wait_ready_at`]): a bumped version means a
    /// *later* op of this very schedule remapped the slot, whose data
    /// stays valid until that op — which runs after the reader — executes.
    pub dep_versions: [u64; 2],
    /// Version `slot` carried when this op's install claimed it. The
    /// executor publishes through [`SlotManager::mark_ready_at`], so an
    /// op whose slot was remapped by a later op of the same schedule does
    /// not falsely publish the new mapping over its own old bytes.
    pub slot_version: u64,
}

/// Result of [`ensure_resident`]: the schedule plus where each requested
/// target lives.
#[derive(Debug, Clone, Default)]
pub struct ResidentSet {
    /// Compute steps, in execution order. Empty if everything was cached.
    pub ops: Vec<FpaOp>,
    /// Slot of every *inner-origin* requested target (tip-origin targets
    /// need no slot and are omitted), in request order.
    pub targets: Vec<(DirEdgeId, SlotId)>,
    /// One pin per slot reference the schedule reads or writes, held from
    /// planning until the executor calls [`ResidentSet::release_exec`].
    exec_pins: Vec<SlotId>,
    /// Published CLVs this plan evicted, with the slot still holding
    /// their bytes. The executor may demote these to a storage tier
    /// *before* running the ops (which overwrite the slots); the list
    /// is advisory — ignoring it just means the CLVs recompute later.
    pub evicted: Vec<(ClvKey, SlotId)>,
}

impl ResidentSet {
    /// The slot holding a given target, if it was part of the request.
    pub fn slot_of(&self, d: DirEdgeId) -> Option<SlotId> {
        self.targets.iter().find(|&&(t, _)| t == d).map(|&(_, s)| s)
    }

    /// Releases the execution pins (call once the ops have been executed;
    /// idempotent). Until then, no concurrent planner can evict any slot
    /// this schedule reads or writes.
    pub fn release_exec(&mut self, mgr: &SlotManager) {
        for slot in self.exec_pins.drain(..) {
            let _ = mgr.unpin(slot);
        }
    }

    /// Releases the per-target pins taken by `ensure_resident`, plus any
    /// execution pins not yet dropped (call when done reading the
    /// targets).
    pub fn release(&mut self, mgr: &SlotManager) {
        self.release_exec(mgr);
        for &(_, slot) in &self.targets {
            // A slot may appear for several targets; each got its own pin.
            let _ = mgr.unpin(slot);
        }
    }
}

/// Makes every CLV in `targets` resident, evicting/recomputing as needed.
///
/// * `register_need` — the table from
///   [`phylo_tree::stats::register_need`]; used to schedule the heavier
///   dependency first so the log-bound holds.
/// * Targets are pinned once each on success; release with
///   [`ResidentSet::release`].
///
/// Fails with [`AmcError::AllSlotsPinned`] when the slot budget (minus
/// prior pins) is genuinely insufficient for this tree.
pub fn ensure_resident(
    tree: &Tree,
    targets: &[DirEdgeId],
    mgr: &SlotManager,
    register_need: &[u32],
) -> Result<ResidentSet, AmcError> {
    // Planning is serialized: residency and pin counts cannot change
    // under our feet (execution pins are the one exception — they only
    // ever *decrease* foreign pin counts, which cannot invalidate a
    // plan). The guard drops before this function returns, so execution
    // of the returned schedule runs lock-free.
    let _plan = mgr.plan_guard();
    // Net pins this call has added per slot, for precise rollback on
    // error: under concurrency a blanket `unpin_all` would destroy other
    // threads' pins.
    let mut pin_delta = vec![0i64; mgr.n_slots()];
    // ---- Phase 1: static plan against the current residency. ----
    let mut planned = vec![false; tree.n_dir_edges()];
    let mut plan: Vec<DirEdgeId> = Vec::new();
    for &t in targets {
        if tree.is_leaf(tree.src(t)) {
            continue;
        }
        let planned_ref = &planned;
        let before = plan.len();
        extend_plan_for(
            tree,
            t,
            OrderPolicy::MinRegisters,
            Some(register_need),
            &|d| planned_ref[d.idx()] || mgr.lookup(ClvKey(d.0)).is_some(),
            &mut plan,
        );
        for &p in &plan[before..] {
            planned[p.idx()] = true;
        }
    }

    // ---- Phase 2: pin accounting. ----
    // needed[d] = how many plan entries read d as a dependency.
    let mut needed = vec![0u32; tree.n_dir_edges()];
    for &d in &plan {
        for dep in tree.deps(d).expect("plan entries are inner-origin") {
            if !tree.is_leaf(tree.src(dep)) {
                needed[dep.idx()] += 1;
            }
        }
    }
    // target_pins[d] = one pin per request occurrence.
    let mut target_pins = vec![0u32; tree.n_dir_edges()];
    for &t in targets {
        if !tree.is_leaf(tree.src(t)) {
            target_pins[t.idx()] += 1;
        }
    }
    // Pin CLVs that are already resident and will be read (as deps) or
    // returned (as targets), so evictions during planning cannot corrupt
    // the schedule. The dep share of these pins is consumed one read at a
    // time during phase 3.
    for d in tree.all_dir_edges() {
        if planned[d.idx()] {
            continue; // will be (re)computed; pinned at its compute step
        }
        let pins = needed[d.idx()] + target_pins[d.idx()];
        if pins > 0 {
            let slot = mgr
                .lookup(ClvKey(d.0))
                .expect("un-planned CLV required by the plan must be resident");
            mgr.pin_n(slot, pins);
            pin_delta[slot.idx()] += pins as i64;
            mgr.touch(ClvKey(d.0));
        }
    }

    // ---- Phase 3: schedule, assigning slots in execution order. ----
    let mut ops = Vec::with_capacity(plan.len());
    let mut installed: Vec<ClvKey> = Vec::with_capacity(plan.len());
    let mut evicted: Vec<(ClvKey, SlotId)> = Vec::new();
    let result: Result<(), AmcError> = (|| {
        for &d in &plan {
            let deps = tree.deps(d).expect("plan entries are inner-origin");
            let acq = mgr.acquire(ClvKey(d.0))?;
            debug_assert!(!acq.is_hit(), "plan entries are not resident");
            if let Acquire::Evicted { slot, victim, victim_ready: true } = acq {
                // The victim's bytes stay in `slot` until this plan's
                // ops execute; record it so the executor can demote the
                // payload to a storage tier first.
                evicted.push((victim, slot));
            }
            let slot = acq.slot();
            let slot_version = mgr.version(slot);
            installed.push(ClvKey(d.0));
            let mut sources = [DepSource::Tip(NodeId(0)); 2];
            let mut versions = [0u64; 2];
            for (k, &dep) in deps.iter().enumerate() {
                let src_node = tree.src(dep);
                sources[k] = if tree.is_leaf(src_node) {
                    DepSource::Tip(src_node)
                } else {
                    let dep_slot = mgr
                        .lookup(ClvKey(dep.0))
                        .expect("dependency must be resident when scheduled");
                    versions[k] = mgr.version(dep_slot);
                    DepSource::Slot(dep_slot)
                };
            }
            ops.push(FpaOp {
                target: d,
                slot,
                deps: sources,
                dep_edges: deps,
                dep_versions: versions,
                slot_version,
            });
            // Pin the fresh CLV for its future reads and target pins.
            mgr.pin_n(slot, needed[d.idx()] + target_pins[d.idx()]);
            pin_delta[slot.idx()] += (needed[d.idx()] + target_pins[d.idx()]) as i64;
            // Consume one read-pin from each inner dependency.
            for &dep in &deps {
                if !tree.is_leaf(tree.src(dep)) {
                    let dep_slot = mgr.lookup(ClvKey(dep.0)).expect("still resident");
                    mgr.unpin(dep_slot)?;
                    pin_delta[dep_slot.idx()] -= 1;
                }
            }
        }
        Ok(())
    })();

    if let Err(e) = result {
        // The schedule will never execute, so the CLVs installed during
        // this call hold uncomputed garbage. Roll back exactly the pins
        // this call added (other threads' pins stay intact), then drop
        // the installed mappings. No foreign pins can exist on those
        // slots: planners are serialized by the plan lock and read
        // leases refuse still-unpublished slots, so the invalidate's
        // pin-free precondition holds.
        for (s, &d) in pin_delta.iter().enumerate() {
            debug_assert!(d >= 0, "rollback found pins this call never took");
            for _ in 0..d.max(0) {
                let _ = mgr.unpin(SlotId(s as u32));
            }
        }
        for k in installed {
            mgr.invalidate(k);
        }
        return Err(e);
    }

    // ---- Phase 4: execution pins + collect target slots. ----
    // Every slot the schedule writes (op slots) or reads (resident dep
    // slots) stays pinned until the executor finishes; without this, a
    // concurrent planner could evict an intermediate CLV between our
    // planning and its read, since the sequential pin dance above has
    // already consumed those read pins.
    let mut exec_pins = Vec::with_capacity(ops.len() * 3);
    for op in &ops {
        mgr.pin(op.slot);
        exec_pins.push(op.slot);
        for dep in op.deps {
            if let DepSource::Slot(s) = dep {
                mgr.pin(s);
                exec_pins.push(s);
            }
        }
    }
    let mut out_targets = Vec::with_capacity(targets.len());
    for &t in targets {
        if tree.is_leaf(tree.src(t)) {
            continue;
        }
        let slot = mgr.lookup(ClvKey(t.0)).expect("target resident after planning");
        out_targets.push((t, slot));
    }
    Ok(ResidentSet { ops, targets: out_targets, exec_pins, evicted })
}

/// Pins the resident CLVs with the highest recomputation cost, keeping at
/// least `min_unpinned` slots unpinned (the paper's cross-block retention,
/// §IV). Returns the pinned slots; the caller unpins them when the block
/// advances.
pub fn pin_high_cost_resident(
    mgr: &SlotManager,
    costs: &[f64],
    min_unpinned: usize,
) -> Vec<SlotId> {
    // Planning operation: pins it takes must not race a planner's
    // eviction decisions, and it must not grab a slot a planner has
    // installed but not yet published.
    let _plan = mgr.plan_guard();
    let budget = mgr.n_unpinned().saturating_sub(min_unpinned);
    if budget == 0 {
        return Vec::new();
    }
    let mut resident: Vec<(SlotId, f64)> = mgr
        .resident()
        .into_iter()
        .filter(|&(_, slot)| mgr.pin_count(slot) == 0 && mgr.is_ready(slot))
        .map(|(clv, slot)| (slot, costs.get(clv.idx()).copied().unwrap_or(0.0)))
        .collect();
    resident.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let picked: Vec<SlotId> = resident.into_iter().take(budget).map(|(s, _)| s).collect();
    for &s in &picked {
        mgr.pin(s);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CostBased, StrategyKind};
    use phylo_tree::stats::{min_slots_bound, register_need, subtree_leaf_counts};
    use phylo_tree::{generate, EdgeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Executes a schedule over a "hash arena": each slot holds a u64; the
    /// value of a CLV is a deterministic hash of its dependency values.
    /// Comparing against the unconstrained bottom-up DP proves the
    /// schedule reads the right data at the right time.
    fn hash_combine(a: u64, b: u64) -> u64 {
        let mut x = a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(31);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^ (x >> 32)
    }

    fn tip_value(n: NodeId) -> u64 {
        (n.0 as u64 + 1).wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn execute(ops: &[FpaOp], tree: &Tree, slots: &mut [u64]) {
        for op in ops {
            let mut vals = [0u64; 2];
            for (k, dep) in op.deps.iter().enumerate() {
                vals[k] = match dep {
                    DepSource::Tip(n) => tip_value(*n),
                    DepSource::Slot(s) => slots[s.idx()],
                };
            }
            // deps order is fixed by dep_edges; combine must be symmetric
            // with respect to the true computation, so sort by dep edge for
            // stability.
            let (a, b) = if op.dep_edges[0].0 <= op.dep_edges[1].0 {
                (vals[0], vals[1])
            } else {
                (vals[1], vals[0])
            };
            slots[op.slot.idx()] = hash_combine(a, b);
            let _ = tree;
        }
    }

    /// Reference DP with the same dep-edge ordering convention.
    fn reference_values_ordered(tree: &Tree) -> Vec<u64> {
        let mut vals = vec![0u64; tree.n_dir_edges()];
        let plan = phylo_tree::traversal::plan_all(tree, OrderPolicy::AsIs, None);
        for d in tree.all_dir_edges() {
            if tree.is_leaf(tree.src(d)) {
                vals[d.idx()] = tip_value(tree.src(d));
            }
        }
        for d in plan {
            let deps = tree.deps(d).unwrap();
            let (a, b) = if deps[0].0 <= deps[1].0 {
                (vals[deps[0].idx()], vals[deps[1].idx()])
            } else {
                (vals[deps[1].idx()], vals[deps[0].idx()])
            };
            vals[d.idx()] = hash_combine(a, b);
        }
        vals
    }

    fn mgr_for(tree: &Tree, n_slots: usize) -> SlotManager {
        let costs: Vec<f64> = subtree_leaf_counts(tree).iter().map(|&c| c as f64).collect();
        SlotManager::new(tree.n_dir_edges(), n_slots, Box::new(CostBased::new(costs)))
    }

    #[test]
    fn min_slots_suffice_on_balanced_tree() {
        let mut rng = StdRng::seed_from_u64(21);
        for k in [3usize, 5, 7] {
            let n = 1 << k;
            let tree = generate::balanced(n, 0.1, &mut rng).unwrap();
            let need = register_need(&tree);
            let mut mgr = mgr_for(&tree, min_slots_bound(n));
            let mut slots = vec![0u64; mgr.n_slots()];
            let reference = reference_values_ordered(&tree);
            // Sweep every edge: both orientations resident, verify values.
            for e in tree.all_edges() {
                let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
                let mut rs = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
                execute(&rs.ops, &tree, &mut slots);
                for &(d, slot) in &rs.targets {
                    assert_eq!(slots[slot.idx()], reference[d.idx()], "n={n} edge={e:?} dir={d:?}");
                }
                rs.release(&mut mgr);
                mgr.check_invariants().unwrap();
            }
            assert_eq!(mgr.n_pinned(), 0);
        }
    }

    #[test]
    fn various_topologies_and_slot_counts() {
        let mut rng = StdRng::seed_from_u64(22);
        for gen in [generate::yule, generate::caterpillar, generate::uniform_topology] {
            let tree = gen(33, 0.1, &mut rng).unwrap();
            let need = register_need(&tree);
            let reference = reference_values_ordered(&tree);
            let bound = min_slots_bound(33);
            for n_slots in [bound, bound + 3, tree.n_inner_dir_edges()] {
                let mut mgr = mgr_for(&tree, n_slots);
                let mut slots = vec![0u64; n_slots];
                for e in tree.all_edges() {
                    let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
                    let mut rs = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
                    execute(&rs.ops, &tree, &mut slots);
                    for &(d, slot) in &rs.targets {
                        assert_eq!(slots[slot.idx()], reference[d.idx()]);
                    }
                    rs.release(&mut mgr);
                }
                mgr.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn full_slots_never_evict() {
        let mut rng = StdRng::seed_from_u64(23);
        let tree = generate::yule(20, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let mut mgr = mgr_for(&tree, tree.n_inner_dir_edges());
        for e in tree.all_edges() {
            let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
            let mut rs = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
            rs.release(&mut mgr);
        }
        assert_eq!(mgr.stats().evictions, 0);
        // Second sweep: everything is cached, zero ops.
        let mut total_ops = 0;
        for e in tree.all_edges() {
            let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
            let mut rs = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
            total_ops += rs.ops.len();
            rs.release(&mut mgr);
        }
        assert_eq!(total_ops, 0);
    }

    #[test]
    fn fewer_slots_mean_more_recomputation() {
        let mut rng = StdRng::seed_from_u64(24);
        let tree = generate::yule(64, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let mut ops_by_slots = Vec::new();
        for n_slots in [min_slots_bound(64), 24, 64, tree.n_inner_dir_edges()] {
            let mut mgr = mgr_for(&tree, n_slots);
            let mut total = 0usize;
            for e in tree.all_edges() {
                let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
                let mut rs = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
                total += rs.ops.len();
                rs.release(&mut mgr);
            }
            ops_by_slots.push(total);
        }
        // Monotone non-increasing work with more slots.
        for w in ops_by_slots.windows(2) {
            assert!(w[0] >= w[1], "{ops_by_slots:?}");
        }
        // Full memory does each CLV exactly once.
        assert_eq!(*ops_by_slots.last().unwrap(), tree.n_inner_dir_edges());
    }

    #[test]
    fn insufficient_slots_error_and_recovery() {
        let mut rng = StdRng::seed_from_u64(25);
        let tree = generate::balanced(64, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        // 2 slots cannot satisfy a 64-leaf balanced tree.
        let mut mgr = mgr_for(&tree, 2);
        let central = tree
            .all_edges()
            .find(|&e| !tree.is_leaf(tree.edge(e).a) && !tree.is_leaf(tree.edge(e).b))
            .unwrap();
        let targets = [DirEdgeId::new(central, 0)];
        let err = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap_err();
        assert!(matches!(err, AmcError::AllSlotsPinned { .. }));
        // The manager must remain usable afterwards.
        assert_eq!(mgr.n_pinned(), 0);
        mgr.check_invariants().unwrap();
    }

    #[test]
    fn tip_targets_are_skipped() {
        let mut rng = StdRng::seed_from_u64(26);
        let tree = generate::yule(8, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let mut mgr = mgr_for(&tree, 8);
        // A tip-origin directed edge as target: no slot, no ops.
        let tip_dir = tree.dirs_from(NodeId(0)).next().unwrap();
        let rs = ensure_resident(&tree, &[tip_dir], &mut mgr, &need).unwrap();
        assert!(rs.ops.is_empty());
        assert!(rs.targets.is_empty());
    }

    #[test]
    fn pin_high_cost_keeps_floor() {
        let mut rng = StdRng::seed_from_u64(27);
        let tree = generate::yule(32, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let costs: Vec<f64> = subtree_leaf_counts(&tree).iter().map(|&c| c as f64).collect();
        let n_slots = 16;
        let mut mgr = mgr_for(&tree, n_slots);
        // Warm the cache.
        let e = EdgeId(0);
        let mut rs =
            ensure_resident(&tree, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)], &mut mgr, &need)
                .unwrap();
        rs.release(&mut mgr);
        let floor = min_slots_bound(32);
        let pinned = pin_high_cost_resident(&mut mgr, &costs, floor);
        assert!(mgr.n_unpinned() >= floor);
        // Pinned slots hold the highest-cost residents.
        for &s in &pinned {
            assert!(mgr.pin_count(s) > 0);
        }
        for &s in &pinned {
            mgr.unpin(s).unwrap();
        }
        mgr.check_invariants().unwrap();
    }

    #[test]
    fn all_strategies_produce_correct_values() {
        let mut rng = StdRng::seed_from_u64(28);
        let tree = generate::yule(24, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let reference = reference_values_ordered(&tree);
        let costs: Vec<f64> = subtree_leaf_counts(&tree).iter().map(|&c| c as f64).collect();
        for kind in StrategyKind::all() {
            let strat = kind.build(Some(costs.clone()));
            let n_slots = min_slots_bound(24) + 2;
            let mut mgr = SlotManager::new(tree.n_dir_edges(), n_slots, strat);
            let mut slots = vec![0u64; n_slots];
            for e in tree.all_edges() {
                let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
                let mut rs = ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
                execute(&rs.ops, &tree, &mut slots);
                for &(d, slot) in &rs.targets {
                    assert_eq!(slots[slot.idx()], reference[d.idx()], "strategy {kind}");
                }
                rs.release(&mut mgr);
            }
        }
    }
}
