//! Tiered CLV storage: RAM → compressed RAM → disk.
//!
//! The paper's AMC answers every slot miss with recomputation. This
//! module generalizes eviction into **demotion**: a published victim's
//! payload can be copied into a cheaper storage tier and a later miss
//! answered by a **reload** instead of a kernel traversal — which turns
//! pplacer's mmap/disk-backed strategy into just another configuration
//! of the same slot manager, benchmarkable against pure recompute.
//!
//! Key property making this sound: within one run a CLV's contents are
//! a pure function of the tree, model, and alignment. A demoted copy
//! can therefore never go stale; every tier is a **write-once cache**
//! and a lost or corrupt entry degrades to the recompute path, never to
//! a wrong likelihood. Demoted payloads are CRC-checked end-to-end
//! (serialize → tier → deserialize), so disk bit-rot and codec bugs
//! both surface as a counted miss, not as data.
//!
//! Three [`StorageTier`] implementations:
//!
//! * [`RamTier`] — raw payload copies in a hash map (the hot tier's
//!   storage discipline without slot semantics);
//! * [`CompressedTier`] — byte-shuffled ([`shuffle`]) + RLE-packed
//!   ([`rle_compress`]) payloads in RAM. CLV doubles share exponent
//!   and sign structure, so transposing byte planes makes runs the RLE
//!   can fold;
//! * [`DiskTier`] — a fixed-record file arena addressed by CLV key
//!   (`pwrite`/`pread`, no seeks shared between threads).
//!
//! [`TieredStore`] orchestrates them: demotion is **asynchronous**
//! (payloads are staged in RAM and written back by a dedicated thread,
//! so the eviction path never blocks on I/O), reloads are synchronous
//! and promote the CLV back to the hot slot, and a cost model picks
//! demote-vs-drop per victim: estimated recompute cost (descendant-op
//! count × measured ns/op EWMA) against the target tier's measured
//! reload latency EWMA. Unmeasured sides are optimistic — the first
//! few demotions and reloads are how the model learns.

use crate::budget::{MemCategory, MemoryTracker};
use crate::error::AmcError;
use crate::slots::ClvKey;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — hand-rolled, no dependencies
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Codec: byte-shuffle + PackBits-style RLE
// ---------------------------------------------------------------------------

/// Transposes `src` (a sequence of `stride`-byte values) into byte
/// planes: all 0th bytes, then all 1st bytes, … CLV doubles in one
/// vector share sign/exponent structure, so the planes are runnier
/// than the interleaved original.
pub fn shuffle(src: &[u8], stride: usize) -> Vec<u8> {
    debug_assert_eq!(src.len() % stride.max(1), 0);
    let n = src.len() / stride.max(1);
    let mut out = Vec::with_capacity(src.len());
    for b in 0..stride {
        for i in 0..n {
            out.push(src[i * stride + b]);
        }
    }
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(src: &[u8], stride: usize) -> Vec<u8> {
    debug_assert_eq!(src.len() % stride.max(1), 0);
    let n = src.len() / stride.max(1);
    let mut out = vec![0u8; src.len()];
    for b in 0..stride {
        for i in 0..n {
            out[i * stride + b] = src[b * n + i];
        }
    }
    out
}

/// PackBits-style run-length encoding. Control byte `c < 128` copies
/// the next `c + 1` literal bytes; `c >= 128` repeats the next byte
/// `c - 128 + 3` times (runs shorter than 3 are never worth a control
/// pair). Worst case grows the input by 1/128 + 1 byte.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    let mut lit_start = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[s..s + n]);
            s += n;
        }
    };
    while i < data.len() {
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, lit_start, i, data);
            out.push((128 + run - 3) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, data.len(), data);
    out
}

/// Inverse of [`rle_compress`]; `expect_len` guards against truncated
/// or corrupt input (the CRC upstream makes this a debug aid, not the
/// integrity mechanism).
pub fn rle_decompress(data: &[u8], expect_len: usize) -> Result<Vec<u8>, AmcError> {
    let bad = |why: &str| AmcError::TierIo { tier: "compressed", detail: why.to_string() };
    let mut out = Vec::with_capacity(expect_len);
    let mut i = 0;
    while i < data.len() {
        let c = data[i] as usize;
        i += 1;
        if c < 128 {
            let n = c + 1;
            if i + n > data.len() {
                return Err(bad("truncated literal block"));
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else {
            if i >= data.len() {
                return Err(bad("truncated run block"));
            }
            let n = c - 128 + 3;
            let b = data[i];
            i += 1;
            out.resize(out.len() + n, b);
        }
        if out.len() > expect_len {
            return Err(bad("decompressed past the expected length"));
        }
    }
    if out.len() != expect_len {
        return Err(bad("decompressed to the wrong length"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The StorageTier trait and its three implementations
// ---------------------------------------------------------------------------

/// Which tier implementation a config entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierKind {
    /// Raw in-RAM copies.
    Ram,
    /// Byte-shuffle + RLE compressed in-RAM copies.
    Compressed,
    /// Fixed-record file arena.
    Disk,
}

impl TierKind {
    /// The tier's configuration / metrics name.
    pub fn name(self) -> &'static str {
        match self {
            TierKind::Ram => "ram",
            TierKind::Compressed => "compressed",
            TierKind::Disk => "disk",
        }
    }

    /// Parses one `--storage-tiers` element.
    pub fn parse(s: &str) -> Option<TierKind> {
        match s {
            "ram" => Some(TierKind::Ram),
            "compressed" => Some(TierKind::Compressed),
            "disk" => Some(TierKind::Disk),
            _ => None,
        }
    }
}

/// One demotion tier: a write-once key→payload store. Implementations
/// are internally synchronized (`&self`); payloads are the raw
/// serialized CLV bytes — any encoding is the tier's own business.
pub trait StorageTier: Send + Sync {
    /// The tier's metrics name.
    fn name(&self) -> &'static str;
    /// Stores `raw` under `key`, replacing any previous payload.
    fn store(&self, key: u32, raw: &[u8]) -> Result<(), AmcError>;
    /// Loads the raw payload for `key`, `None` when absent.
    fn load(&self, key: u32) -> Result<Option<Vec<u8>>, AmcError>;
    /// Forgets `key` (budget pressure or corruption quarantine).
    fn remove(&self, key: u32);
    /// Bytes of payload currently stored (RAM or disk).
    fn stored_bytes(&self) -> usize;
    /// Bytes of *RAM* this tier occupies (0 for the disk arena's
    /// payload; its index is accounted by the store).
    fn ram_bytes(&self) -> usize;
    /// Number of stored entries.
    fn entries(&self) -> usize;
}

/// Raw in-RAM payload copies.
#[derive(Default)]
pub struct RamTier {
    map: Mutex<HashMap<u32, Vec<u8>>>,
    bytes: AtomicUsize,
}

impl RamTier {
    /// An empty RAM tier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageTier for RamTier {
    fn name(&self) -> &'static str {
        "ram"
    }

    fn store(&self, key: u32, raw: &[u8]) -> Result<(), AmcError> {
        let mut m = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = m.insert(key, raw.to_vec()) {
            self.bytes.fetch_sub(old.len(), Ordering::Relaxed);
        }
        self.bytes.fetch_add(raw.len(), Ordering::Relaxed);
        Ok(())
    }

    fn load(&self, key: u32) -> Result<Option<Vec<u8>>, AmcError> {
        Ok(self.map.lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned())
    }

    fn remove(&self, key: u32) {
        let mut m = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = m.remove(&key) {
            self.bytes.fetch_sub(old.len(), Ordering::Relaxed);
        }
    }

    fn stored_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    fn ram_bytes(&self) -> usize {
        self.stored_bytes()
    }

    fn entries(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Byte-shuffled, RLE-compressed in-RAM copies. The shuffle stride
/// boundary (`f64` CLV bytes, then `u32` scaler bytes) comes from the
/// run's fixed payload geometry.
pub struct CompressedTier {
    map: Mutex<HashMap<u32, Vec<u8>>>,
    bytes: AtomicUsize,
    /// Byte length of the f64 (stride-8) prefix of every payload.
    clv_bytes: usize,
    /// Full raw payload length (fixed per run).
    raw_len: usize,
}

impl CompressedTier {
    /// A tier for payloads of `raw_len` bytes whose first `clv_bytes`
    /// are `f64`s (the rest are `u32` scalers).
    pub fn new(clv_bytes: usize, raw_len: usize) -> Self {
        assert!(clv_bytes <= raw_len);
        Self { map: Mutex::new(HashMap::new()), bytes: AtomicUsize::new(0), clv_bytes, raw_len }
    }

    fn encode(&self, raw: &[u8]) -> Vec<u8> {
        let mut planes = shuffle(&raw[..self.clv_bytes], 8);
        planes.extend(shuffle(&raw[self.clv_bytes..], 4));
        rle_compress(&planes)
    }

    fn decode(&self, packed: &[u8]) -> Result<Vec<u8>, AmcError> {
        let planes = rle_decompress(packed, self.raw_len)?;
        let mut raw = unshuffle(&planes[..self.clv_bytes], 8);
        raw.extend(unshuffle(&planes[self.clv_bytes..], 4));
        Ok(raw)
    }
}

impl StorageTier for CompressedTier {
    fn name(&self) -> &'static str {
        "compressed"
    }

    fn store(&self, key: u32, raw: &[u8]) -> Result<(), AmcError> {
        debug_assert_eq!(raw.len(), self.raw_len);
        let packed = self.encode(raw);
        let mut m = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = m.insert(key, packed) {
            self.bytes.fetch_sub(old.len(), Ordering::Relaxed);
        }
        let new_len = m.get(&key).map_or(0, Vec::len);
        self.bytes.fetch_add(new_len, Ordering::Relaxed);
        Ok(())
    }

    fn load(&self, key: u32) -> Result<Option<Vec<u8>>, AmcError> {
        let packed = self.map.lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned();
        match packed {
            None => Ok(None),
            Some(p) => self.decode(&p).map(Some),
        }
    }

    fn remove(&self, key: u32) {
        let mut m = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = m.remove(&key) {
            self.bytes.fetch_sub(old.len(), Ordering::Relaxed);
        }
    }

    fn stored_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    fn ram_bytes(&self) -> usize {
        self.stored_bytes()
    }

    fn entries(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Fixed-record file arena: payload for key `k` lives at byte offset
/// `k × record_len`. Records are written with `pwrite` and read with
/// `pread`, so concurrent readers never share a file cursor; presence
/// is an in-RAM bitset (the file is sparse until written).
pub struct DiskTier {
    file: std::fs::File,
    path: PathBuf,
    /// True when this tier created `path`'s parent and should try to
    /// clean it up on drop.
    own_dir: Option<PathBuf>,
    present: Mutex<Vec<bool>>,
    record_len: usize,
    entries: AtomicUsize,
}

impl DiskTier {
    /// Creates (truncating) the record file under `dir` for `n_keys`
    /// payloads of exactly `record_len` bytes.
    pub fn create(dir: &Path, n_keys: usize, record_len: usize) -> Result<Self, AmcError> {
        let io = |detail: String| AmcError::TierIo { tier: "disk", detail };
        let own_dir = if dir.exists() {
            None
        } else {
            std::fs::create_dir_all(dir).map_err(|e| io(format!("{}: {e}", dir.display())))?;
            Some(dir.to_path_buf())
        };
        static FILE_SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("clv-tier-{}-{seq}.bin", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io(format!("{}: {e}", path.display())))?;
        Ok(Self {
            file,
            path,
            own_dir,
            present: Mutex::new(vec![false; n_keys]),
            record_len,
            entries: AtomicUsize::new(0),
        })
    }
}

impl Drop for DiskTier {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        if let Some(dir) = &self.own_dir {
            // Only succeeds when nothing else moved in; best-effort.
            let _ = std::fs::remove_dir(dir);
        }
    }
}

impl StorageTier for DiskTier {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn store(&self, key: u32, raw: &[u8]) -> Result<(), AmcError> {
        use std::os::unix::fs::FileExt;
        debug_assert_eq!(raw.len(), self.record_len);
        let off = key as u64 * self.record_len as u64;
        self.file
            .write_all_at(raw, off)
            .map_err(|e| AmcError::TierIo { tier: "disk", detail: format!("write: {e}") })?;
        let mut p = self.present.lock().unwrap_or_else(|e| e.into_inner());
        if key as usize >= p.len() {
            p.resize(key as usize + 1, false);
        }
        if !p[key as usize] {
            p[key as usize] = true;
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn load(&self, key: u32) -> Result<Option<Vec<u8>>, AmcError> {
        use std::os::unix::fs::FileExt;
        {
            let p = self.present.lock().unwrap_or_else(|e| e.into_inner());
            if !p.get(key as usize).copied().unwrap_or(false) {
                return Ok(None);
            }
        }
        let mut raw = vec![0u8; self.record_len];
        let off = key as u64 * self.record_len as u64;
        self.file
            .read_exact_at(&mut raw, off)
            .map_err(|e| AmcError::TierIo { tier: "disk", detail: format!("read: {e}") })?;
        Ok(Some(raw))
    }

    fn remove(&self, key: u32) {
        let mut p = self.present.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = p.get_mut(key as usize) {
            if *slot {
                *slot = false;
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn stored_bytes(&self) -> usize {
        self.entries.load(Ordering::Relaxed) * self.record_len
    }

    fn ram_bytes(&self) -> usize {
        self.present.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn entries(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Tier configuration
// ---------------------------------------------------------------------------

/// Which tiers to run and under what constraints (the `--storage-tiers`
/// / `--tier-dir` / `--tier-budget` surface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierConfig {
    /// Demotion preference order; a victim lands in the first tier
    /// with room.
    pub kinds: Vec<TierKind>,
    /// Directory for the disk arena; `None` uses a per-process temp
    /// directory that is removed with the store.
    pub dir: Option<PathBuf>,
    /// Byte cap across all tier payloads; exceeding it turns demotions
    /// into drops. `None` is unbounded.
    pub budget_bytes: Option<usize>,
}

impl TierConfig {
    /// Parses a `--storage-tiers` spec: comma-separated tier names in
    /// demotion-preference order, e.g. `compressed,disk`.
    pub fn parse(spec: &str) -> Result<TierConfig, AmcError> {
        let bad = |detail: String| AmcError::TierIo { tier: "config", detail };
        let mut kinds = Vec::new();
        for part in spec.split(',').map(str::trim) {
            if part.is_empty() {
                return Err(bad(format!("empty tier name in {spec:?}")));
            }
            let kind = TierKind::parse(part).ok_or_else(|| {
                bad(format!("unknown tier {part:?} (expected ram, compressed, or disk)"))
            })?;
            if kinds.contains(&kind) {
                return Err(bad(format!("tier {part:?} listed twice in {spec:?}")));
            }
            kinds.push(kind);
        }
        if kinds.is_empty() {
            return Err(bad("no tiers named".to_string()));
        }
        Ok(TierConfig { kinds, dir: None, budget_bytes: None })
    }

    /// Sets the disk-arena directory.
    pub fn with_dir(mut self, dir: PathBuf) -> Self {
        self.dir = Some(dir);
        self
    }

    /// Sets the tier byte budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), AmcError> {
        let bad = |detail: &str| AmcError::TierIo { tier: "config", detail: detail.to_string() };
        if self.kinds.is_empty() {
            return Err(bad("at least one tier is required"));
        }
        if self.budget_bytes == Some(0) {
            return Err(bad("tier budget must be non-zero"));
        }
        if self.dir.is_some() && !self.kinds.contains(&TierKind::Disk) {
            return Err(bad("--tier-dir given but no disk tier configured"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Traffic statistics
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct TierCounters {
    demotions: AtomicU64,
    writebacks: AtomicU64,
    writeback_lost: AtomicU64,
    drops_cost: AtomicU64,
    drops_budget: AtomicU64,
    reloads: AtomicU64,
    reload_misses: AtomicU64,
    corrupt: AtomicU64,
    prefetches: AtomicU64,
}

/// Snapshot of a [`TieredStore`]'s traffic counters. Collected
/// unconditionally (independent of the `obs` feature) so tests and
/// `RunReport` can assert on tier behavior in any build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Victims accepted for demotion (payload staged for writeback).
    pub demotions: u64,
    /// Writebacks that reached a tier.
    pub writebacks: u64,
    /// Writebacks lost before landing (crash-during-writeback).
    pub writeback_lost: u64,
    /// Victims dropped because recompute was estimated cheaper.
    pub drops_cost: u64,
    /// Victims dropped because the tier budget was exhausted.
    pub drops_budget: u64,
    /// Misses answered from a tier (promotion back to hot).
    pub reloads: u64,
    /// Fetches that found no usable entry (recompute follows).
    pub reload_misses: u64,
    /// Entries quarantined after a CRC mismatch on reload.
    pub corrupt: u64,
    /// Keys promoted to staging ahead of predicted reuse.
    pub prefetches: u64,
}

impl TierCounters {
    fn snapshot(&self) -> TierStats {
        TierStats {
            demotions: self.demotions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            writeback_lost: self.writeback_lost.load(Ordering::Relaxed),
            drops_cost: self.drops_cost.load(Ordering::Relaxed),
            drops_budget: self.drops_budget.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_misses: self.reload_misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
        }
    }
}

// Interned obs handles (no-ops unless built with the obs feature).
fn obs_reload_ns() -> &'static phylo_obs::Histogram {
    static H: OnceLock<&'static phylo_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| phylo_obs::histogram("tier.reload_ns"))
}

fn obs_writeback_ns() -> &'static phylo_obs::Histogram {
    static H: OnceLock<&'static phylo_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| phylo_obs::histogram("tier.writeback_ns"))
}

// ---------------------------------------------------------------------------
// EWMA latency cells (f64 bits in an AtomicU64; single-writer updates
// are Relaxed read-modify-write — contention loses a sample, not data)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Ewma(AtomicU64);

impl Ewma {
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn update(&self, sample: f64) {
        let old = self.get();
        let new = if old == 0.0 { sample } else { old * 0.8 + sample * 0.2 };
        self.0.store(new.to_bits(), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// TieredStore
// ---------------------------------------------------------------------------

enum Job {
    Writeback { key: u32 },
    Prefetch { keys: Vec<u32> },
    Shutdown,
}

struct Inner {
    tiers: Vec<Box<dyn StorageTier>>,
    /// key → (tier index, CRC of the raw payload at store time).
    index: Mutex<HashMap<u32, (usize, u32)>>,
    /// Raw payloads awaiting writeback (also served to readers).
    staging: Mutex<HashMap<u32, Arc<Vec<u8>>>>,
    /// One-shot RAM copies pulled ahead of predicted reuse. Unlike
    /// `staging` these have no pending writeback (the tier keeps the
    /// authoritative copy), so a fetch consumes the entry and `drain`
    /// does not wait on them.
    prefetched: Mutex<HashMap<u32, Arc<Vec<u8>>>>,
    clv_len: usize,
    patterns: usize,
    /// Recompute-cost proxy per CLV key (descendant operation count);
    /// empty means "unknown" and the model stays optimistic.
    costs: Vec<f64>,
    budget_bytes: Option<usize>,
    counters: TierCounters,
    /// Measured reload latency per tier (index-aligned with `tiers`).
    reload_ns: Vec<Ewma>,
    /// Measured kernel nanoseconds per unit of recompute cost.
    recompute_ns_per_cost: Ewma,
    tracker: Option<Arc<Mutex<MemoryTracker>>>,
}

impl Inner {
    fn raw_len(&self) -> usize {
        self.clv_len * 8 + self.patterns * 4
    }

    fn serialize(&self, clv: &[f64], scales: &[u32]) -> Vec<u8> {
        let mut raw = Vec::with_capacity(self.raw_len());
        for v in clv {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        for s in scales {
            raw.extend_from_slice(&s.to_le_bytes());
        }
        raw
    }

    fn deserialize(&self, raw: &[u8], clv: &mut [f64], scales: &mut [u32]) {
        debug_assert_eq!(raw.len(), self.raw_len());
        for (i, v) in clv.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&raw[i * 8..i * 8 + 8]);
            *v = f64::from_le_bytes(b);
        }
        let base = self.clv_len * 8;
        for (i, s) in scales.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&raw[base + i * 4..base + i * 4 + 4]);
            *s = u32::from_le_bytes(b);
        }
    }

    fn payload_bytes(&self) -> usize {
        let staged: usize =
            self.staging.lock().unwrap_or_else(|e| e.into_inner()).values().map(|p| p.len()).sum();
        staged + self.tiers.iter().map(|t| t.stored_bytes()).sum::<usize>()
    }

    /// Re-derives the tracker's tier categories from the tiers' own
    /// byte counts (called after every mutation on the worker thread
    /// and after synchronous drops).
    fn sync_tracker(&self) {
        let Some(tracker) = &self.tracker else { return };
        let mut ram = 0usize;
        let mut disk = 0usize;
        for t in &self.tiers {
            if t.name() == "disk" {
                disk += t.ram_bytes();
            } else {
                ram += t.ram_bytes();
            }
        }
        ram += self
            .staging
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|p| p.len())
            .sum::<usize>();
        ram += self
            .prefetched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|p| p.len())
            .sum::<usize>();
        let mut tr = tracker.lock().unwrap_or_else(|e| e.into_inner());
        let cur_ram = tr.current(MemCategory::CompressedTier);
        let cur_disk = tr.current(MemCategory::DiskTier);
        tr.release(MemCategory::CompressedTier, cur_ram);
        tr.allocate(MemCategory::CompressedTier, ram);
        tr.release(MemCategory::DiskTier, cur_disk);
        tr.allocate(MemCategory::DiskTier, disk);
    }

    /// The writeback worker body: compress/write one staged payload
    /// into the first accepting tier.
    fn write_back(&self, key: u32) {
        let Some(raw) = self.staging.lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned()
        else {
            return; // dropped in the meantime
        };
        if phylo_faults::fire("tier::writeback_crash") {
            // The demoted payload dies before reaching any tier: the
            // entry simply never exists and a later miss recomputes.
            self.counters.writeback_lost.fetch_add(1, Ordering::Relaxed);
            self.staging.lock().unwrap_or_else(|e| e.into_inner()).remove(&key);
            self.sync_tracker();
            return;
        }
        let crc = crc32(&raw);
        let t0 = std::time::Instant::now();
        let mut landed = None;
        for (ti, tier) in self.tiers.iter().enumerate() {
            match tier.store(key, &raw) {
                Ok(()) => {
                    landed = Some(ti);
                    break;
                }
                Err(_) => continue,
            }
        }
        match landed {
            Some(ti) => {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs_writeback_ns().record_ns(ns);
                self.index.lock().unwrap_or_else(|e| e.into_inner()).insert(key, (ti, crc));
                self.counters.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.counters.writeback_lost.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.staging.lock().unwrap_or_else(|e| e.into_inner()).remove(&key);
        self.sync_tracker();
    }

    /// Prefetch: pull keys from their tier into the prefetch cache so
    /// the predicted reload is a RAM copy, not an I/O.
    fn prefetch(&self, keys: &[u32]) {
        for &key in keys {
            if self.staging.lock().unwrap_or_else(|e| e.into_inner()).contains_key(&key) {
                continue;
            }
            if self.prefetched.lock().unwrap_or_else(|e| e.into_inner()).contains_key(&key) {
                continue;
            }
            let Some((ti, crc)) =
                self.index.lock().unwrap_or_else(|e| e.into_inner()).get(&key).copied()
            else {
                continue;
            };
            // Only worth staging for tiers slower than a RAM copy.
            if self.tiers[ti].name() != "disk" {
                continue;
            }
            let Ok(Some(raw)) = self.tiers[ti].load(key) else { continue };
            if crc32(&raw) != crc {
                continue; // the demand path will quarantine it
            }
            self.counters.prefetches.fetch_add(1, Ordering::Relaxed);
            self.prefetched.lock().unwrap_or_else(|e| e.into_inner()).insert(key, Arc::new(raw));
        }
        self.sync_tracker();
    }
}

/// The demotion/reload orchestrator attached to a `SlotArena`. All
/// methods are `&self`; demotion copies are synchronous (RAM memcpy)
/// but encode/write-back happens on a dedicated worker thread.
pub struct TieredStore {
    inner: Arc<Inner>,
    tx: mpsc::Sender<Job>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TieredStore {
    /// Builds the configured tiers for a run with `n_keys` directed
    /// edges and slot payloads of `clv_len` doubles + `patterns`
    /// scalers. `costs[key]` is the recompute-cost proxy (descendant
    /// operation count) the demote-vs-drop model uses; pass an empty
    /// vec to keep the model optimistic. `tracker`, when given, keeps
    /// the [`MemoryTracker`]'s `compressed-tier`/`disk-tier` rows in
    /// sync with live tier occupancy.
    pub fn new(
        cfg: &TierConfig,
        n_keys: usize,
        clv_len: usize,
        patterns: usize,
        costs: Vec<f64>,
        tracker: Option<Arc<Mutex<MemoryTracker>>>,
    ) -> Result<Arc<TieredStore>, AmcError> {
        cfg.validate()?;
        let raw_len = clv_len * 8 + patterns * 4;
        let mut tiers: Vec<Box<dyn StorageTier>> = Vec::new();
        for kind in &cfg.kinds {
            match kind {
                TierKind::Ram => tiers.push(Box::new(RamTier::new())),
                TierKind::Compressed => {
                    tiers.push(Box::new(CompressedTier::new(clv_len * 8, raw_len)))
                }
                TierKind::Disk => {
                    let dir = cfg.dir.clone().unwrap_or_else(|| {
                        std::env::temp_dir()
                            .join(format!("phyloplace-tiers-{}", std::process::id()))
                    });
                    tiers.push(Box::new(DiskTier::create(&dir, n_keys, raw_len)?));
                }
            }
        }
        let reload_ns = (0..tiers.len()).map(|_| Ewma::default()).collect();
        let inner = Arc::new(Inner {
            tiers,
            index: Mutex::new(HashMap::new()),
            staging: Mutex::new(HashMap::new()),
            prefetched: Mutex::new(HashMap::new()),
            clv_len,
            patterns,
            costs,
            budget_bytes: cfg.budget_bytes,
            counters: TierCounters::default(),
            reload_ns,
            recompute_ns_per_cost: Ewma::default(),
            tracker,
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("tier-writeback".to_string())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Writeback { key } => worker_inner.write_back(key),
                        Job::Prefetch { keys } => worker_inner.prefetch(&keys),
                        Job::Shutdown => break,
                    }
                }
            })
            .map_err(|e| AmcError::TierIo { tier: "config", detail: format!("spawn: {e}") })?;
        Ok(Arc::new(TieredStore { inner, tx, worker: Mutex::new(Some(worker)) }))
    }

    /// Offers an evicted, *published* CLV for demotion. Returns `true`
    /// when the payload was staged (the common case); `false` when the
    /// cost model or tier budget said to drop it. Never blocks on I/O:
    /// the copy is a memcpy, the encode/write happens on the worker.
    pub fn offer(&self, key: ClvKey, clv: &[f64], scales: &[u32]) -> bool {
        let inner = &self.inner;
        {
            let idx = inner.index.lock().unwrap_or_else(|e| e.into_inner());
            if idx.contains_key(&key.0) {
                return true; // write-once: contents cannot have changed
            }
        }
        if inner.staging.lock().unwrap_or_else(|e| e.into_inner()).contains_key(&key.0) {
            return true;
        }
        // Cost model: demote only when a reload is expected to beat
        // recomputation. Either side unmeasured → optimistic demote.
        let reload = inner.reload_ns.first().map_or(0.0, Ewma::get);
        let per_cost = inner.recompute_ns_per_cost.get();
        let cost = inner.costs.get(key.0 as usize).copied().unwrap_or(0.0);
        if reload > 0.0 && per_cost > 0.0 && cost > 0.0 && reload >= per_cost * cost {
            inner.counters.drops_cost.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let raw_len = inner.raw_len();
        if let Some(budget) = inner.budget_bytes {
            if inner.payload_bytes() + raw_len > budget {
                inner.counters.drops_budget.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        let raw = Arc::new(inner.serialize(clv, scales));
        inner.staging.lock().unwrap_or_else(|e| e.into_inner()).insert(key.0, raw);
        inner.counters.demotions.fetch_add(1, Ordering::Relaxed);
        inner.sync_tracker();
        let _ = self.tx.send(Job::Writeback { key: key.0 });
        true
    }

    /// Tries to answer a miss from the tiers, writing the payload into
    /// the caller's (exclusively held) slot buffers. `true` promotes
    /// the CLV back to hot; `false` means recompute (absent, I/O
    /// failure, or CRC mismatch — the latter quarantines the entry).
    pub fn fetch_into(&self, key: ClvKey, clv: &mut [f64], scales: &mut [u32]) -> bool {
        let inner = &self.inner;
        let t0 = std::time::Instant::now();
        // Staging holds the raw payload — serve it directly.
        let staged = inner.staging.lock().unwrap_or_else(|e| e.into_inner()).get(&key.0).cloned();
        if let Some(raw) = staged {
            inner.deserialize(&raw, clv, scales);
            inner.counters.reloads.fetch_add(1, Ordering::Relaxed);
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            obs_reload_ns().record_ns(ns);
            if let Some(cell) = inner.reload_ns.first() {
                cell.update(ns as f64);
            }
            return true;
        }
        // A prefetched copy is one-shot: consume it (the tier still
        // holds the authoritative bytes for any later miss).
        let pre = inner.prefetched.lock().unwrap_or_else(|e| e.into_inner()).remove(&key.0);
        if let Some(raw) = pre {
            inner.deserialize(&raw, clv, scales);
            inner.counters.reloads.fetch_add(1, Ordering::Relaxed);
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            obs_reload_ns().record_ns(ns);
            if let Some(cell) = inner.reload_ns.first() {
                cell.update(ns as f64);
            }
            inner.sync_tracker();
            return true;
        }
        let Some((ti, crc)) =
            inner.index.lock().unwrap_or_else(|e| e.into_inner()).get(&key.0).copied()
        else {
            inner.counters.reload_misses.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let mut raw = match inner.tiers[ti].load(key.0) {
            Ok(Some(raw)) => raw,
            Ok(None) | Err(_) => {
                inner.counters.reload_misses.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        };
        if phylo_faults::fire("tier::corrupt_reload") {
            // Simulated bit-rot between store and load.
            if let Some(b) = raw.first_mut() {
                *b ^= 0xFF;
            }
        }
        if crc32(&raw) != crc {
            // Never hand corrupt data to the kernels: quarantine the
            // entry and fall back to recomputation.
            inner.counters.corrupt.fetch_add(1, Ordering::Relaxed);
            inner.counters.reload_misses.fetch_add(1, Ordering::Relaxed);
            inner.tiers[ti].remove(key.0);
            inner.index.lock().unwrap_or_else(|e| e.into_inner()).remove(&key.0);
            inner.sync_tracker();
            return false;
        }
        inner.deserialize(&raw, clv, scales);
        inner.counters.reloads.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        obs_reload_ns().record_ns(ns);
        inner.reload_ns[ti].update(ns as f64);
        true
    }

    /// Requests background promotion of `keys` toward RAM ahead of
    /// their predicted reuse (driven by the traversal schedule).
    pub fn prefetch(&self, keys: &[ClvKey]) {
        if keys.is_empty() {
            return;
        }
        let _ = self.tx.send(Job::Prefetch { keys: keys.iter().map(|k| k.0).collect() });
    }

    /// Feeds the cost model one measured recomputation: `key`'s CLV
    /// took `ns` of kernel time.
    pub fn note_recompute(&self, key: ClvKey, ns: u64) {
        let cost = self.inner.costs.get(key.0 as usize).copied().unwrap_or(0.0);
        if cost > 0.0 {
            self.inner.recompute_ns_per_cost.update(ns as f64 / cost);
        }
    }

    /// Blocks until every queued writeback has been processed (tests
    /// and orderly shutdown). The worker drains jobs in order and every
    /// staged payload has a queued job, so an empty staging map means
    /// all prior writebacks landed (or were dropped by a fault).
    pub fn drain(&self) {
        loop {
            let empty = self.inner.staging.lock().unwrap_or_else(|e| e.into_inner()).is_empty();
            if empty {
                return;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Current traffic counters.
    pub fn stats(&self) -> TierStats {
        self.inner.counters.snapshot()
    }

    /// Per-tier occupancy: `(name, entries, stored bytes)`.
    pub fn occupancy(&self) -> Vec<(&'static str, usize, usize)> {
        self.inner.tiers.iter().map(|t| (t.name(), t.entries(), t.stored_bytes())).collect()
    }

    /// Measured reload-latency EWMA per tier, ns (`0.0` = unmeasured).
    pub fn reload_latency_ns(&self) -> Vec<(&'static str, f64)> {
        self.inner
            .tiers
            .iter()
            .zip(&self.inner.reload_ns)
            .map(|(t, e)| (t.name(), e.get()))
            .collect()
    }

    /// Measured recompute ns per unit cost (`0.0` = unmeasured).
    pub fn recompute_ns_per_cost(&self) -> f64 {
        self.inner.recompute_ns_per_cost.get()
    }
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(worker) = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("tiers", &self.occupancy())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn shuffle_round_trips() {
        let data: Vec<u8> = (0..64u8).collect();
        for stride in [1, 2, 4, 8] {
            assert_eq!(unshuffle(&shuffle(&data, stride), stride), data, "stride {stride}");
        }
    }

    #[test]
    fn rle_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],
            (0..=255u8).collect(),
            (0..=255u8).chain(std::iter::repeat(9).take(300)).chain(0..=255u8).collect(),
            vec![1, 1, 2, 2, 3, 3], // runs too short to encode
        ];
        for case in cases {
            let packed = rle_compress(&case);
            assert_eq!(rle_decompress(&packed, case.len()).unwrap(), case);
        }
    }

    #[test]
    fn rle_compresses_runs() {
        let data = vec![0u8; 4096];
        let packed = rle_compress(&data);
        assert!(packed.len() < 100, "4096 zeros packed to {}", packed.len());
    }

    #[test]
    fn rle_rejects_corrupt_lengths() {
        let packed = rle_compress(&[1, 2, 3, 4]);
        assert!(rle_decompress(&packed, 3).is_err());
        assert!(rle_decompress(&packed, 5).is_err());
        assert!(rle_decompress(&[200], 4).is_err(), "truncated run block");
        assert!(rle_decompress(&[5, 1, 2], 4).is_err(), "truncated literal block");
    }

    fn payload(n: usize) -> (Vec<f64>, Vec<u32>) {
        let clv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
        let scales: Vec<u32> = (0..n / 4).map(|i| (i % 3) as u32).collect();
        (clv, scales)
    }

    #[test]
    fn compressed_tier_round_trips() {
        let (clv, scales) = payload(64);
        let raw_len = clv.len() * 8 + scales.len() * 4;
        let tier = CompressedTier::new(clv.len() * 8, raw_len);
        let mut raw = Vec::new();
        for v in &clv {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        for s in &scales {
            raw.extend_from_slice(&s.to_le_bytes());
        }
        tier.store(3, &raw).unwrap();
        assert_eq!(tier.entries(), 1);
        assert!(tier.stored_bytes() > 0);
        assert_eq!(tier.load(3).unwrap().unwrap(), raw);
        assert_eq!(tier.load(4).unwrap(), None);
        tier.remove(3);
        assert_eq!(tier.entries(), 0);
        assert_eq!(tier.stored_bytes(), 0);
    }

    #[test]
    fn disk_tier_round_trips() {
        let dir = std::env::temp_dir().join(format!("tier-test-{}", std::process::id()));
        let tier = DiskTier::create(&dir, 8, 32).unwrap();
        let a = [0xABu8; 32];
        let b = [0x11u8; 32];
        tier.store(0, &a).unwrap();
        tier.store(7, &b).unwrap();
        assert_eq!(tier.load(0).unwrap().unwrap(), a);
        assert_eq!(tier.load(7).unwrap().unwrap(), b);
        assert_eq!(tier.load(3).unwrap(), None);
        assert_eq!(tier.entries(), 2);
        assert_eq!(tier.stored_bytes(), 64);
        tier.remove(0);
        assert_eq!(tier.load(0).unwrap(), None);
        assert_eq!(tier.entries(), 1);
    }

    #[test]
    fn tier_config_parses_and_validates() {
        let cfg = TierConfig::parse("compressed,disk").unwrap();
        assert_eq!(cfg.kinds, vec![TierKind::Compressed, TierKind::Disk]);
        cfg.validate().unwrap();
        assert_eq!(TierConfig::parse("ram").unwrap().kinds, vec![TierKind::Ram]);
        assert!(TierConfig::parse("").is_err());
        assert!(TierConfig::parse("ssd").is_err());
        assert!(TierConfig::parse("ram,ram").is_err());
        assert!(TierConfig::parse("ram,").is_err());
        let bad = TierConfig::parse("ram").unwrap().with_budget(0);
        assert!(bad.validate().is_err());
        let bad = TierConfig::parse("ram").unwrap().with_dir(PathBuf::from("/tmp/x"));
        assert!(bad.validate().is_err(), "--tier-dir without a disk tier");
    }

    fn store_with(spec: &str, budget: Option<usize>) -> Arc<TieredStore> {
        let mut cfg = TierConfig::parse(spec).unwrap();
        if cfg.kinds.contains(&TierKind::Disk) {
            cfg = cfg.with_dir(
                std::env::temp_dir().join(format!("tierstore-test-{}", std::process::id())),
            );
        }
        cfg.budget_bytes = budget;
        TieredStore::new(&cfg, 16, 8, 4, vec![2.0; 16], None).unwrap()
    }

    #[test]
    fn store_demotes_and_reloads_for_every_tier_kind() {
        for spec in ["ram", "compressed", "disk", "compressed,disk"] {
            let store = store_with(spec, None);
            let clv: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 1.0).collect();
            let scales: Vec<u32> = vec![0, 1, 2, 3];
            assert!(store.offer(ClvKey(5), &clv, &scales), "{spec}");
            store.drain();
            let mut got_clv = vec![0.0; 8];
            let mut got_scales = vec![0u32; 4];
            assert!(store.fetch_into(ClvKey(5), &mut got_clv, &mut got_scales), "{spec}");
            assert_eq!(got_clv, clv, "{spec}");
            assert_eq!(got_scales, scales, "{spec}");
            assert!(!store.fetch_into(ClvKey(6), &mut got_clv, &mut got_scales), "{spec}");
            let s = store.stats();
            assert_eq!(s.demotions, 1, "{spec}");
            assert_eq!(s.writebacks, 1, "{spec}");
            assert_eq!(s.reloads, 1, "{spec}");
            assert_eq!(s.reload_misses, 1, "{spec}");
        }
    }

    #[test]
    fn staged_payloads_serve_reads_before_writeback_lands() {
        let store = store_with("ram", None);
        let clv = vec![1.5; 8];
        let scales = vec![7u32; 4];
        store.offer(ClvKey(0), &clv, &scales);
        // Whether or not the worker has landed it yet, the read works.
        let mut got_clv = vec![0.0; 8];
        let mut got_scales = vec![0u32; 4];
        assert!(store.fetch_into(ClvKey(0), &mut got_clv, &mut got_scales));
        assert_eq!(got_clv, clv);
    }

    #[test]
    fn budget_turns_demotions_into_drops() {
        // raw_len = 8*8 + 4*4 = 80; budget of 100 holds exactly one.
        let store = store_with("ram", Some(100));
        let clv = vec![1.0; 8];
        let scales = vec![0u32; 4];
        assert!(store.offer(ClvKey(0), &clv, &scales));
        store.drain();
        assert!(!store.offer(ClvKey(1), &clv, &scales));
        let s = store.stats();
        assert_eq!(s.demotions, 1);
        assert_eq!(s.drops_budget, 1);
    }

    #[test]
    fn offer_is_write_once() {
        let store = store_with("ram", None);
        let clv = vec![2.0; 8];
        let scales = vec![0u32; 4];
        assert!(store.offer(ClvKey(3), &clv, &scales));
        store.drain();
        assert!(store.offer(ClvKey(3), &clv, &scales));
        assert_eq!(store.stats().demotions, 1, "second offer is a no-op");
    }

    #[test]
    fn cost_model_drops_cheap_victims_once_measured() {
        let store = store_with("ram", None);
        let clv = vec![1.0; 8];
        let scales = vec![0u32; 4];
        // Teach the model: reloads are very slow, recomputes are fast.
        store.inner.reload_ns[0].update(1e9);
        store.inner.recompute_ns_per_cost.update(1.0); // 2 cost units → 2 ns
        assert!(!store.offer(ClvKey(2), &clv, &scales));
        assert_eq!(store.stats().drops_cost, 1);
        // Flip it: recompute astronomically slow → demote again.
        let store = store_with("ram", None);
        store.inner.reload_ns[0].update(10.0);
        store.inner.recompute_ns_per_cost.update(1e9);
        assert!(store.offer(ClvKey(2), &clv, &scales));
    }

    #[test]
    fn prefetch_stages_disk_entries() {
        let store = store_with("disk", None);
        let clv = vec![4.25; 8];
        let scales = vec![1u32; 4];
        store.offer(ClvKey(9), &clv, &scales);
        store.drain();
        store.prefetch(&[ClvKey(9), ClvKey(10)]);
        // Wait for the prefetch job to process.
        for _ in 0..1000 {
            if store.stats().prefetches > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert_eq!(store.stats().prefetches, 1);
        let mut got_clv = vec![0.0; 8];
        let mut got_scales = vec![0u32; 4];
        assert!(store.fetch_into(ClvKey(9), &mut got_clv, &mut got_scales));
        assert_eq!(got_clv, clv);
    }

    #[test]
    fn tracker_reflects_tier_occupancy() {
        let tracker = Arc::new(Mutex::new(MemoryTracker::new()));
        let cfg = TierConfig::parse("ram").unwrap();
        let store = TieredStore::new(&cfg, 16, 8, 4, vec![], Some(Arc::clone(&tracker))).unwrap();
        let clv = vec![1.0; 8];
        let scales = vec![0u32; 4];
        store.offer(ClvKey(0), &clv, &scales);
        store.drain();
        // One 80-byte payload resident in an in-RAM tier.
        let t = tracker.lock().unwrap();
        assert_eq!(t.current(MemCategory::CompressedTier), 80);
        assert_eq!(t.current(MemCategory::DiskTier), 0);
    }

    #[cfg(feature = "faults")]
    mod fault_tests {
        use super::*;
        use std::sync::Mutex as StdMutex;

        static LOCK: StdMutex<()> = StdMutex::new(());

        #[test]
        fn writeback_crash_loses_the_payload_cleanly() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            phylo_faults::reset();
            phylo_faults::arm("tier::writeback_crash", phylo_faults::Trigger::Always);
            let store = store_with("ram", None);
            let clv = vec![3.0; 8];
            let scales = vec![0u32; 4];
            assert!(store.offer(ClvKey(1), &clv, &scales));
            store.drain();
            phylo_faults::reset();
            let mut got_clv = vec![0.0; 8];
            let mut got_scales = vec![0u32; 4];
            // The payload died in writeback: a miss, never garbage.
            assert!(!store.fetch_into(ClvKey(1), &mut got_clv, &mut got_scales));
            let s = store.stats();
            assert_eq!(s.writeback_lost, 1);
            assert_eq!(s.writebacks, 0);
        }

        #[test]
        fn corrupt_reload_is_caught_by_crc() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            phylo_faults::reset();
            let store = store_with("disk", None);
            let clv = vec![0.125; 8];
            let scales = vec![2u32; 4];
            store.offer(ClvKey(4), &clv, &scales);
            store.drain();
            phylo_faults::arm("tier::corrupt_reload", phylo_faults::Trigger::Always);
            let mut got_clv = vec![0.0; 8];
            let mut got_scales = vec![0u32; 4];
            assert!(!store.fetch_into(ClvKey(4), &mut got_clv, &mut got_scales));
            phylo_faults::reset();
            let s = store.stats();
            assert_eq!(s.corrupt, 1);
            // The entry was quarantined: a clean retry is a plain miss.
            assert!(!store.fetch_into(ClvKey(4), &mut got_clv, &mut got_scales));
            assert_eq!(store.stats().corrupt, 1, "no second CRC failure");
        }
    }
}
