//! Capped exponential backoff with deterministic jitter.
//!
//! Two retry ladders in this workspace share the same shape: the slot
//! manager's flush-and-retry rung (pin exhaustion on a single-branch
//! block, milliseconds) and the shard coordinator's worker re-queue
//! (process restarts, hundreds of milliseconds). Both want the classic
//! schedule — delay doubles per attempt up to a cap, a bounded jitter
//! de-synchronizes competing retriers, and a success resets the ladder —
//! so the schedule lives here once, with unit tests, instead of being
//! re-derived inline at each site.
//!
//! Jitter is *deterministic*: a SplitMix64 stream seeded by the caller.
//! Retry timing then never depends on ambient entropy, which keeps the
//! crash/requeue test matrices reproducible; callers that want distinct
//! streams (one per shard) seed with their own identity.

use std::time::Duration;

/// Capped exponential backoff schedule with bounded deterministic jitter.
///
/// Attempt `k` (0-based) sleeps `min(base·2ᵏ, cap) + jitter`, where the
/// jitter is uniform in `[0, delay/2]`. The pre-jitter delay is what the
/// cap bounds, so the total sleep never exceeds `1.5 × cap`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base` and capping (pre-jitter) at `cap`,
    /// with the default jitter stream. A zero `base` degenerates to
    /// all-zero delays (useful to disable backoff in tests).
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff::with_seed(base, cap, 0)
    }

    /// As [`Backoff::new`] with a caller-chosen jitter seed, so distinct
    /// retriers (e.g. shards) get de-correlated but reproducible jitter.
    pub fn with_seed(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff { base, cap, attempt: 0, rng: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    /// Attempts taken since construction or the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next delay in the schedule: `min(base·2ᵏ, cap)` plus jitter in
    /// `[0, delay/2]`, advancing the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.peek_delay();
        let jitter_max = delay.as_nanos() as u64 / 2;
        let jitter = if jitter_max == 0 { 0 } else { self.next_u64() % (jitter_max + 1) };
        self.attempt = self.attempt.saturating_add(1);
        delay + Duration::from_nanos(jitter)
    }

    /// The pre-jitter delay the next [`Backoff::next_delay`] call will
    /// use, without advancing the schedule.
    pub fn peek_delay(&self) -> Duration {
        let doubled = self.base.saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX));
        doubled.min(self.cap)
    }

    /// Reset-on-success: the next failure starts the ladder from `base`
    /// again instead of carrying a stale, maxed-out delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// SplitMix64 step — tiny, dependency-free, and plenty for jitter.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_then_caps() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(45));
        let expected = [10, 20, 40, 45, 45, 45];
        for (k, &ms) in expected.iter().enumerate() {
            let pre = b.peek_delay();
            assert_eq!(pre, Duration::from_millis(ms), "attempt {k}");
            let d = b.next_delay();
            assert!(d >= pre, "jitter must not shrink the delay (attempt {k})");
            assert!(d <= pre + pre / 2, "jitter bounded by half the delay (attempt {k})");
        }
        assert_eq!(b.attempt(), 6);
    }

    #[test]
    fn reset_restarts_the_ladder() {
        let mut b = Backoff::new(Duration::from_millis(8), Duration::from_secs(1));
        b.next_delay();
        b.next_delay();
        assert_eq!(b.peek_delay(), Duration::from_millis(32));
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.peek_delay(), Duration::from_millis(8));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let take = |seed: u64| -> Vec<Duration> {
            let mut b =
                Backoff::with_seed(Duration::from_millis(100), Duration::from_secs(2), seed);
            (0..5).map(|_| b.next_delay()).collect()
        };
        assert_eq!(take(7), take(7), "same seed, same schedule");
        assert_ne!(take(7), take(8), "different seeds must not march in lockstep");
    }

    #[test]
    fn zero_base_disables_backoff() {
        let mut b = Backoff::new(Duration::ZERO, Duration::from_secs(1));
        for _ in 0..4 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(64));
        for _ in 0..100 {
            b.next_delay();
        }
        assert_eq!(b.peek_delay(), Duration::from_millis(64));
    }
}
