//! Replacement strategies: which slotted CLV to overwrite.
//!
//! The paper implements "a generic replacement strategy interface via a set
//! of callback functions" (§IV) with a default that evicts the CLV that is
//! *cheapest to recompute*, approximating recomputation cost by the number
//! of descendant leaves the CLV summarizes. The same interface is exposed
//! here as a trait; LRU, MRU, FIFO, and random policies are provided for
//! the ablation benchmarks (the paper's future-work "different replacement
//! strategies").

use crate::slots::{ClvKey, SlotId};

/// Read-only view of the eviction candidates, handed to
/// [`ReplacementStrategy::choose_victim`].
pub struct VictimView<'a> {
    /// Per slot: the resident CLV's raw key, or `u32::MAX` if free.
    pub(crate) slot_to_clv: &'a [u32],
    /// Per slot: pin count; only zero-pin slots may be chosen.
    pub(crate) pin_counts: &'a [u32],
}

impl<'a> VictimView<'a> {
    /// Builds a view over raw table state: `slot_to_clv[s]` is the CLV
    /// key resident in slot `s` (`u32::MAX` = free) and `pin_counts[s]`
    /// its pin count. Public so out-of-process simulators (the
    /// `phylo-replay` trace replayer) can drive the exact same strategy
    /// objects the live slot manager uses.
    pub fn new(slot_to_clv: &'a [u32], pin_counts: &'a [u32]) -> Self {
        assert_eq!(slot_to_clv.len(), pin_counts.len(), "mismatched table columns");
        VictimView { slot_to_clv, pin_counts }
    }

    /// Iterates evictable `(slot, clv)` pairs: occupied and unpinned.
    pub fn candidates(&self) -> impl Iterator<Item = (SlotId, ClvKey)> + '_ {
        self.slot_to_clv
            .iter()
            .zip(self.pin_counts)
            .enumerate()
            .filter(|&(_, (&clv, &pins))| clv != u32::MAX && pins == 0)
            .map(|(s, (&clv, _))| (SlotId(s as u32), ClvKey(clv)))
    }
}

/// The paper's callback interface for slot replacement.
///
/// `on_insert` / `on_access` / `on_evict` let a policy maintain recency or
/// order bookkeeping; `choose_victim` picks an unpinned occupied slot to
/// overwrite, or `None` if it finds none (which the manager reports as
/// [`crate::AmcError::AllSlotsPinned`]).
pub trait ReplacementStrategy: Send + Sync {
    /// Human-readable policy name (for reports and benches).
    fn name(&self) -> &'static str;
    /// A CLV was installed into a slot.
    fn on_insert(&mut self, clv: ClvKey, slot: SlotId);
    /// A resident CLV was read.
    fn on_access(&mut self, clv: ClvKey, slot: SlotId);
    /// A CLV was removed from its slot.
    fn on_evict(&mut self, clv: ClvKey, slot: SlotId);
    /// Picks the victim among the view's candidates.
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId>;
}

/// Convenient tag for constructing strategies by name (CLI/bench plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Evict the CLV cheapest to recompute (paper default).
    #[default]
    CostBased,
    /// Least recently used.
    Lru,
    /// Most recently used.
    Mru,
    /// First in, first out.
    Fifo,
    /// Uniformly random unpinned slot.
    Random,
    /// Adaptive cost × recency hybrid (the paper's §VI outlook): evict the
    /// slot with the lowest recency-discounted recomputation cost.
    CostLru,
}

impl StrategyKind {
    /// Instantiates the strategy. `costs` is required by
    /// [`StrategyKind::CostBased`] (one recomputation-cost value per CLV
    /// key) and ignored by the others.
    pub fn build(self, costs: Option<Vec<f64>>) -> Box<dyn ReplacementStrategy> {
        match self {
            StrategyKind::CostBased => Box::new(CostBased::new(
                costs.expect("CostBased strategy requires a recomputation-cost table"),
            )),
            StrategyKind::Lru => Box::new(Lru::new()),
            StrategyKind::Mru => Box::new(Mru::new()),
            StrategyKind::Fifo => Box::new(Fifo::new()),
            StrategyKind::Random => Box::new(RandomEvict::new(0x5eed)),
            StrategyKind::CostLru => Box::new(CostLru::new(
                costs.expect("CostLru strategy requires a recomputation-cost table"),
            )),
        }
    }

    /// All kinds, for ablation sweeps.
    pub fn all() -> [StrategyKind; 6] {
        [
            StrategyKind::CostBased,
            StrategyKind::Lru,
            StrategyKind::Mru,
            StrategyKind::Fifo,
            StrategyKind::Random,
            StrategyKind::CostLru,
        ]
    }

    /// True for kinds whose constructor requires a cost table.
    pub fn needs_costs(self) -> bool {
        matches!(self, StrategyKind::CostBased | StrategyKind::CostLru)
    }

    /// Parses a kind from its `Display` name (the CLI's `--strategy`
    /// vocabulary); `"cost-based"` is accepted as an alias for `"cost"`.
    pub fn parse(s: &str) -> Option<StrategyKind> {
        Some(match s {
            "cost" | "cost-based" => StrategyKind::CostBased,
            "lru" => StrategyKind::Lru,
            "mru" => StrategyKind::Mru,
            "fifo" => StrategyKind::Fifo,
            "random" => StrategyKind::Random,
            "cost-lru" => StrategyKind::CostLru,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StrategyKind::CostBased => "cost",
            StrategyKind::Lru => "lru",
            StrategyKind::Mru => "mru",
            StrategyKind::Fifo => "fifo",
            StrategyKind::Random => "random",
            StrategyKind::CostLru => "cost-lru",
        };
        write!(f, "{s}")
    }
}

/// Paper-default policy: evict the unpinned CLV with the lowest
/// recomputation cost (ties broken by lower CLV key, for determinism).
pub struct CostBased {
    costs: Vec<f64>,
}

impl CostBased {
    /// `costs[k]` = approximate cost of recomputing CLV `k` (the engine
    /// passes subtree leaf counts).
    pub fn new(costs: Vec<f64>) -> Self {
        CostBased { costs }
    }

    /// Access to the cost table (e.g. for pin-priority decisions).
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }
}

impl ReplacementStrategy for CostBased {
    fn name(&self) -> &'static str {
        "cost-based"
    }
    fn on_insert(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn on_access(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        view.candidates()
            .min_by(|&(_, a), &(_, b)| {
                let ca = self.costs.get(a.idx()).copied().unwrap_or(f64::INFINITY);
                let cb = self.costs.get(b.idx()).copied().unwrap_or(f64::INFINITY);
                ca.partial_cmp(&cb).unwrap().then(a.0.cmp(&b.0))
            })
            .map(|(s, _)| s)
    }
}

/// Adaptive policy (the paper's "different (e.g. adaptive …) replacement
/// strategies" outlook): combines the default cost heuristic with
/// recency. Each candidate's recomputation cost is discounted by how long
/// ago it was touched — `effective = cost / (1 + age)` — so a big subtree
/// that has gone cold can still be evicted, while recently used cheap
/// CLVs survive short reuse windows.
pub struct CostLru {
    costs: Vec<f64>,
    clock: u64,
    last_access: Vec<u64>,
}

impl CostLru {
    /// `costs[k]` = approximate recomputation cost of CLV `k`.
    pub fn new(costs: Vec<f64>) -> Self {
        CostLru { costs, clock: 0, last_access: Vec::new() }
    }

    fn stamp(&mut self, slot: SlotId) {
        self.clock += 1;
        if slot.idx() >= self.last_access.len() {
            self.last_access.resize(slot.idx() + 1, 0);
        }
        self.last_access[slot.idx()] = self.clock;
    }
}

impl ReplacementStrategy for CostLru {
    fn name(&self) -> &'static str {
        "cost-lru"
    }
    fn on_insert(&mut self, _clv: ClvKey, slot: SlotId) {
        self.stamp(slot);
    }
    fn on_access(&mut self, _clv: ClvKey, slot: SlotId) {
        self.stamp(slot);
    }
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        let now = self.clock;
        view.candidates()
            .min_by(|&(sa, a), &(sb, b)| {
                let eff = |slot: SlotId, clv: ClvKey| {
                    let cost = self.costs.get(clv.idx()).copied().unwrap_or(f64::INFINITY);
                    let age =
                        now.saturating_sub(self.last_access.get(slot.idx()).copied().unwrap_or(0));
                    cost / (1.0 + age as f64)
                };
                eff(sa, a).partial_cmp(&eff(sb, b)).unwrap().then(a.0.cmp(&b.0))
            })
            .map(|(s, _)| s)
    }
}

/// Least-recently-used eviction (classic cache baseline).
pub struct Lru {
    clock: u64,
    last_access: Vec<u64>,
}

impl Lru {
    /// An empty LRU policy.
    pub fn new() -> Self {
        Lru { clock: 0, last_access: Vec::new() }
    }

    fn stamp(&mut self, slot: SlotId) {
        self.clock += 1;
        if slot.idx() >= self.last_access.len() {
            self.last_access.resize(slot.idx() + 1, 0);
        }
        self.last_access[slot.idx()] = self.clock;
    }
}

impl Default for Lru {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementStrategy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn on_insert(&mut self, _clv: ClvKey, slot: SlotId) {
        self.stamp(slot);
    }
    fn on_access(&mut self, _clv: ClvKey, slot: SlotId) {
        self.stamp(slot);
    }
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        view.candidates()
            .min_by_key(|&(s, _)| self.last_access.get(s.idx()).copied().unwrap_or(0))
            .map(|(s, _)| s)
    }
}

/// Most-recently-used eviction — the pathological counterpoint for loops
/// that sweep more CLVs than there are slots.
pub struct Mru {
    inner: Lru,
}

impl Mru {
    /// An empty MRU policy.
    pub fn new() -> Self {
        Mru { inner: Lru::new() }
    }
}

impl Default for Mru {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementStrategy for Mru {
    fn name(&self) -> &'static str {
        "mru"
    }
    fn on_insert(&mut self, clv: ClvKey, slot: SlotId) {
        self.inner.on_insert(clv, slot);
    }
    fn on_access(&mut self, clv: ClvKey, slot: SlotId) {
        self.inner.on_access(clv, slot);
    }
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        view.candidates()
            .max_by_key(|&(s, _)| self.inner.last_access.get(s.idx()).copied().unwrap_or(0))
            .map(|(s, _)| s)
    }
}

/// First-in-first-out eviction.
pub struct Fifo {
    clock: u64,
    inserted: Vec<u64>,
}

impl Fifo {
    /// An empty FIFO policy.
    pub fn new() -> Self {
        Fifo { clock: 0, inserted: Vec::new() }
    }
}

impl Default for Fifo {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementStrategy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn on_insert(&mut self, _clv: ClvKey, slot: SlotId) {
        self.clock += 1;
        if slot.idx() >= self.inserted.len() {
            self.inserted.resize(slot.idx() + 1, 0);
        }
        self.inserted[slot.idx()] = self.clock;
    }
    fn on_access(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        view.candidates()
            .min_by_key(|&(s, _)| self.inserted.get(s.idx()).copied().unwrap_or(0))
            .map(|(s, _)| s)
    }
}

/// Uniformly random eviction (deterministic xorshift, seedable).
pub struct RandomEvict {
    state: u64,
}

impl RandomEvict {
    /// A random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomEvict { state: seed.max(1) }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

impl ReplacementStrategy for RandomEvict {
    fn name(&self) -> &'static str {
        "random"
    }
    fn on_insert(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn on_access(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn on_evict(&mut self, _clv: ClvKey, _slot: SlotId) {}
    fn choose_victim(&mut self, view: &VictimView<'_>) -> Option<SlotId> {
        let candidates: Vec<SlotId> = view.candidates().map(|(s, _)| s).collect();
        if candidates.is_empty() {
            return None;
        }
        let i = (self.next() % candidates.len() as u64) as usize;
        Some(candidates[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::{Acquire, ClvKey, SlotManager};

    #[test]
    fn lru_evicts_least_recent() {
        let m = SlotManager::new(10, 2, Box::new(Lru::new()));
        m.acquire(ClvKey(0)).unwrap();
        m.acquire(ClvKey(1)).unwrap();
        m.acquire(ClvKey(0)).unwrap(); // touch 0
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
    }

    #[test]
    fn mru_evicts_most_recent() {
        let m = SlotManager::new(10, 2, Box::new(Mru::new()));
        m.acquire(ClvKey(0)).unwrap();
        m.acquire(ClvKey(1)).unwrap();
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let m = SlotManager::new(20, 3, Box::new(RandomEvict::new(seed)));
            let mut victims = Vec::new();
            for k in 0..12 {
                if let Acquire::Evicted { victim, .. } = m.acquire(ClvKey(k)).unwrap() {
                    victims.push(victim.0);
                }
            }
            victims
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(99));
    }

    #[test]
    fn kind_round_trip() {
        for kind in StrategyKind::all() {
            let costs = kind.needs_costs().then(|| vec![1.0; 8]);
            let s = kind.build(costs);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn cost_based_ignores_pinned() {
        let m = SlotManager::new(10, 2, Box::new(CostBased::new(vec![1.0, 2.0, 3.0, 4.0])));
        let s0 = m.acquire(ClvKey(0)).unwrap().slot(); // cheapest
        m.acquire(ClvKey(1)).unwrap();
        m.pin(s0);
        // 0 is cheapest but pinned; must evict 1.
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }));
    }

    #[test]
    fn kind_display_parse_round_trip() {
        for kind in StrategyKind::all() {
            let name = kind.to_string();
            assert_eq!(StrategyKind::parse(&name), Some(kind), "{name}");
        }
        // The alias and the rejection path.
        assert_eq!(StrategyKind::parse("cost-based"), Some(StrategyKind::CostBased));
        assert_eq!(StrategyKind::parse("belady"), None, "the oracle is not a live strategy");
        assert_eq!(StrategyKind::parse("LRU"), None, "names are case-sensitive");
        assert_eq!(StrategyKind::parse(""), None);
    }

    #[test]
    fn victim_view_candidates_skip_pinned_and_free() {
        // slots: 0 holds clv 7 unpinned, 1 free, 2 holds clv 9 pinned,
        // 3 holds clv 4 unpinned.
        let slot_to_clv = [7, u32::MAX, 9, 4];
        let pin_counts = [0, 0, 2, 0];
        let view = VictimView::new(&slot_to_clv, &pin_counts);
        let cand: Vec<(u32, u32)> = view.candidates().map(|(s, c)| (s.0, c.0)).collect();
        assert_eq!(cand, vec![(0, 7), (3, 4)]);
    }

    #[test]
    #[should_panic(expected = "mismatched table columns")]
    fn victim_view_rejects_ragged_columns() {
        let _ = VictimView::new(&[1, 2], &[0]);
    }

    /// LRU recency must be maintained by accesses — and *only* accesses.
    /// Pins and unpins interleaved with the accesses must not disturb the
    /// recency order (they protect slots, they do not "use" them).
    #[test]
    fn lru_recency_survives_interleaved_pin_unpin() {
        let m = SlotManager::new(10, 3, Box::new(Lru::new()));
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        let s1 = m.acquire(ClvKey(1)).unwrap().slot();
        let s2 = m.acquire(ClvKey(2)).unwrap().slot();
        // Recency now 0 < 1 < 2. Touch 0 (making 1 the LRU), with pin
        // churn around the touch that must not count as accesses.
        m.pin(s1);
        m.pin_n(s2, 3);
        m.touch(ClvKey(0));
        m.unpin(s1).unwrap();
        for _ in 0..3 {
            m.unpin(s2).unwrap();
        }
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
        // After evicting 1, the order is 2 < 0 < 3 — but 2 is pinned now,
        // so the next eviction must fall through to 0.
        let s2b = m.lookup(ClvKey(2)).unwrap();
        assert_eq!(s2b, s2, "pinned-free slot churn must not remap resident CLVs");
        m.pin(s2b);
        let a = m.acquire(ClvKey(4)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(0), .. }), "{a:?}");
        m.unpin(s2b).unwrap();
        let _ = s0;
        m.check_invariants().unwrap();
    }

    /// After an eviction the freed slot's recency stamp must be refreshed
    /// by the incoming CLV's insert — the new occupant is the *most*
    /// recent, not the heir of the victim's staleness.
    #[test]
    fn lru_reinserted_slot_gets_fresh_recency() {
        let m = SlotManager::new(10, 2, Box::new(Lru::new()));
        m.acquire(ClvKey(0)).unwrap();
        m.acquire(ClvKey(1)).unwrap();
        // Evicts 0 (oldest); the slot is re-stamped for clv 2's insert.
        m.acquire(ClvKey(2)).unwrap();
        // If on_insert failed to stamp, clv 2's slot would still look
        // ancient and get evicted here; the correct victim is clv 1.
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
        m.check_invariants().unwrap();
    }

    #[test]
    fn mru_recency_survives_interleaved_pin_unpin() {
        let m = SlotManager::new(10, 3, Box::new(Mru::new()));
        m.acquire(ClvKey(0)).unwrap();
        let s1 = m.acquire(ClvKey(1)).unwrap().slot();
        m.acquire(ClvKey(2)).unwrap();
        // 2 is most recent, but pin churn on 1 must not promote it.
        m.pin(s1);
        m.unpin(s1).unwrap();
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(2), .. }), "{a:?}");
        // Touch 0: now 0 is most recent among residents {0, 1, 3}... but
        // pin it, and MRU must fall back to the next most recent (3).
        let s0 = m.lookup(ClvKey(0)).unwrap();
        m.touch(ClvKey(0));
        m.pin(s0);
        let a = m.acquire(ClvKey(4)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(3), .. }), "{a:?}");
        m.unpin(s0).unwrap();
        m.check_invariants().unwrap();
    }

    /// FIFO order is set at insert time: accesses and pin churn between
    /// insert and eviction must not reorder the queue.
    #[test]
    fn fifo_order_ignores_touches_and_pins() {
        let m = SlotManager::new(10, 3, Box::new(Fifo::new()));
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        m.acquire(ClvKey(1)).unwrap();
        m.acquire(ClvKey(2)).unwrap();
        // Heavy use of the oldest entry; FIFO must still evict it first.
        m.touch(ClvKey(0));
        m.acquire(ClvKey(0)).unwrap(); // a hit, not a reinsert
        m.pin(s0);
        m.unpin(s0).unwrap();
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(0), .. }), "{a:?}");
        // 3 went into 0's old slot; insertion order is now 1 < 2 < 3.
        let a = m.acquire(ClvKey(4)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
        m.check_invariants().unwrap();
    }

    /// A pinned slot is invisible to `choose_victim` even when the
    /// policy's own bookkeeping ranks it first, and becomes evictable
    /// again the moment its last pin drains.
    #[test]
    fn unpin_restores_evictability() {
        let m = SlotManager::new(10, 2, Box::new(Lru::new()));
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        m.acquire(ClvKey(1)).unwrap();
        m.pin_n(s0, 2);
        // 0 is LRU but pinned twice: evictions take 1's slot.
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
        m.unpin(s0).unwrap();
        // Still one pin left: 0 remains protected.
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(2), .. }), "{a:?}");
        m.unpin(s0).unwrap();
        // Pin fully drained: 0 is finally evictable (and is the LRU).
        let a = m.acquire(ClvKey(4)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(0), .. }), "{a:?}");
        m.check_invariants().unwrap();
    }
}
