//! The slot manager: mapping many logical CLVs onto few physical slots.
//!
//! This is the first of the paper's two AMC components (§IV): two arrays
//! map a CLV's *global index* to the *slot* currently holding it and vice
//! versa, with dedicated sentinel values for "not slotted" and "free".
//! Pinning is a per-slot counter so nested traversal phases compose.

use crate::error::AmcError;
use crate::strategy::{ReplacementStrategy, VictimView};

/// Index of a physical CLV slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// Global logical CLV index (in the placement engine: the directed-edge
/// index of the CLV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClvKey(pub u32);

impl SlotId {
    /// Raw index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ClvKey {
    /// Raw index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel: CLV is not resident in any slot.
const UNSLOTTED: u32 = u32::MAX;
/// Sentinel: slot holds no CLV.
const FREE: u32 = u32::MAX;

/// Outcome of [`SlotManager::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The CLV was already resident.
    Hit(SlotId),
    /// A free slot was assigned.
    Fresh(SlotId),
    /// A victim was evicted to make room.
    Evicted {
        /// The slot now assigned to the requested CLV.
        slot: SlotId,
        /// The CLV whose data was discarded.
        victim: ClvKey,
    },
}

impl Acquire {
    /// The slot assigned to the requested CLV, whatever the path taken.
    #[inline]
    pub fn slot(self) -> SlotId {
        match self {
            Acquire::Hit(s) | Acquire::Fresh(s) | Acquire::Evicted { slot: s, .. } => s,
        }
    }

    /// True if the CLV was already resident (no recomputation needed).
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, Acquire::Hit(_))
    }
}

/// Counters describing slot-manager traffic; the experimental harness reads
/// these to report recomputation overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// `acquire` calls that found the CLV resident.
    pub hits: u64,
    /// `acquire` calls that had to (re)assign a slot.
    pub misses: u64,
    /// Misses that discarded another CLV's data.
    pub evictions: u64,
}

/// Maps a large logical CLV index space onto a small set of physical slots.
pub struct SlotManager {
    clv_to_slot: Vec<u32>,
    slot_to_clv: Vec<u32>,
    pin_counts: Vec<u32>,
    free: Vec<u32>,
    n_pinned_slots: usize,
    stats: SlotStats,
    strategy: Box<dyn ReplacementStrategy>,
}

impl SlotManager {
    /// Creates a manager for `n_clvs` logical CLVs over `n_slots` physical
    /// slots with the given replacement strategy.
    pub fn new(n_clvs: usize, n_slots: usize, strategy: Box<dyn ReplacementStrategy>) -> Self {
        assert!(n_slots > 0, "at least one slot required");
        SlotManager {
            clv_to_slot: vec![UNSLOTTED; n_clvs],
            slot_to_clv: vec![FREE; n_slots],
            pin_counts: vec![0; n_slots],
            free: (0..n_slots as u32).rev().collect(),
            n_pinned_slots: 0,
            stats: SlotStats::default(),
            strategy,
        }
    }

    /// Number of physical slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.slot_to_clv.len()
    }

    /// Number of logical CLVs.
    #[inline]
    pub fn n_clvs(&self) -> usize {
        self.clv_to_slot.len()
    }

    /// Number of slots with a non-zero pin count.
    #[inline]
    pub fn n_pinned(&self) -> usize {
        self.n_pinned_slots
    }

    /// Number of slots currently unpinned (free or evictable).
    #[inline]
    pub fn n_unpinned(&self) -> usize {
        self.n_slots() - self.n_pinned_slots
    }

    /// Traffic counters so far.
    #[inline]
    pub fn stats(&self) -> SlotStats {
        self.stats
    }

    /// Resets the traffic counters (e.g. between measured phases).
    pub fn reset_stats(&mut self) {
        self.stats = SlotStats::default();
    }

    /// The slot currently holding `clv`, if resident.
    #[inline]
    pub fn lookup(&self, clv: ClvKey) -> Option<SlotId> {
        let s = self.clv_to_slot[clv.idx()];
        (s != UNSLOTTED).then_some(SlotId(s))
    }

    /// The CLV currently held by `slot`, if any.
    #[inline]
    pub fn occupant(&self, slot: SlotId) -> Option<ClvKey> {
        let c = self.slot_to_clv[slot.idx()];
        (c != FREE).then_some(ClvKey(c))
    }

    /// Current pin count of a slot.
    #[inline]
    pub fn pin_count(&self, slot: SlotId) -> u32 {
        self.pin_counts[slot.idx()]
    }

    /// Notifies the strategy of a read access (LRU bookkeeping et al.)
    /// without going through `acquire`.
    pub fn touch(&mut self, clv: ClvKey) {
        if let Some(slot) = self.lookup(clv) {
            self.strategy.on_access(clv, slot);
        }
    }

    /// Assigns a slot to `clv`: a hit if resident, otherwise a free slot,
    /// otherwise the strategy's victim among unpinned slots. On a miss the
    /// slot's previous contents are forgotten and the caller must recompute
    /// the CLV into it.
    pub fn acquire(&mut self, clv: ClvKey) -> Result<Acquire, AmcError> {
        if clv.idx() >= self.clv_to_slot.len() {
            return Err(AmcError::UnknownClv(clv.0));
        }
        if let Some(slot) = self.lookup(clv) {
            self.stats.hits += 1;
            self.strategy.on_access(clv, slot);
            return Ok(Acquire::Hit(slot));
        }
        self.stats.misses += 1;
        if let Some(raw) = self.free.pop() {
            let slot = SlotId(raw);
            self.install(clv, slot);
            return Ok(Acquire::Fresh(slot));
        }
        let view = VictimView {
            slot_to_clv: &self.slot_to_clv,
            pin_counts: &self.pin_counts,
        };
        let Some(victim_slot) = self.strategy.choose_victim(&view) else {
            return Err(AmcError::AllSlotsPinned {
                slots: self.n_slots(),
                pinned: self.n_pinned_slots,
            });
        };
        debug_assert_eq!(self.pin_counts[victim_slot.idx()], 0, "strategy evicted a pinned slot");
        let victim = ClvKey(self.slot_to_clv[victim_slot.idx()]);
        self.stats.evictions += 1;
        self.strategy.on_evict(victim, victim_slot);
        self.clv_to_slot[victim.idx()] = UNSLOTTED;
        self.install(clv, victim_slot);
        Ok(Acquire::Evicted { slot: victim_slot, victim })
    }

    fn install(&mut self, clv: ClvKey, slot: SlotId) {
        self.clv_to_slot[clv.idx()] = slot.0;
        self.slot_to_clv[slot.idx()] = clv.0;
        self.strategy.on_insert(clv, slot);
    }

    /// Increments a slot's pin count; pinned slots are never chosen as
    /// eviction victims.
    pub fn pin(&mut self, slot: SlotId) {
        let c = &mut self.pin_counts[slot.idx()];
        if *c == 0 {
            self.n_pinned_slots += 1;
        }
        *c += 1;
    }

    /// Adds `count` pins at once (refcounted use across a plan).
    pub fn pin_n(&mut self, slot: SlotId, count: u32) {
        if count == 0 {
            return;
        }
        let c = &mut self.pin_counts[slot.idx()];
        if *c == 0 {
            self.n_pinned_slots += 1;
        }
        *c += count;
    }

    /// Decrements a slot's pin count.
    pub fn unpin(&mut self, slot: SlotId) -> Result<(), AmcError> {
        let c = &mut self.pin_counts[slot.idx()];
        if *c == 0 {
            return Err(AmcError::NotPinned(slot.0));
        }
        *c -= 1;
        if *c == 0 {
            self.n_pinned_slots -= 1;
        }
        Ok(())
    }

    /// Forcibly clears all pins (end of a placement phase).
    pub fn unpin_all(&mut self) {
        for c in &mut self.pin_counts {
            *c = 0;
        }
        self.n_pinned_slots = 0;
    }

    /// Drops `clv` from its slot, returning the slot to the free list.
    /// No-op if not resident. The slot must not be pinned.
    pub fn invalidate(&mut self, clv: ClvKey) {
        if let Some(slot) = self.lookup(clv) {
            assert_eq!(self.pin_counts[slot.idx()], 0, "cannot invalidate a pinned slot");
            self.strategy.on_evict(clv, slot);
            self.clv_to_slot[clv.idx()] = UNSLOTTED;
            self.slot_to_clv[slot.idx()] = FREE;
            self.free.push(slot.0);
        }
    }

    /// Iterates `(clv, slot)` pairs currently resident.
    pub fn resident(&self) -> impl Iterator<Item = (ClvKey, SlotId)> + '_ {
        self.slot_to_clv
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != FREE)
            .map(|(s, &c)| (ClvKey(c), SlotId(s as u32)))
    }

    /// Checks the bijection invariant between the two maps (tests/debug).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (c, &s) in self.clv_to_slot.iter().enumerate() {
            if s != UNSLOTTED {
                if s as usize >= self.slot_to_clv.len() {
                    return Err(format!("clv {c} maps to out-of-range slot {s}"));
                }
                if self.slot_to_clv[s as usize] != c as u32 {
                    return Err(format!(
                        "clv {c} -> slot {s}, but slot {s} -> clv {}",
                        self.slot_to_clv[s as usize]
                    ));
                }
            }
        }
        let mut seen = vec![false; self.clv_to_slot.len()];
        for (s, &c) in self.slot_to_clv.iter().enumerate() {
            if c != FREE {
                if c as usize >= seen.len() {
                    return Err(format!("slot {s} holds out-of-range clv {c}"));
                }
                if seen[c as usize] {
                    return Err(format!("clv {c} resident in two slots"));
                }
                seen[c as usize] = true;
                if self.clv_to_slot[c as usize] != s as u32 {
                    return Err(format!("slot {s} -> clv {c}, but clv {c} -> {}", self.clv_to_slot[c as usize]));
                }
            }
        }
        let pinned = self.pin_counts.iter().filter(|&&p| p > 0).count();
        if pinned != self.n_pinned_slots {
            return Err(format!("pin cache {} != actual {}", self.n_pinned_slots, pinned));
        }
        Ok(())
    }
}

impl std::fmt::Debug for SlotManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotManager")
            .field("n_clvs", &self.n_clvs())
            .field("n_slots", &self.n_slots())
            .field("n_pinned", &self.n_pinned_slots)
            .field("stats", &self.stats)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CostBased, Fifo};

    fn mgr(n_clvs: usize, n_slots: usize) -> SlotManager {
        SlotManager::new(n_clvs, n_slots, Box::new(Fifo::new()))
    }

    #[test]
    fn fresh_then_hit() {
        let mut m = mgr(10, 4);
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Fresh(_)));
        let b = m.acquire(ClvKey(3)).unwrap();
        assert_eq!(b, Acquire::Hit(a.slot()));
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.stats().misses, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn eviction_when_full() {
        let mut m = mgr(10, 2);
        m.acquire(ClvKey(0)).unwrap();
        m.acquire(ClvKey(1)).unwrap();
        let a = m.acquire(ClvKey(2)).unwrap();
        match a {
            Acquire::Evicted { victim, .. } => assert_eq!(victim, ClvKey(0)), // FIFO
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(m.lookup(ClvKey(0)), None);
        assert!(m.lookup(ClvKey(2)).is_some());
        assert_eq!(m.stats().evictions, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn pinned_slots_survive() {
        let mut m = mgr(10, 2);
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        m.acquire(ClvKey(1)).unwrap();
        m.pin(s0);
        // Next eviction must take clv 1's slot, not the pinned one.
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }));
        assert!(m.lookup(ClvKey(0)).is_some());
        m.check_invariants().unwrap();
    }

    #[test]
    fn all_pinned_errors() {
        let mut m = mgr(10, 2);
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        let s1 = m.acquire(ClvKey(1)).unwrap().slot();
        m.pin(s0);
        m.pin(s1);
        let err = m.acquire(ClvKey(2)).unwrap_err();
        assert!(matches!(err, AmcError::AllSlotsPinned { slots: 2, pinned: 2 }));
    }

    #[test]
    fn pin_counts_nest() {
        let mut m = mgr(4, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s);
        m.pin(s);
        assert_eq!(m.n_pinned(), 1);
        m.unpin(s).unwrap();
        assert_eq!(m.pin_count(s), 1);
        assert_eq!(m.n_pinned(), 1);
        m.unpin(s).unwrap();
        assert_eq!(m.n_pinned(), 0);
        assert!(m.unpin(s).is_err());
    }

    #[test]
    fn pin_n_counts() {
        let mut m = mgr(4, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin_n(s, 3);
        assert_eq!(m.pin_count(s), 3);
        m.pin_n(s, 0);
        assert_eq!(m.pin_count(s), 3);
        for _ in 0..3 {
            m.unpin(s).unwrap();
        }
        assert_eq!(m.n_pinned(), 0);
    }

    #[test]
    fn invalidate_releases() {
        let mut m = mgr(4, 1);
        m.acquire(ClvKey(0)).unwrap();
        m.invalidate(ClvKey(0));
        assert_eq!(m.lookup(ClvKey(0)), None);
        // Slot is free again: next acquire is Fresh, not Evicted.
        assert!(matches!(m.acquire(ClvKey(1)).unwrap(), Acquire::Fresh(_)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn unknown_clv_rejected() {
        let mut m = mgr(3, 2);
        assert!(matches!(m.acquire(ClvKey(7)), Err(AmcError::UnknownClv(7))));
    }

    #[test]
    fn cost_based_evicts_cheapest() {
        let costs = vec![5.0, 1.0, 3.0, 4.0];
        let mut m = SlotManager::new(4, 2, Box::new(CostBased::new(costs)));
        m.acquire(ClvKey(0)).unwrap(); // cost 5
        m.acquire(ClvKey(1)).unwrap(); // cost 1
        // clv 2 arrives: evict the cheapest-to-recompute resident (clv 1).
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
        // clv 3 (cost 4) arrives: residents are 0 (5) and 2 (3) -> evict 2.
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(2), .. }), "{a:?}");
        m.check_invariants().unwrap();
    }

    #[test]
    fn resident_iterates_current() {
        let mut m = mgr(5, 3);
        m.acquire(ClvKey(1)).unwrap();
        m.acquire(ClvKey(4)).unwrap();
        let mut r: Vec<u32> = m.resident().map(|(c, _)| c.0).collect();
        r.sort_unstable();
        assert_eq!(r, vec![1, 4]);
    }

    #[test]
    fn unpin_all_clears() {
        let mut m = mgr(4, 3);
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        let s1 = m.acquire(ClvKey(1)).unwrap().slot();
        m.pin_n(s0, 2);
        m.pin(s1);
        m.unpin_all();
        assert_eq!(m.n_pinned(), 0);
        m.check_invariants().unwrap();
    }
}
