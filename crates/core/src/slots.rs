//! The slot manager: mapping many logical CLVs onto few physical slots.
//!
//! This is the first of the paper's two AMC components (§IV): two arrays
//! map a CLV's *global index* to the *slot* currently holding it and vice
//! versa, with dedicated sentinel values for "not slotted" and "free".
//! Pinning is a per-slot counter so nested traversal phases compose.
//!
//! # Concurrency model
//!
//! Since the fine-grained leasing rework the manager is internally
//! synchronized and its whole API takes `&self`. Three layers of state,
//! with a strict lock order (DESIGN.md §6):
//!
//! 1. **`plan_lock`** — serializes *planning*: every code path that may
//!    remap slots (FPA planning, [`SlotManager::acquire`] via the lease
//!    API, cache flushes) runs under this mutex. Planning is short —
//!    table surgery only, never kernel work — so planners queue briefly
//!    while *execution* (CLV recomputation) proceeds concurrently.
//! 2. **the eviction table** (`inner`) — one mutex over the
//!    `slot↔clv` maps, pin counts, free list and replacement strategy.
//!    Held for O(1)/O(slots) table operations only.
//! 3. **per-slot publish latches** (`phases`) — a tiny mutex + condvar
//!    per slot flagging whether the slot's *data* is ready to read.
//!    A freshly (re)assigned slot is `Computing` until the thread that
//!    planned it publishes with [`SlotManager::mark_ready`]; readers of
//!    *other* slots never touch this latch and never block.
//!
//! Locks are always taken in that order (`plan_lock` → table → latch)
//! and a thread never *blocks* on a latch while holding the table lock,
//! which makes the design deadlock-free; the full argument lives in
//! DESIGN.md §6.
//!
//! `clv → slot` lookups are lock-free (`AtomicU32` loads): the
//! steady-state scoring path resolves residency and reads CLV data
//! without acquiring any lock. Traffic counters are atomics, so stats
//! from concurrent planners aggregate without lost updates.
//!
//! The classic `&self`-everywhere API (`acquire`, `pin`, …) remains the
//! low-level building block and is what single-owner users (benches,
//! the FPA planner, the model-based test harness) drive directly;
//! concurrent users go through [`crate::SlotArena`]'s lease API or
//! `phylo_engine`'s `ManagedStore`, which compose these primitives under
//! `plan_lock`.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use phylo_obs::slottrace::{SlotEvent, SlotTrace, NO_CLV};

use crate::cancel::CancelToken;
use crate::error::AmcError;
use crate::strategy::{ReplacementStrategy, VictimView};

/// Default publish-latch watchdog (see [`SlotManager::set_wait_timeout`]).
/// Generous: legitimate waits are bounded by one CLV recomputation, which
/// is milliseconds; the deadline only trips when the computing thread died
/// or its publish was lost, turning a deadlock into a typed error.
pub const DEFAULT_WAIT_TIMEOUT: Duration = Duration::from_secs(60);

/// How finely publish-latch waits are sliced so a blocked waiter notices
/// cancellation ([`SlotManager::set_cancel_token`]) promptly even when
/// the publish it waits for will never arrive.
const CANCEL_POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Index of a physical CLV slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// Global logical CLV index (in the placement engine: the directed-edge
/// index of the CLV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClvKey(pub u32);

impl SlotId {
    /// Raw index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ClvKey {
    /// Raw index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel: CLV is not resident in any slot.
const UNSLOTTED: u32 = u32::MAX;
/// Sentinel: slot holds no CLV.
const FREE: u32 = u32::MAX;

/// Outcome of [`SlotManager::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The CLV was already resident.
    Hit(SlotId),
    /// A free slot was assigned.
    Fresh(SlotId),
    /// A victim was evicted to make room.
    Evicted {
        /// The slot now assigned to the requested CLV.
        slot: SlotId,
        /// The CLV whose data was discarded.
        victim: ClvKey,
        /// Whether the victim's publish latch was up at eviction time.
        /// Only a ready victim holds a complete CLV worth demoting to a
        /// storage tier; an in-flight one never published. Probed
        /// *before* the latch resets for the new occupant. The bytes
        /// stay intact in the slot until the caller overwrites them, so
        /// a `true` here licenses a synchronous demotion copy.
        victim_ready: bool,
    },
}

impl Acquire {
    /// The slot assigned to the requested CLV, whatever the path taken.
    #[inline]
    pub fn slot(self) -> SlotId {
        match self {
            Acquire::Hit(s) | Acquire::Fresh(s) | Acquire::Evicted { slot: s, .. } => s,
        }
    }

    /// True if the CLV was already resident (no recomputation needed).
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, Acquire::Hit(_))
    }
}

/// Counters describing slot-manager traffic; the experimental harness reads
/// these to report recomputation overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// `acquire` calls that found the CLV resident.
    pub hits: u64,
    /// `acquire` calls that had to (re)assign a slot.
    pub misses: u64,
    /// Data discarded to make room: eviction-path misses plus poisoned
    /// slots whose mapping was torn down. A poison is counted here, at
    /// teardown — the waiter's later recompute is only a miss, so a
    /// poisoned CLV never double-counts as eviction *and* miss twice.
    pub evictions: u64,
    /// Slot (re)assignments, i.e. recomputations scheduled. Invariant:
    /// `installs == misses` — a failed acquire installs nothing.
    pub installs: u64,
    /// Successful CLV acquisitions of any kind (`acquire` hits + misses
    /// + `pin_if_ready` leases). Invariant: `acquires == hits + misses`.
    pub acquires: u64,
    /// [`SlotManager::poison`] calls (computing thread died before
    /// publishing).
    pub poisoned: u64,
    /// Failed slots returned to the free list after their pins drained.
    pub reclaimed: u64,
}

impl SlotStats {
    /// Counters accumulated since `baseline` was snapshotted. Every
    /// field is monotonic, so this is how a caller that shares one
    /// arena across many runs (the placement daemon's warm store)
    /// attributes slot traffic to a single run: snapshot before,
    /// subtract after.
    pub fn delta(&self, baseline: &SlotStats) -> SlotStats {
        SlotStats {
            hits: self.hits - baseline.hits,
            misses: self.misses - baseline.misses,
            evictions: self.evictions - baseline.evictions,
            installs: self.installs - baseline.installs,
            acquires: self.acquires - baseline.acquires,
            poisoned: self.poisoned - baseline.poisoned,
            reclaimed: self.reclaimed - baseline.reclaimed,
        }
    }
}

/// The eviction table: everything the replacement decision reads or
/// writes, under one mutex (lock level 2).
struct TableInner {
    slot_to_clv: Vec<u32>,
    pin_counts: Vec<u32>,
    free: Vec<u32>,
    n_pinned_slots: usize,
    /// Slots whose computing thread died before publishing
    /// ([`SlotManager::poison`]). A failed slot holds no mapping but still
    /// carries foreign pins (waiters that raced the failure); it returns
    /// to the free list only when the last pin drains, so the free list
    /// never hands out a slot another thread still references.
    failed: Vec<bool>,
    strategy: Box<dyn ReplacementStrategy>,
}

/// Per-slot publish latch (lock level 3): `ready == false` while the
/// planning thread that (re)assigned the slot is still computing its
/// CLV. Version counts reassignments, for lease revalidation in tests.
struct SlotPhase {
    ready: Mutex<bool>,
    cv: Condvar,
    version: AtomicU64,
}

/// Maps a large logical CLV index space onto a small set of physical slots.
///
/// Internally synchronized; see the module docs for the lock order.
pub struct SlotManager {
    /// Lock-free residency index. Written only under `inner`; readers may
    /// race with remapping and must revalidate under `inner` before
    /// trusting the mapping for anything but a hint.
    clv_to_slot: Vec<AtomicU32>,
    inner: Mutex<TableInner>,
    phases: Vec<SlotPhase>,
    plan_lock: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    installs: AtomicU64,
    acquires: AtomicU64,
    poisoned: AtomicU64,
    reclaimed: AtomicU64,
    /// Publish-latch watchdog deadline in milliseconds.
    wait_timeout_ms: AtomicU64,
    /// Cooperative shutdown flag threaded in from the run owner (see
    /// [`SlotManager::set_cancel_token`]). Latch waits poll it so
    /// cancellation can never hang behind a publish that got cancelled
    /// itself; the engine polls it per compute step.
    cancel: Mutex<CancelToken>,
    /// Fast guard for the trace recorder: one relaxed load on every hot
    /// path when tracing is off ([`SlotManager::set_slot_trace`]).
    trace_on: AtomicBool,
    /// The installed slot-access trace recorder, if any. Events are
    /// pushed *inside* the table-lock critical section of the operation
    /// they describe, so the trace is the true serialization order of
    /// table mutations — what makes offline replay bit-exact
    /// (DESIGN.md §10).
    trace: Mutex<Option<Arc<SlotTrace>>>,
}

/// Latch-wait latency histogram (`phylo-obs`); the handle is interned
/// once so the wait path never touches the registry lock.
fn wait_hist() -> &'static phylo_obs::Histogram {
    static H: std::sync::OnceLock<&'static phylo_obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| phylo_obs::histogram("slot.wait_ns"))
}

impl SlotManager {
    /// Creates a manager for `n_clvs` logical CLVs over `n_slots` physical
    /// slots with the given replacement strategy.
    pub fn new(n_clvs: usize, n_slots: usize, strategy: Box<dyn ReplacementStrategy>) -> Self {
        assert!(n_slots > 0, "at least one slot required");
        SlotManager {
            clv_to_slot: (0..n_clvs).map(|_| AtomicU32::new(UNSLOTTED)).collect(),
            inner: Mutex::new(TableInner {
                slot_to_clv: vec![FREE; n_slots],
                pin_counts: vec![0; n_slots],
                free: (0..n_slots as u32).rev().collect(),
                n_pinned_slots: 0,
                failed: vec![false; n_slots],
                strategy,
            }),
            phases: (0..n_slots)
                .map(|_| SlotPhase {
                    ready: Mutex::new(false),
                    cv: Condvar::new(),
                    version: AtomicU64::new(0),
                })
                .collect(),
            plan_lock: Mutex::new(()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            installs: AtomicU64::new(0),
            acquires: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            wait_timeout_ms: AtomicU64::new(DEFAULT_WAIT_TIMEOUT.as_millis() as u64),
            cancel: Mutex::new(CancelToken::new()),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
        }
    }

    /// Installs (or removes) a slot-access trace recorder. While a
    /// recorder is installed every table mutation appends one
    /// [`SlotEvent`] in serialization order; `None` disarms recording.
    pub fn set_slot_trace(&self, trace: Option<Arc<SlotTrace>>) {
        let armed = trace.is_some();
        *self.trace.lock().unwrap_or_else(|e| e.into_inner()) = trace;
        self.trace_on.store(armed, Ordering::Release);
    }

    /// Appends `ev` to the installed trace, if any. Called with the
    /// table lock held so events land in true serialization order; the
    /// trace mutex is strictly innermost and never held across any
    /// other lock acquisition.
    #[inline]
    fn record(&self, ev: SlotEvent) {
        if !self.trace_on.load(Ordering::Relaxed) {
            return;
        }
        if let Some(t) = self.trace.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            t.push(ev);
        }
    }

    /// Installs the run's shutdown token. Every publish-latch wait and
    /// (via [`SlotManager::cancel_token`]) every engine compute step
    /// polls it; once cancelled they return [`AmcError::Cancelled`]
    /// instead of blocking or computing further. The default token is
    /// never cancelled.
    pub fn set_cancel_token(&self, token: &CancelToken) {
        *self.cancel.lock().unwrap_or_else(|e| e.into_inner()) = token.clone();
    }

    /// A clone of the installed shutdown token (the default, inert token
    /// when none was installed).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Sets the publish-latch watchdog: [`SlotManager::wait_ready`] and
    /// [`SlotManager::wait_ready_at`] give up with
    /// [`AmcError::SlotWaitTimeout`] after this long. Tests exercising
    /// lost-publish faults lower it to keep the suite fast.
    pub fn set_wait_timeout(&self, timeout: Duration) {
        self.wait_timeout_ms.store(timeout.as_millis().max(1) as u64, Ordering::Relaxed);
    }

    /// The current watchdog deadline.
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_millis(self.wait_timeout_ms.load(Ordering::Relaxed))
    }

    fn table(&self) -> MutexGuard<'_, TableInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of physical slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.phases.len()
    }

    /// Number of logical CLVs.
    #[inline]
    pub fn n_clvs(&self) -> usize {
        self.clv_to_slot.len()
    }

    /// Number of slots with a non-zero pin count.
    #[inline]
    pub fn n_pinned(&self) -> usize {
        self.table().n_pinned_slots
    }

    /// Number of slots currently unpinned (free or evictable).
    #[inline]
    pub fn n_unpinned(&self) -> usize {
        self.n_slots() - self.n_pinned()
    }

    /// Traffic counters so far. Each counter is read atomically; a
    /// snapshot racing a concurrent `acquire` may be mid-operation
    /// (e.g. miss counted, eviction not yet), which quiescent callers
    /// (end of phase, end of run) never observe.
    #[inline]
    pub fn stats(&self) -> SlotStats {
        SlotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            acquires: self.acquires.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
        }
    }

    /// Resets the traffic counters (e.g. between measured phases).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.installs.store(0, Ordering::Relaxed);
        self.acquires.store(0, Ordering::Relaxed);
        self.poisoned.store(0, Ordering::Relaxed);
        self.reclaimed.store(0, Ordering::Relaxed);
    }

    /// The slot currently holding `clv`, if resident. Lock-free.
    ///
    /// The answer is a consistent snapshot: residency can only change
    /// under `plan_lock`, so callers that hold the plan guard — or that
    /// hold a pin on the slot (pinned slots are never remapped) — may
    /// rely on it; anyone else should treat it as a hint.
    #[inline]
    pub fn lookup(&self, clv: ClvKey) -> Option<SlotId> {
        let s = self.clv_to_slot[clv.idx()].load(Ordering::Acquire);
        (s != UNSLOTTED).then_some(SlotId(s))
    }

    /// The CLV currently held by `slot`, if any.
    #[inline]
    pub fn occupant(&self, slot: SlotId) -> Option<ClvKey> {
        let c = self.table().slot_to_clv[slot.idx()];
        (c != FREE).then_some(ClvKey(c))
    }

    /// Current pin count of a slot.
    #[inline]
    pub fn pin_count(&self, slot: SlotId) -> u32 {
        self.table().pin_counts[slot.idx()]
    }

    /// Notifies the strategy of a read access (LRU bookkeeping et al.)
    /// without going through `acquire`.
    pub fn touch(&self, clv: ClvKey) {
        let mut t = self.table();
        let s = self.clv_to_slot[clv.idx()].load(Ordering::Acquire);
        if s != UNSLOTTED {
            self.record(SlotEvent::Touch { clv: clv.0 });
            t.strategy.on_access(clv, SlotId(s));
        }
    }

    /// Assigns a slot to `clv`: a hit if resident, otherwise a free slot,
    /// otherwise the strategy's victim among unpinned slots. On a miss the
    /// slot's previous contents are forgotten, the slot's publish latch
    /// drops to *Computing*, and the caller must recompute the CLV into it
    /// and [`SlotManager::mark_ready`] it.
    ///
    /// This is a *planning* operation: concurrent callers must hold
    /// [`SlotManager::plan_guard`] (single-owner callers may skip it).
    pub fn acquire(&self, clv: ClvKey) -> Result<Acquire, AmcError> {
        if clv.idx() >= self.clv_to_slot.len() {
            return Err(AmcError::UnknownClv(clv.0));
        }
        if phylo_faults::fire("amc::spurious_all_slots_pinned") {
            let t = self.table();
            return Err(AmcError::AllSlotsPinned {
                slots: self.n_slots(),
                pinned: t.n_pinned_slots,
            });
        }
        let mut t = self.table();
        let s = self.clv_to_slot[clv.idx()].load(Ordering::Acquire);
        if s != UNSLOTTED {
            let slot = SlotId(s);
            self.record(SlotEvent::Acquire { clv: clv.0 });
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.acquires.fetch_add(1, Ordering::Relaxed);
            t.strategy.on_access(clv, slot);
            return Ok(Acquire::Hit(slot));
        }
        let mut t = &mut *t; // plain &mut TableInner, so field borrows split
        if let Some(raw) = t.free.pop() {
            let slot = SlotId(raw);
            self.record(SlotEvent::Acquire { clv: clv.0 });
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.acquires.fetch_add(1, Ordering::Relaxed);
            self.install(&mut t, clv, slot);
            return Ok(Acquire::Fresh(slot));
        }
        let view = VictimView { slot_to_clv: &t.slot_to_clv, pin_counts: &t.pin_counts };
        let Some(victim_slot) = t.strategy.choose_victim(&view) else {
            // A failed acquire is not a miss: `misses` counts installs
            // (i.e. recomputations), and nothing was installed — and it
            // is not traced: the replay simulator only sees acquires
            // that went through.
            return Err(AmcError::AllSlotsPinned {
                slots: self.n_slots(),
                pinned: t.n_pinned_slots,
            });
        };
        self.record(SlotEvent::Acquire { clv: clv.0 });
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.acquires.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(t.pin_counts[victim_slot.idx()], 0, "strategy evicted a pinned slot");
        let victim = ClvKey(t.slot_to_clv[victim_slot.idx()]);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        t.strategy.on_evict(victim, victim_slot);
        // Probe the victim's latch before `install` resets it: only a
        // published victim carries a demotable payload. `try_lock`
        // because a held latch means a publish is mid-flight — treat
        // that as not ready rather than block the planning path.
        let victim_ready = match self.phases[victim_slot.idx()].ready.try_lock() {
            Ok(r) => *r,
            Err(_) => false,
        };
        self.clv_to_slot[victim.idx()].store(UNSLOTTED, Ordering::Release);
        self.install(&mut t, clv, victim_slot);
        Ok(Acquire::Evicted { slot: victim_slot, victim, victim_ready })
    }

    /// Installs a mapping; the table lock is held by the caller. The
    /// latch drops to Computing *before* the new mapping is published so
    /// no reader can pin the slot and read stale data.
    fn install(&self, t: &mut TableInner, clv: ClvKey, slot: SlotId) {
        self.installs.fetch_add(1, Ordering::Relaxed);
        let ph = &self.phases[slot.idx()];
        {
            let mut r = ph.ready.lock().unwrap_or_else(|e| e.into_inner());
            *r = false;
            ph.version.fetch_add(1, Ordering::AcqRel);
        }
        // Wake version-snapshot waiters (`wait_ready_at`): a bumped
        // version releases them even though the latch stays down.
        ph.cv.notify_all();
        self.clv_to_slot[clv.idx()].store(slot.0, Ordering::Release);
        t.slot_to_clv[slot.idx()] = clv.0;
        t.strategy.on_insert(clv, slot);
    }

    /// Increments a slot's pin count; pinned slots are never chosen as
    /// eviction victims.
    pub fn pin(&self, slot: SlotId) {
        self.pin_n(slot, 1);
    }

    /// Adds `count` pins at once (refcounted use across a plan).
    pub fn pin_n(&self, slot: SlotId, count: u32) {
        if count == 0 {
            return;
        }
        let mut t = self.table();
        // Trace the pin in CLV terms (the slot numbering is an
        // implementation detail the simulator re-derives). A pin on an
        // unmapped slot — only possible in fault scenarios — is traced
        // with `NO_CLV` and skipped by the replay.
        let occ = t.slot_to_clv[slot.idx()];
        self.record(SlotEvent::Pin { clv: if occ == FREE { NO_CLV } else { occ }, n: count });
        t.pin_n(slot, count);
    }

    /// Decrements a slot's pin count. The last unpin of a
    /// [`SlotManager::poison`]ed slot also returns it to the free list —
    /// deferred reclamation, so a failed slot is never handed out while
    /// waiters that raced the failure still hold pins on it.
    pub fn unpin(&self, slot: SlotId) -> Result<(), AmcError> {
        let mut t = self.table();
        let occ = t.slot_to_clv[slot.idx()];
        let c = &mut t.pin_counts[slot.idx()];
        if *c == 0 {
            // Not traced: a rejected unpin changes nothing.
            return Err(AmcError::NotPinned(slot.0));
        }
        self.record(SlotEvent::Unpin { clv: if occ == FREE { NO_CLV } else { occ } });
        *c -= 1;
        if *c == 0 {
            t.n_pinned_slots -= 1;
            if t.failed[slot.idx()] {
                t.failed[slot.idx()] = false;
                debug_assert_eq!(t.slot_to_clv[slot.idx()], FREE, "failed slot kept a mapping");
                t.free.push(slot.0);
                self.reclaimed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Marks a slot **failed and reclaimable**: the thread that was
    /// computing its CLV died before publishing (a panicking
    /// [`crate::ComputeLease`] holder). The mapping is torn down under the
    /// plan guard — planning never runs concurrently with table surgery —
    /// and the slot's version is bumped with a wake-up, so latch waiters
    /// observe the mapping gone and retry instead of hanging on a publish
    /// that will never come. The caller's own pin is consumed; the slot
    /// rejoins the free list when the last foreign pin drains (see
    /// [`SlotManager::unpin`]).
    pub fn poison(&self, slot: SlotId) {
        let _plan = self.plan_guard();
        let mut t = self.table();
        self.poisoned.fetch_add(1, Ordering::Relaxed);
        let c = t.slot_to_clv[slot.idx()];
        self.record(SlotEvent::Poison { clv: if c == FREE { NO_CLV } else { c } });
        if c != FREE {
            // The teardown IS the eviction. The waiter that recomputes
            // this CLV later counts only a miss — counting here too
            // would double-book the poison as eviction + miss's
            // eviction (the old accounting bug).
            self.evictions.fetch_add(1, Ordering::Relaxed);
            t.strategy.on_evict(ClvKey(c), slot);
            self.clv_to_slot[c as usize].store(UNSLOTTED, Ordering::Release);
            t.slot_to_clv[slot.idx()] = FREE;
        }
        t.failed[slot.idx()] = true;
        let pc = &mut t.pin_counts[slot.idx()];
        debug_assert!(*pc > 0, "poison requires the caller's own pin");
        *pc = pc.saturating_sub(1);
        if *pc == 0 {
            t.n_pinned_slots -= 1;
            t.failed[slot.idx()] = false;
            t.free.push(slot.0);
            self.reclaimed.fetch_add(1, Ordering::Relaxed);
        }
        drop(t);
        let ph = &self.phases[slot.idx()];
        {
            let mut r = ph.ready.lock().unwrap_or_else(|e| e.into_inner());
            *r = false;
            ph.version.fetch_add(1, Ordering::AcqRel);
        }
        ph.cv.notify_all();
    }

    /// Forcibly clears all pins. Single-owner teardown only: under
    /// concurrency this would destroy other threads' pins, so concurrent
    /// code paths roll back their own pins precisely instead (see
    /// `fpa::ensure_resident`).
    pub fn unpin_all(&self) {
        let mut t = self.table();
        self.record(SlotEvent::UnpinAll);
        for c in &mut t.pin_counts {
            *c = 0;
        }
        t.n_pinned_slots = 0;
    }

    /// Drops `clv` from its slot, returning the slot to the free list.
    /// No-op if not resident. The slot must not be pinned. Planning
    /// operation: concurrent callers hold [`SlotManager::plan_guard`].
    pub fn invalidate(&self, clv: ClvKey) {
        let mut t = self.table();
        let s = self.clv_to_slot[clv.idx()].load(Ordering::Acquire);
        if s != UNSLOTTED {
            let slot = SlotId(s);
            assert_eq!(t.pin_counts[slot.idx()], 0, "cannot invalidate a pinned slot");
            self.record(SlotEvent::Invalidate { clv: clv.0 });
            t.strategy.on_evict(clv, slot);
            let ph = &self.phases[slot.idx()];
            {
                let mut r = ph.ready.lock().unwrap_or_else(|e| e.into_inner());
                *r = false;
                ph.version.fetch_add(1, Ordering::AcqRel);
            }
            ph.cv.notify_all();
            self.clv_to_slot[clv.idx()].store(UNSLOTTED, Ordering::Release);
            t.slot_to_clv[slot.idx()] = FREE;
            t.free.push(slot.0);
        }
    }

    /// Snapshot of the `(clv, slot)` pairs currently resident.
    pub fn resident(&self) -> Vec<(ClvKey, SlotId)> {
        self.table()
            .slot_to_clv
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != FREE)
            .map(|(s, &c)| (ClvKey(c), SlotId(s as u32)))
            .collect()
    }

    // ---- concurrency primitives -------------------------------------

    /// Serializes planning phases. Everything that may remap a slot runs
    /// under this guard; execution (kernel work, CLV reads) does not.
    /// Lock level 1 — acquired before the table lock, never after.
    pub fn plan_guard(&self) -> MutexGuard<'_, ()> {
        self.plan_lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes a slot's data: wakes every thread blocked in
    /// [`SlotManager::wait_ready`] on it.
    pub fn mark_ready(&self, slot: SlotId) {
        if phylo_faults::fire("amc::lost_publish") {
            return; // the watchdog in the waiters turns this into an error
        }
        if phylo_faults::fire("amc::delayed_publish") {
            std::thread::sleep(Duration::from_millis(20));
        }
        let ph = &self.phases[slot.idx()];
        *ph.ready.lock().unwrap_or_else(|e| e.into_inner()) = true;
        ph.cv.notify_all();
    }

    /// Publishes a slot's data **only if** the slot still carries
    /// `version` — i.e. the caller's install is the slot's latest
    /// generation. The schedule executor must use this rather than
    /// [`SlotManager::mark_ready`]: when a later op of the same schedule
    /// has already remapped the slot (see [`SlotManager::wait_ready_at`]),
    /// an unconditional publish would announce the *new* mapping as ready
    /// while the slot still holds the old generation's bytes, and a
    /// concurrent plan would read the wrong CLV. The superseded op stays
    /// silent; the final-generation op (whose version matches) publishes.
    pub fn mark_ready_at(&self, slot: SlotId, version: u64) {
        if phylo_faults::fire("amc::lost_publish") {
            return;
        }
        if phylo_faults::fire("amc::delayed_publish") {
            std::thread::sleep(Duration::from_millis(20));
        }
        let ph = &self.phases[slot.idx()];
        let mut r = ph.ready.lock().unwrap_or_else(|e| e.into_inner());
        if ph.version.load(Ordering::Acquire) == version {
            *r = true;
            drop(r);
            ph.cv.notify_all();
        }
    }

    /// Blocks until `slot`'s data is published, up to the watchdog
    /// deadline ([`SlotManager::set_wait_timeout`]). Callers must hold a
    /// pin on the slot (so it cannot be remapped underneath the wait) and
    /// must not hold the table lock (lock order: latches are innermost).
    ///
    /// `Err(SlotWaitTimeout)` means the publish never came — the
    /// computing thread died or its publish was dropped. The slot's data
    /// must then be treated as garbage.
    pub fn wait_ready(&self, slot: SlotId) -> Result<(), AmcError> {
        let ph = &self.phases[slot.idx()];
        let deadline = self.wait_timeout();
        let cancel = self.cancel_token();
        let start = Instant::now();
        let mut waited_any = false;
        let mut r = ph.ready.lock().unwrap_or_else(|e| e.into_inner());
        while !*r {
            waited_any = true;
            // A cancelled run must not sit out the full watchdog window:
            // the thread that would publish this latch may itself have
            // exited on the same token, so the wait is sliced and the
            // token re-checked at every wake.
            if cancel.is_cancelled() {
                wait_hist().record_ns(start.elapsed().as_nanos() as u64);
                return Err(AmcError::Cancelled);
            }
            let waited = start.elapsed();
            let Some(left) = deadline.checked_sub(waited) else {
                wait_hist().record_ns(waited.as_nanos() as u64);
                return Err(AmcError::SlotWaitTimeout {
                    slot: slot.0,
                    waited_ms: waited.as_millis() as u64,
                });
            };
            let slice = left.min(CANCEL_POLL_INTERVAL);
            (r, _) = ph.cv.wait_timeout(r, slice).unwrap_or_else(|e| e.into_inner());
        }
        if waited_any {
            wait_hist().record_ns(start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Blocks until `slot`'s data is published **or** the slot has been
    /// reassigned since `version` was snapshotted (its version counter no
    /// longer matches).
    ///
    /// This is the dependency wait for schedule execution. A schedule may
    /// reuse a slot: a later op can evict a CLV that an earlier op reads
    /// as a dependency, and the eviction's `install` drops the latch at
    /// *planning* time. The earlier op must not wait for that latch — it
    /// would be published only by the later op — and does not need to:
    /// installs never touch slot data, so the dependency bytes remain
    /// valid until the remapping op (which executes after the reader)
    /// overwrites them. A version mismatch is therefore proof that the
    /// recorded dependency is readable right now. While the version still
    /// matches, an unpublished slot means the CLV is being computed by
    /// the plan that installed it, whose lock-free execution always
    /// publishes — so the wait terminates, unless that plan's thread died
    /// or its publish was lost, in which case the watchdog deadline trips
    /// with [`AmcError::SlotWaitTimeout`].
    pub fn wait_ready_at(&self, slot: SlotId, version: u64) -> Result<(), AmcError> {
        let ph = &self.phases[slot.idx()];
        let deadline = self.wait_timeout();
        let cancel = self.cancel_token();
        let start = Instant::now();
        let mut waited_any = false;
        let mut r = ph.ready.lock().unwrap_or_else(|e| e.into_inner());
        while !*r && ph.version.load(Ordering::Acquire) == version {
            waited_any = true;
            if cancel.is_cancelled() {
                wait_hist().record_ns(start.elapsed().as_nanos() as u64);
                return Err(AmcError::Cancelled);
            }
            let waited = start.elapsed();
            let Some(left) = deadline.checked_sub(waited) else {
                wait_hist().record_ns(waited.as_nanos() as u64);
                return Err(AmcError::SlotWaitTimeout {
                    slot: slot.0,
                    waited_ms: waited.as_millis() as u64,
                });
            };
            let slice = left.min(CANCEL_POLL_INTERVAL);
            (r, _) = ph.cv.wait_timeout(r, slice).unwrap_or_else(|e| e.into_inner());
        }
        if waited_any {
            wait_hist().record_ns(start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Whether `slot`'s data is published (non-blocking).
    pub fn is_ready(&self, slot: SlotId) -> bool {
        *self.phases[slot.idx()].ready.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reassignment counter for `slot` (bumps on every install and
    /// invalidate). Lets tests assert a slot was not remapped across an
    /// operation.
    pub fn version(&self, slot: SlotId) -> u64 {
        self.phases[slot.idx()].version.load(Ordering::Acquire)
    }

    /// If `clv` is resident *and published*, pins its slot and returns
    /// it; otherwise `None`. This is the read-lease fast path: it never
    /// blocks, and by refusing still-Computing slots it guarantees that
    /// no foreign pins exist on slots a planner installed but has not
    /// yet published — which is what makes the planner's error rollback
    /// (unpin + invalidate its own installs) safe.
    pub fn pin_if_ready(&self, clv: ClvKey) -> Option<SlotId> {
        let mut t = self.table();
        let s = self.clv_to_slot[clv.idx()].load(Ordering::Acquire);
        if s == UNSLOTTED {
            return None;
        }
        let slot = SlotId(s);
        // Latch probe under the table lock (level 2 → 3 is the legal
        // order); try_lock never blocks, and the latch mutex is only
        // ever held for an assignment, so contention means "in flux" —
        // treat it as not ready.
        let ready = match self.phases[slot.idx()].ready.try_lock() {
            Ok(r) => *r,
            Err(_) => false,
        };
        if !ready {
            return None;
        }
        // A successful lease is a hit plus a pin: two trace events, in
        // that order (the replay counts the Acquire as the hit, then
        // applies the pin to the now-resident CLV).
        self.record(SlotEvent::Acquire { clv: clv.0 });
        self.record(SlotEvent::Pin { clv: clv.0, n: 1 });
        t.pin_n(slot, 1);
        t.strategy.on_access(clv, slot);
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.acquires.fetch_add(1, Ordering::Relaxed);
        Some(slot)
    }

    /// Checks the bijection invariant between the two maps (tests/debug).
    pub fn check_invariants(&self) -> Result<(), String> {
        let t = self.table();
        for (c, s) in self.clv_to_slot.iter().enumerate() {
            let s = s.load(Ordering::Acquire);
            if s != UNSLOTTED {
                if s as usize >= t.slot_to_clv.len() {
                    return Err(format!("clv {c} maps to out-of-range slot {s}"));
                }
                if t.slot_to_clv[s as usize] != c as u32 {
                    return Err(format!(
                        "clv {c} -> slot {s}, but slot {s} -> clv {}",
                        t.slot_to_clv[s as usize]
                    ));
                }
            }
        }
        let mut seen = vec![false; self.clv_to_slot.len()];
        for (s, &c) in t.slot_to_clv.iter().enumerate() {
            if c != FREE {
                if c as usize >= seen.len() {
                    return Err(format!("slot {s} holds out-of-range clv {c}"));
                }
                if seen[c as usize] {
                    return Err(format!("clv {c} resident in two slots"));
                }
                seen[c as usize] = true;
                if self.clv_to_slot[c as usize].load(Ordering::Acquire) != s as u32 {
                    return Err(format!(
                        "slot {s} -> clv {c}, but clv {c} -> {}",
                        self.clv_to_slot[c as usize].load(Ordering::Acquire)
                    ));
                }
            }
        }
        let st = self.stats();
        if st.installs != st.misses {
            return Err(format!(
                "counter invariant broken: installs {} != misses {}",
                st.installs, st.misses
            ));
        }
        if st.acquires != st.hits + st.misses {
            return Err(format!(
                "counter invariant broken: acquires {} != hits {} + misses {}",
                st.acquires, st.hits, st.misses
            ));
        }
        let pinned = t.pin_counts.iter().filter(|&&p| p > 0).count();
        if pinned != t.n_pinned_slots {
            return Err(format!("pin cache {} != actual {}", t.n_pinned_slots, pinned));
        }
        for &raw in &t.free {
            if t.slot_to_clv[raw as usize] != FREE {
                return Err(format!("slot {raw} is on the free list but occupied"));
            }
            if t.failed[raw as usize] {
                return Err(format!("slot {raw} is on the free list but still marked failed"));
            }
        }
        for (s, &failed) in t.failed.iter().enumerate() {
            if failed {
                if t.slot_to_clv[s] != FREE {
                    return Err(format!("failed slot {s} still holds a mapping"));
                }
                if t.pin_counts[s] == 0 {
                    return Err(format!("failed slot {s} has no pins; it should have been freed"));
                }
            }
        }
        Ok(())
    }
}

impl TableInner {
    fn pin_n(&mut self, slot: SlotId, count: u32) {
        if count == 0 {
            return;
        }
        let c = &mut self.pin_counts[slot.idx()];
        if *c == 0 {
            self.n_pinned_slots += 1;
        }
        *c += count;
    }
}

impl std::fmt::Debug for SlotManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n_pinned, strategy) = {
            let t = self.table();
            (t.n_pinned_slots, t.strategy.name())
        };
        f.debug_struct("SlotManager")
            .field("n_clvs", &self.n_clvs())
            .field("n_slots", &self.n_slots())
            .field("n_pinned", &n_pinned)
            .field("stats", &self.stats())
            .field("strategy", &strategy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CostBased, Fifo};

    fn mgr(n_clvs: usize, n_slots: usize) -> SlotManager {
        SlotManager::new(n_clvs, n_slots, Box::new(Fifo::new()))
    }

    #[test]
    fn fresh_then_hit() {
        let m = mgr(10, 4);
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Fresh(_)));
        let b = m.acquire(ClvKey(3)).unwrap();
        assert_eq!(b, Acquire::Hit(a.slot()));
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.stats().misses, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn eviction_when_full() {
        let m = mgr(10, 2);
        m.acquire(ClvKey(0)).unwrap();
        m.acquire(ClvKey(1)).unwrap();
        let a = m.acquire(ClvKey(2)).unwrap();
        match a {
            Acquire::Evicted { victim, .. } => assert_eq!(victim, ClvKey(0)), // FIFO
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(m.lookup(ClvKey(0)), None);
        assert!(m.lookup(ClvKey(2)).is_some());
        assert_eq!(m.stats().evictions, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn pinned_slots_survive() {
        let m = mgr(10, 2);
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        m.acquire(ClvKey(1)).unwrap();
        m.pin(s0);
        // Next eviction must take clv 1's slot, not the pinned one.
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }));
        assert!(m.lookup(ClvKey(0)).is_some());
        m.check_invariants().unwrap();
    }

    #[test]
    fn all_pinned_errors() {
        let m = mgr(10, 2);
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        let s1 = m.acquire(ClvKey(1)).unwrap().slot();
        m.pin(s0);
        m.pin(s1);
        let err = m.acquire(ClvKey(2)).unwrap_err();
        assert!(matches!(err, AmcError::AllSlotsPinned { slots: 2, pinned: 2 }));
    }

    #[test]
    fn pin_counts_nest() {
        let m = mgr(4, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s);
        m.pin(s);
        assert_eq!(m.n_pinned(), 1);
        m.unpin(s).unwrap();
        assert_eq!(m.pin_count(s), 1);
        assert_eq!(m.n_pinned(), 1);
        m.unpin(s).unwrap();
        assert_eq!(m.n_pinned(), 0);
        assert!(m.unpin(s).is_err());
    }

    #[test]
    fn pin_n_counts() {
        let m = mgr(4, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin_n(s, 3);
        assert_eq!(m.pin_count(s), 3);
        m.pin_n(s, 0);
        assert_eq!(m.pin_count(s), 3);
        for _ in 0..3 {
            m.unpin(s).unwrap();
        }
        assert_eq!(m.n_pinned(), 0);
    }

    #[test]
    fn invalidate_releases() {
        let m = mgr(4, 1);
        m.acquire(ClvKey(0)).unwrap();
        m.invalidate(ClvKey(0));
        assert_eq!(m.lookup(ClvKey(0)), None);
        // Slot is free again: next acquire is Fresh, not Evicted.
        assert!(matches!(m.acquire(ClvKey(1)).unwrap(), Acquire::Fresh(_)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn unknown_clv_rejected() {
        let m = mgr(3, 2);
        assert!(matches!(m.acquire(ClvKey(7)), Err(AmcError::UnknownClv(7))));
    }

    #[test]
    fn cost_based_evicts_cheapest() {
        let costs = vec![5.0, 1.0, 3.0, 4.0];
        let m = SlotManager::new(4, 2, Box::new(CostBased::new(costs)));
        m.acquire(ClvKey(0)).unwrap(); // cost 5
        m.acquire(ClvKey(1)).unwrap(); // cost 1
                                       // clv 2 arrives: evict the cheapest-to-recompute resident (clv 1).
        let a = m.acquire(ClvKey(2)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(1), .. }), "{a:?}");
        // clv 3 (cost 4) arrives: residents are 0 (5) and 2 (3) -> evict 2.
        let a = m.acquire(ClvKey(3)).unwrap();
        assert!(matches!(a, Acquire::Evicted { victim: ClvKey(2), .. }), "{a:?}");
        m.check_invariants().unwrap();
    }

    #[test]
    fn resident_iterates_current() {
        let m = mgr(5, 3);
        m.acquire(ClvKey(1)).unwrap();
        m.acquire(ClvKey(4)).unwrap();
        let mut r: Vec<u32> = m.resident().into_iter().map(|(c, _)| c.0).collect();
        r.sort_unstable();
        assert_eq!(r, vec![1, 4]);
    }

    #[test]
    fn unpin_all_clears() {
        let m = mgr(4, 3);
        let s0 = m.acquire(ClvKey(0)).unwrap().slot();
        let s1 = m.acquire(ClvKey(1)).unwrap().slot();
        m.pin_n(s0, 2);
        m.pin(s1);
        m.unpin_all();
        assert_eq!(m.n_pinned(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn install_drops_publish_latch() {
        let m = mgr(8, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        assert!(!m.is_ready(s), "fresh slot must be Computing");
        let v0 = m.version(s);
        m.mark_ready(s);
        assert!(m.is_ready(s));
        // Re-acquiring the same CLV is a hit: no latch drop, no version bump.
        m.acquire(ClvKey(0)).unwrap();
        assert!(m.is_ready(s));
        assert_eq!(m.version(s), v0);
        // Evicting it for another CLV drops the latch and bumps the version.
        m.acquire(ClvKey(1)).unwrap();
        let a = m.acquire(ClvKey(2)).unwrap();
        assert_eq!(a.slot(), s, "FIFO evicts the oldest");
        assert!(!m.is_ready(s));
        assert!(m.version(s) > v0);
    }

    #[test]
    fn pin_if_ready_refuses_computing_slots() {
        let m = mgr(8, 2);
        let s = m.acquire(ClvKey(3)).unwrap().slot();
        assert_eq!(m.pin_if_ready(ClvKey(3)), None, "unpublished slot must not lease");
        assert_eq!(m.pin_count(s), 0);
        m.mark_ready(s);
        assert_eq!(m.pin_if_ready(ClvKey(3)), Some(s));
        assert_eq!(m.pin_count(s), 1);
        assert_eq!(m.pin_if_ready(ClvKey(4)), None, "absent CLV must not lease");
        m.unpin(s).unwrap();
        m.check_invariants().unwrap();
    }

    #[test]
    fn wait_ready_blocks_until_publish() {
        use std::sync::Arc;
        let m = Arc::new(mgr(4, 2));
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s);
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            m2.wait_ready(s).unwrap();
            m2.version(s)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let v = m.version(s);
        m.mark_ready(s);
        assert_eq!(waiter.join().unwrap(), v);
    }

    #[test]
    fn wait_ready_times_out_on_lost_publish() {
        let m = mgr(4, 2);
        m.set_wait_timeout(Duration::from_millis(30));
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s);
        let err = m.wait_ready(s).unwrap_err();
        assert!(matches!(err, AmcError::SlotWaitTimeout { .. }), "{err:?}");
        // A snapshot wait on the live version also times out rather than
        // spinning forever.
        let err = m.wait_ready_at(s, m.version(s)).unwrap_err();
        assert!(matches!(err, AmcError::SlotWaitTimeout { .. }), "{err:?}");
        m.unpin(s).unwrap();
    }

    #[test]
    fn cancellation_breaks_latch_waits_promptly() {
        use std::sync::Arc;
        let m = Arc::new(mgr(4, 2));
        // Long watchdog: only the cancel token may break the wait.
        m.set_wait_timeout(Duration::from_secs(30));
        let token = CancelToken::new();
        m.set_cancel_token(&token);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s);
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || m2.wait_ready(s));
        std::thread::sleep(Duration::from_millis(10));
        let t = Instant::now();
        token.cancel();
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, AmcError::Cancelled), "{err:?}");
        assert!(t.elapsed() < Duration::from_secs(5), "cancel took {:?}", t.elapsed());
        // The snapshot wait honors the token too.
        let err = m.wait_ready_at(s, m.version(s)).unwrap_err();
        assert!(matches!(err, AmcError::Cancelled), "{err:?}");
        m.unpin(s).unwrap();
    }

    #[test]
    fn poison_defers_reclamation_until_pins_drain() {
        let m = mgr(8, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s); // the computing thread's own pin
        m.pin(s); // a foreign waiter's pin
        let v0 = m.version(s);
        m.poison(s);
        // Mapping gone, version bumped, slot NOT yet free (foreign pin).
        assert_eq!(m.lookup(ClvKey(0)), None);
        assert!(m.version(s) > v0);
        assert!(!m.is_ready(s));
        m.check_invariants().unwrap();
        // Two fresh acquires: only ONE free slot may be handed out while
        // the failed slot still carries the foreign pin.
        let a = m.acquire(ClvKey(1)).unwrap();
        assert_ne!(a.slot(), s, "failed slot leaked into the free list early");
        // The foreign waiter drains its pin: now the slot is reusable.
        m.unpin(s).unwrap();
        let b = m.acquire(ClvKey(2)).unwrap();
        assert_eq!(b.slot(), s, "reclaimed slot must be reusable");
        m.check_invariants().unwrap();
    }

    #[test]
    fn poison_counts_one_eviction_and_recompute_is_only_a_miss() {
        let m = mgr(8, 2);
        m.acquire(ClvKey(0)).unwrap(); // miss 1
        let s = m.acquire(ClvKey(1)).unwrap().slot(); // miss 2
        m.pin(s);
        m.poison(s);
        let st = m.stats();
        assert_eq!(st.evictions, 1, "poison teardown is the eviction");
        assert_eq!(st.poisoned, 1);
        assert_eq!(st.reclaimed, 1, "sole pin was the caller's: immediate reclaim");
        assert_eq!(st.misses, 2, "poison itself is not a miss");
        // The waiter recomputes the poisoned CLV: one more miss, and the
        // eviction count must NOT move again (no double-counting).
        m.acquire(ClvKey(1)).unwrap();
        let st = m.stats();
        assert_eq!(st.misses, 3);
        assert_eq!(st.evictions, 1);
        assert_eq!(st.installs, st.misses);
        assert_eq!(st.acquires, st.hits + st.misses);
        m.check_invariants().unwrap();
    }

    #[test]
    fn acquisition_counters_balance() {
        let m = mgr(10, 2);
        let s = m.acquire(ClvKey(0)).unwrap().slot(); // miss
        m.acquire(ClvKey(0)).unwrap(); // hit
        m.mark_ready(s);
        assert_eq!(m.pin_if_ready(ClvKey(0)), Some(s)); // lease hit
        m.unpin(s).unwrap();
        m.acquire(ClvKey(1)).unwrap(); // miss
        m.acquire(ClvKey(2)).unwrap(); // miss + eviction
        let st = m.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.misses, 3);
        assert_eq!(st.acquires, 5);
        assert_eq!(st.installs, 3);
        m.check_invariants().unwrap();
        m.reset_stats();
        assert_eq!(m.stats(), SlotStats::default());
    }

    #[test]
    fn stats_delta_isolates_one_runs_traffic() {
        let m = mgr(8, 2);
        m.acquire(ClvKey(0)).unwrap(); // miss
        m.acquire(ClvKey(0)).unwrap(); // hit
        let baseline = m.stats();
        m.acquire(ClvKey(1)).unwrap(); // miss
        m.acquire(ClvKey(0)).unwrap(); // hit
        m.acquire(ClvKey(1)).unwrap(); // hit
        let d = m.stats().delta(&baseline);
        assert_eq!((d.hits, d.misses, d.acquires), (2, 1, 3));
        assert_eq!(d.installs, d.misses);
        // A delta against itself is all-zero.
        assert_eq!(m.stats().delta(&m.stats()), SlotStats::default());
    }

    #[test]
    fn trace_records_table_ops_in_order() {
        let m = mgr(8, 2);
        let trace = Arc::new(SlotTrace::new());
        m.set_slot_trace(Some(Arc::clone(&trace)));
        let s0 = m.acquire(ClvKey(0)).unwrap().slot(); // fresh
        m.acquire(ClvKey(0)).unwrap(); // hit
        m.acquire(ClvKey(1)).unwrap(); // fresh
        m.pin(s0);
        m.touch(ClvKey(1));
        m.acquire(ClvKey(2)).unwrap(); // evicts 1 (FIFO; 0 is pinned)
        m.unpin(s0).unwrap();
        m.invalidate(ClvKey(2));
        m.touch(ClvKey(1)); // not resident: must NOT trace
        assert!(m.unpin(s0).is_err()); // rejected: must NOT trace
        m.unpin_all();
        use SlotEvent::*;
        assert_eq!(
            trace.snapshot().events,
            vec![
                Acquire { clv: 0 },
                Acquire { clv: 0 },
                Acquire { clv: 1 },
                Pin { clv: 0, n: 1 },
                Touch { clv: 1 },
                Acquire { clv: 2 },
                Unpin { clv: 0 },
                Invalidate { clv: 2 },
                UnpinAll,
            ]
        );
        // Disarming stops recording.
        m.set_slot_trace(None);
        m.acquire(ClvKey(3)).unwrap();
        assert_eq!(trace.len(), 9);
        m.check_invariants().unwrap();
    }

    #[test]
    fn trace_records_lease_hit_and_poison() {
        let m = mgr(8, 2);
        let trace = Arc::new(SlotTrace::new());
        m.set_slot_trace(Some(Arc::clone(&trace)));
        let s = m.acquire(ClvKey(4)).unwrap().slot();
        assert_eq!(m.pin_if_ready(ClvKey(4)), None, "unpublished: no lease, no trace");
        m.mark_ready(s);
        assert_eq!(m.pin_if_ready(ClvKey(4)), Some(s));
        m.poison(s); // consumes the lease pin, tears down clv 4
        use SlotEvent::*;
        assert_eq!(
            trace.snapshot().events,
            vec![Acquire { clv: 4 }, Acquire { clv: 4 }, Pin { clv: 4, n: 1 }, Poison { clv: 4 },]
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn poisoned_slot_wakes_snapshot_waiters() {
        use std::sync::Arc;
        let m = Arc::new(mgr(4, 2));
        let s = m.acquire(ClvKey(0)).unwrap().slot();
        m.pin(s); // computing thread's pin
        m.pin(s); // waiter's pin
        let v = m.version(s);
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || m2.wait_ready_at(s, v));
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.poison(s);
        // The version bump releases the waiter promptly (no timeout).
        waiter.join().unwrap().unwrap();
        m.unpin(s).unwrap();
        m.check_invariants().unwrap();
    }
}
