//! Deterministic memory accounting and budget planning.
//!
//! The paper's `--maxmem` option is backed by an accounting scheme: every
//! major allocation is registered against a category, the running total is
//! compared to the budget, and the *plan* (slot count, lookup table on/off,
//! chunk buffers) is derived from what fits. The paper explicitly notes
//! (§V-A) that imperfect accounting produced one anomalous datapoint —
//! making the accounting a first-class, testable component here.

use crate::error::AmcError;
use std::fmt;

/// What a tracked allocation is for. Categories mirror the paper's
/// breakdown of EPA-NG's footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemCategory {
    /// CLV slot storage + scalers (the dominant term).
    ClvSlots,
    /// The preplacement lookup table memoization.
    LookupTable,
    /// Per-chunk intermediate results (∝ chunk size × branches).
    ChunkBuffers,
    /// Per-edge transition matrix cache.
    PMatrices,
    /// Per-edge tip lookup tables.
    TipTables,
    /// Reference tree + alignment + query batch.
    StaticData,
    /// Demoted CLVs held in the compressed in-RAM storage tier.
    CompressedTier,
    /// Index + staging bytes for the disk-backed storage tier (the
    /// file payload itself lives outside the RAM budget).
    DiskTier,
    /// Anything else.
    Other,
}

/// Number of [`MemCategory`] variants (array-backed accounting).
const N_CATEGORIES: usize = 9;

impl MemCategory {
    /// All categories, for report ordering.
    pub fn all() -> [MemCategory; N_CATEGORIES] {
        [
            MemCategory::ClvSlots,
            MemCategory::LookupTable,
            MemCategory::ChunkBuffers,
            MemCategory::PMatrices,
            MemCategory::TipTables,
            MemCategory::StaticData,
            MemCategory::CompressedTier,
            MemCategory::DiskTier,
            MemCategory::Other,
        ]
    }

    fn index(self) -> usize {
        match self {
            MemCategory::ClvSlots => 0,
            MemCategory::LookupTable => 1,
            MemCategory::ChunkBuffers => 2,
            MemCategory::PMatrices => 3,
            MemCategory::TipTables => 4,
            MemCategory::StaticData => 5,
            MemCategory::CompressedTier => 6,
            MemCategory::DiskTier => 7,
            MemCategory::Other => 8,
        }
    }
}

impl fmt::Display for MemCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemCategory::ClvSlots => "clv-slots",
            MemCategory::LookupTable => "lookup-table",
            MemCategory::ChunkBuffers => "chunk-buffers",
            MemCategory::PMatrices => "p-matrices",
            MemCategory::TipTables => "tip-tables",
            MemCategory::StaticData => "static-data",
            MemCategory::CompressedTier => "compressed-tier",
            MemCategory::DiskTier => "disk-tier",
            MemCategory::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// Tracks current and peak bytes per category.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    current: [usize; N_CATEGORIES],
    peak_total: usize,
}

impl MemoryTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation.
    pub fn allocate(&mut self, category: MemCategory, bytes: usize) {
        self.current[category.index()] += bytes;
        self.peak_total = self.peak_total.max(self.total());
    }

    /// Registers a release.
    pub fn release(&mut self, category: MemCategory, bytes: usize) {
        let slot = &mut self.current[category.index()];
        *slot = slot.saturating_sub(bytes);
    }

    /// Current bytes in one category.
    pub fn current(&self, category: MemCategory) -> usize {
        self.current[category.index()]
    }

    /// Current total bytes across categories.
    pub fn total(&self) -> usize {
        self.current.iter().sum()
    }

    /// The high-water mark of the total.
    pub fn peak(&self) -> usize {
        self.peak_total
    }

    /// A compact multi-line report of the current breakdown.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for cat in MemCategory::all() {
            let bytes = self.current(cat);
            if bytes > 0 {
                out.push_str(&format!("{cat:>14}: {:>12} B ({:.1} MiB)\n", bytes, mib(bytes)));
            }
        }
        out.push_str(&format!(
            "{:>14}: {:>12} B ({:.1} MiB), peak {:.1} MiB\n",
            "total",
            self.total(),
            mib(self.total()),
            mib(self.peak())
        ));
        out
    }
}

/// Bytes → MiB.
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// MiB → bytes, checked. An `as usize` cast here would turn NaN and
/// negative budgets into 0 (a budget that rejects every plan) and
/// silently saturate oversized ones; instead each failure mode is a
/// typed [`AmcError::BadBudget`] the CLI can surface verbatim.
pub fn mib_to_bytes(mib: f64) -> Result<usize, AmcError> {
    let bad = |why: &str| AmcError::BadBudget { why: format!("{mib} MiB {why}") };
    if mib.is_nan() {
        return Err(bad("is NaN"));
    }
    if mib < 0.0 {
        return Err(bad("is negative"));
    }
    let bytes = mib * 1024.0 * 1024.0;
    // `>=` because usize::MAX rounds up when cast to f64: a value that
    // compares equal may still exceed the integer maximum.
    if !bytes.is_finite() || bytes >= usize::MAX as f64 {
        return Err(bad("exceeds the address space"));
    }
    Ok(bytes as usize)
}

/// Computes how many CLV slots a byte budget affords.
///
/// * `budget_bytes` — bytes available for slot storage (after mandatory
///   structures);
/// * `bytes_per_slot` — CLV + scaler bytes per slot;
/// * `min_slots` — the `⌈log₂ n⌉ + 2` floor (plus any standing pins);
/// * `max_slots` — `3(n − 2)`, beyond which more slots are pointless.
///
/// Errors when even `min_slots` do not fit — the paper's "budget too
/// small" condition.
pub fn slots_for_budget(
    budget_bytes: usize,
    bytes_per_slot: usize,
    min_slots: usize,
    max_slots: usize,
) -> Result<usize, AmcError> {
    assert!(bytes_per_slot > 0);
    let affordable = budget_bytes / bytes_per_slot;
    if affordable < min_slots {
        // The requirement itself can overflow (a pathological
        // min_slots × bytes_per_slot); saturate rather than panic in
        // the error path — the message stays honest either way.
        return Err(AmcError::BudgetTooSmall {
            budget_bytes,
            required_bytes: min_slots.checked_mul(bytes_per_slot).unwrap_or(usize::MAX),
        });
    }
    Ok(affordable.min(max_slots))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_tracks_peak() {
        let mut t = MemoryTracker::new();
        t.allocate(MemCategory::ClvSlots, 1000);
        t.allocate(MemCategory::LookupTable, 500);
        assert_eq!(t.total(), 1500);
        assert_eq!(t.peak(), 1500);
        t.release(MemCategory::LookupTable, 500);
        assert_eq!(t.total(), 1000);
        assert_eq!(t.peak(), 1500);
        t.allocate(MemCategory::ChunkBuffers, 200);
        assert_eq!(t.peak(), 1500);
        t.allocate(MemCategory::ChunkBuffers, 1000);
        assert_eq!(t.peak(), 2200);
    }

    #[test]
    fn release_saturates() {
        let mut t = MemoryTracker::new();
        t.allocate(MemCategory::Other, 10);
        t.release(MemCategory::Other, 100);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn slots_for_budget_clamps() {
        // 1000 B budget, 100 B/slot => 10 affordable.
        assert_eq!(slots_for_budget(1000, 100, 4, 50).unwrap(), 10);
        // Clamp to max.
        assert_eq!(slots_for_budget(100_000, 100, 4, 50).unwrap(), 50);
        // Exactly min.
        assert_eq!(slots_for_budget(400, 100, 4, 50).unwrap(), 4);
    }

    #[test]
    fn slots_for_budget_errors_below_min() {
        let err = slots_for_budget(399, 100, 4, 50).unwrap_err();
        assert!(matches!(err, AmcError::BudgetTooSmall { required_bytes: 400, .. }));
    }

    #[test]
    fn slots_for_budget_error_path_survives_overflow() {
        // min_slots × bytes_per_slot overflows usize; the error must
        // saturate instead of panicking (the old unchecked multiply).
        let err = slots_for_budget(1000, usize::MAX / 2, 3, 50).unwrap_err();
        assert!(
            matches!(err, AmcError::BudgetTooSmall { required_bytes: usize::MAX, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(mib_to_bytes(1.0), Ok(1024 * 1024));
        assert_eq!(mib_to_bytes(0.0), Ok(0));
        assert!((mib(1024 * 1024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mib_to_bytes_rejects_unrepresentable_budgets() {
        for bad in [f64::NAN, -1.0, -0.0001, f64::INFINITY, f64::NEG_INFINITY, 1e300] {
            assert!(matches!(mib_to_bytes(bad), Err(AmcError::BadBudget { .. })), "{bad}");
        }
        // Right at the address-space boundary: usize::MAX as f64 rounds
        // up, so the equal-compare case must also be rejected.
        let boundary = usize::MAX as f64 / (1024.0 * 1024.0);
        assert!(mib_to_bytes(boundary).is_err());
        assert!(mib_to_bytes(boundary / 2.0).is_ok());
    }

    #[test]
    fn report_mentions_categories() {
        let mut t = MemoryTracker::new();
        t.allocate(MemCategory::ClvSlots, 2048);
        let r = t.report();
        assert!(r.contains("clv-slots"));
        assert!(r.contains("total"));
    }
}
