//! Error type for the AMC machinery.

use std::fmt;

/// Errors from slot management and constrained traversals.
#[derive(Debug, Clone, PartialEq)]
pub enum AmcError {
    /// Every slot is pinned; the traversal cannot make progress. The paper's
    /// invariant — keep at least `⌈log₂ n⌉ + 2` slots unpinned — was
    /// violated by the caller.
    AllSlotsPinned {
        /// Total slots.
        slots: usize,
        /// Slots with a non-zero pin count.
        pinned: usize,
    },
    /// A slot count below the hard minimum was requested.
    TooFewSlots {
        /// Requested slot count.
        requested: usize,
        /// The tree's minimum.
        minimum: usize,
    },
    /// A CLV key outside the registered key space.
    UnknownClv(u32),
    /// Unpin called on a slot that was not pinned.
    NotPinned(u32),
    /// The memory budget cannot fit even the mandatory structures.
    BudgetTooSmall {
        /// The requested budget.
        budget_bytes: usize,
        /// The smallest feasible budget.
        required_bytes: usize,
    },
    /// A publish-latch wait exceeded the watchdog deadline. Every publish
    /// is supposed to arrive promptly (execution is lock-free); a timeout
    /// means the computing thread died or its publish was lost, and the
    /// bounded wait turns that hang into a typed, surfaceable error.
    SlotWaitTimeout {
        /// The slot whose publish never came.
        slot: u32,
        /// How long the waiter waited.
        waited_ms: u64,
    },
    /// The slot arena's backing buffers could not be allocated.
    AllocationFailed {
        /// Bytes requested.
        bytes: usize,
    },
    /// A cooperative shutdown request ([`crate::CancelToken`]) was
    /// observed mid-operation. Not a failure: the caller should unwind
    /// cleanly, flush whatever durable state it holds, and report a
    /// partial result.
    Cancelled,
    /// A memory-budget figure is not representable as a byte count:
    /// NaN, negative, or beyond the address space. Raised by the checked
    /// MiB→bytes conversion instead of silently saturating.
    BadBudget {
        /// Why the figure was rejected.
        why: String,
    },
    /// A storage-tier operation failed (I/O, bad configuration). The
    /// cause is carried pre-rendered so this enum stays `Clone + Eq`.
    /// Demotion-tier failures on the load path are never fatal to a
    /// run — the caller falls back to recomputing the CLV — but setup
    /// failures (unwritable `--tier-dir`) surface through here.
    TierIo {
        /// Which tier failed (`"ram"`, `"compressed"`, `"disk"`).
        tier: &'static str,
        /// The rendered cause.
        detail: String,
    },
}

impl fmt::Display for AmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmcError::AllSlotsPinned { slots, pinned } => write!(
                f,
                "cannot evict: all {pinned} of {slots} slots are pinned; keep at least ⌈log₂ n⌉ + 2 slots unpinned"
            ),
            AmcError::TooFewSlots { requested, minimum } => {
                write!(f, "{requested} slots requested but the tree requires at least {minimum}")
            }
            AmcError::UnknownClv(k) => write!(f, "CLV key {k} is outside the registered key space"),
            AmcError::NotPinned(s) => write!(f, "slot {s} is not pinned"),
            AmcError::BudgetTooSmall { budget_bytes, required_bytes } => write!(
                f,
                "memory budget of {budget_bytes} bytes cannot fit mandatory structures ({required_bytes} bytes)"
            ),
            AmcError::SlotWaitTimeout { slot, waited_ms } => write!(
                f,
                "slot {slot} was not published within {waited_ms} ms; the computing thread \
                 died or its publish was lost"
            ),
            AmcError::AllocationFailed { bytes } => {
                write!(f, "could not allocate {bytes} bytes of CLV slot storage")
            }
            AmcError::Cancelled => {
                write!(f, "cancelled by shutdown request or deadline")
            }
            AmcError::BadBudget { why } => {
                write!(f, "memory budget is not representable: {why}")
            }
            AmcError::TierIo { tier, detail } => {
                write!(f, "storage tier {tier:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for AmcError {}
