//! Cooperative cancellation for long-running placement work.
//!
//! A [`CancelToken`] is a cheaply cloneable flag shared between whoever
//! *requests* shutdown (a SIGINT handler, a wall-clock deadline watchdog,
//! a test harness) and the compute layers that must *honor* it. The
//! contract is cooperative and purely advisory: arming the token never
//! interrupts a thread; instead every layer that can block or loop for a
//! long time polls it at its natural safe points —
//!
//! * the slot manager's publish-latch waits ([`crate::SlotManager`])
//!   slice their condvar sleeps and re-check the token, so cancellation
//!   cannot hang behind a latch whose publisher has itself been
//!   cancelled;
//! * the engine's schedule executor checks before every Felsenstein step,
//!   turning a multi-second CLV recomputation into a bounded-latency
//!   exit;
//! * the placement orchestrator checks at chunk and phase boundaries,
//!   where stopping is *clean*: every finished chunk is journaled, the
//!   partial results are flushable, and nothing is torn mid-write.
//!
//! Once cancelled, a token stays cancelled; there is deliberately no
//! reset — a run observes at most one shutdown request, and a fresh run
//! gets a fresh token.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, monotonic "stop now" flag. Clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested. A single atomic load —
    /// cheap enough for per-kernel-step polling.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones_and_sticky() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        c.cancel(); // idempotent
        assert!(t.is_cancelled() && c.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
