//! Model-based test of the slot manager: random operation sequences are
//! replayed against a naive `HashMap` oracle, and after every single
//! operation the manager's observable state must agree with the model.
//!
//! The oracle does not try to predict replacement decisions (those belong
//! to the strategy under test elsewhere); it *mirrors* them and checks
//! their legality: a miss may only land in a slot the oracle knows to be
//! unpinned, a hit must land exactly where the oracle says the CLV lives,
//! and `AllSlotsPinned` may only surface when the oracle agrees that every
//! slot is pinned. On top of that it tracks pin counts and the
//! hit/miss/eviction counters, so any drift between the manager's atomics
//! and the event log the oracle accumulates is caught immediately.

use phylo_amc::{AmcError, ClvKey, SlotId, SlotManager, StrategyKind};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const N_CLVS: usize = 32;

/// The naive model: two hash maps (which must stay mutual inverses), pin
/// counts, and the traffic counters implied by the op log.
#[derive(Default)]
struct Oracle {
    slot_of: HashMap<u32, u32>,
    clv_of: HashMap<u32, u32>,
    pins: HashMap<u32, u32>,
    /// Poisoned slots still carrying pins (reclaim deferred).
    failed: HashSet<u32>,
    hits: u64,
    misses: u64,
    evictions: u64,
    poisoned: u64,
    reclaimed: u64,
}

impl Oracle {
    fn pin_count(&self, slot: u32) -> u32 {
        self.pins.get(&slot).copied().unwrap_or(0)
    }

    fn all_pinned(&self, n_slots: usize) -> bool {
        (0..n_slots as u32).all(|s| self.pin_count(s) > 0)
    }

    /// Installs `clv` into `slot`, displacing the previous occupant.
    fn map(&mut self, clv: u32, slot: u32) {
        if let Some(old) = self.clv_of.insert(slot, clv) {
            self.slot_of.remove(&old);
        }
        self.slot_of.insert(clv, slot);
    }

    fn unmap(&mut self, clv: u32) {
        if let Some(slot) = self.slot_of.remove(&clv) {
            self.clv_of.remove(&slot);
        }
    }
}

/// Full-state comparison after every op. The sentinel checks are implicit
/// in the equalities: a CLV the oracle holds nowhere must `lookup` to
/// `None` (the `UNSLOTTED` sentinel) and an empty slot must report no
/// occupant (the `FREE` sentinel).
fn check(mgr: &SlotManager, o: &Oracle) {
    mgr.check_invariants().unwrap();
    for clv in 0..N_CLVS as u32 {
        assert_eq!(
            mgr.lookup(ClvKey(clv)).map(|s| s.0),
            o.slot_of.get(&clv).copied(),
            "clv→slot mismatch for clv {clv}"
        );
    }
    for slot in 0..mgr.n_slots() as u32 {
        assert_eq!(
            mgr.occupant(SlotId(slot)).map(|c| c.0),
            o.clv_of.get(&slot).copied(),
            "slot→clv mismatch for slot {slot}"
        );
        assert_eq!(mgr.pin_count(SlotId(slot)), o.pin_count(slot), "pin count of slot {slot}");
    }
    let mut resident: Vec<(u32, u32)> =
        mgr.resident().into_iter().map(|(c, s)| (c.0, s.0)).collect();
    resident.sort_unstable();
    let mut expected: Vec<(u32, u32)> = o.slot_of.iter().map(|(&c, &s)| (c, s)).collect();
    expected.sort_unstable();
    assert_eq!(resident, expected, "resident set");
    let stats = mgr.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.evictions, stats.poisoned, stats.reclaimed),
        (o.hits, o.misses, o.evictions, o.poisoned, o.reclaimed),
        "stats must reconcile with the oracle's event log"
    );
    // Counter invariants: every miss is exactly one install (a failed
    // acquire installs nothing, a poison is not a miss), and every
    // successful acquisition is a hit or a miss, never both.
    assert_eq!(stats.installs, stats.misses, "installs == misses invariant");
    assert_eq!(stats.acquires, stats.hits + stats.misses, "acquires == hits + misses invariant");
    assert_eq!(mgr.n_pinned(), o.pins.values().filter(|&&p| p > 0).count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_op_sequences_match_the_oracle(
        ops in proptest::collection::vec((0u8..7, 0u32..N_CLVS as u32), 1..300),
        n_slots in 2usize..12,
        strat_idx in 0usize..4,
    ) {
        let strategies =
            [StrategyKind::Fifo, StrategyKind::Lru, StrategyKind::Mru, StrategyKind::Random];
        let mgr = SlotManager::new(N_CLVS, n_slots, strategies[strat_idx].build(None));
        let mut o = Oracle::default();
        // Stack of pins this test owns (ops 1 and 4 push, op 2 pops).
        let mut pinned: Vec<u32> = Vec::new();
        for (op, key) in ops {
            match op {
                // slot: acquire, publish immediately (the model's
                // "computation" is instantaneous).
                0 => match mgr.acquire(ClvKey(key)) {
                    Ok(acq) => {
                        let slot = acq.slot().0;
                        if let Some(&expect) = o.slot_of.get(&key) {
                            assert!(acq.is_hit(), "resident CLV must hit");
                            assert_eq!(slot, expect, "hit must land where the CLV lives");
                            o.hits += 1;
                        } else {
                            assert!(!acq.is_hit(), "non-resident CLV cannot hit");
                            assert_eq!(o.pin_count(slot), 0, "pinned slots are never victims");
                            o.misses += 1;
                            if o.clv_of.contains_key(&slot) {
                                o.evictions += 1;
                            }
                            o.map(key, slot);
                            mgr.mark_ready(acq.slot());
                        }
                    }
                    Err(AmcError::AllSlotsPinned { .. }) => {
                        assert!(o.all_pinned(n_slots), "spurious AllSlotsPinned");
                        assert!(!o.slot_of.contains_key(&key), "resident CLVs always acquire");
                    }
                    Err(e) => panic!("unexpected acquire error: {e:?}"),
                },
                // pin a resident CLV.
                1 => {
                    if let Some(slot) = mgr.lookup(ClvKey(key)) {
                        mgr.pin(slot);
                        *o.pins.entry(slot.0).or_insert(0) += 1;
                        pinned.push(slot.0);
                    } else {
                        assert!(!o.slot_of.contains_key(&key));
                    }
                }
                // unpin one of ours; with none left, unpinning an
                // unpinned slot must be rejected, not underflow.
                2 => {
                    if let Some(slot) = pinned.pop() {
                        mgr.unpin(SlotId(slot)).unwrap();
                        let pc = o.pins.get_mut(&slot).unwrap();
                        *pc -= 1;
                        if *pc == 0 && o.failed.remove(&slot) {
                            o.reclaimed += 1;
                        }
                    } else {
                        let probe = SlotId(key % n_slots as u32);
                        if o.pin_count(probe.0) == 0 {
                            assert!(mgr.unpin(probe).is_err());
                        }
                    }
                }
                // unslot: invalidate an unpinned resident (no-op
                // otherwise, on both sides).
                3 => {
                    if let Some(&slot) = o.slot_of.get(&key) {
                        if o.pin_count(slot) == 0 {
                            mgr.invalidate(ClvKey(key));
                            o.unmap(key);
                        }
                    } else {
                        mgr.invalidate(ClvKey(key));
                    }
                }
                // read-lease fast path: every model install is published
                // immediately, so refusal must mean "not resident".
                4 => {
                    let resident = o.slot_of.get(&key).copied();
                    match mgr.pin_if_ready(ClvKey(key)) {
                        Some(slot) => {
                            assert_eq!(Some(slot.0), resident);
                            *o.pins.entry(slot.0).or_insert(0) += 1;
                            o.hits += 1;
                            pinned.push(slot.0);
                        }
                        None => assert_eq!(resident, None, "published resident refused a lease"),
                    }
                }
                // reset the traffic counters (and the oracle's log).
                5 => {
                    mgr.reset_stats();
                    o.hits = 0;
                    o.misses = 0;
                    o.evictions = 0;
                    o.poisoned = 0;
                    o.reclaimed = 0;
                }
                // poison one of our pinned slots (a dying compute
                // lease): the teardown counts one eviction iff the slot
                // held a mapping, never a miss; reclamation is deferred
                // until the remaining pins drain.
                _ => {
                    if let Some(slot) = pinned.pop() {
                        let occupant = o.clv_of.get(&slot).copied();
                        mgr.poison(SlotId(slot));
                        o.poisoned += 1;
                        if let Some(clv) = occupant {
                            o.unmap(clv);
                            o.evictions += 1;
                        }
                        let pc = o.pins.get_mut(&slot).unwrap();
                        *pc -= 1;
                        if *pc == 0 {
                            o.failed.remove(&slot);
                            o.reclaimed += 1;
                        } else {
                            o.failed.insert(slot);
                        }
                    }
                }
            }
            check(&mgr, &o);
        }
        // Drain our pins; the manager must end fully unpinned.
        for slot in pinned.drain(..) {
            mgr.unpin(SlotId(slot)).unwrap();
            let pc = o.pins.get_mut(&slot).unwrap();
            *pc -= 1;
            if *pc == 0 && o.failed.remove(&slot) {
                o.reclaimed += 1;
            }
        }
        check(&mgr, &o);
        prop_assert_eq!(mgr.n_pinned(), 0);
    }
}
