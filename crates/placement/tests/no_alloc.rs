//! Steady-state scoring must not touch the heap. A counting global
//! allocator wraps the system allocator; after one warm-up pass fills the
//! reusable scratch buffers, further prescore / thorough-score / partials
//! evaluations must perform **zero** allocations.
//!
//! This binary holds exactly one test so no concurrent test thread can
//! pollute the counters.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        // A realloc may move: count it as an allocation event too.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use epa_place::score::{
    attachment_partials_into, score_thorough, AttachmentPartials, ScoreScratch,
};
use phylo_engine::{ManagedStore, ReferenceContext};
use phylo_models::gamma::GammaMode;
use phylo_models::{dna, DiscreteGamma, SubstModel};
use phylo_seq::alphabet::AlphabetKind;
use phylo_seq::{compress, Msa, Sequence};
use phylo_tree::{generate, DirEdgeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize, sites: usize, seed: u64) -> (ReferenceContext, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = generate::yule(n, 0.1, &mut rng).unwrap();
    let rows: Vec<Sequence> = (0..n)
        .map(|i| {
            let text: String =
                (0..sites).map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char).collect();
            Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
        })
        .collect();
    let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
    let s2p = patterns.site_to_pattern().to_vec();
    let model = SubstModel::new(&dna::jc69(), DiscreteGamma::new(0.7, 4, GammaMode::Mean).unwrap())
        .unwrap();
    let ctx = ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();
    (ctx, s2p)
}

#[test]
fn steady_state_scoring_is_allocation_free() {
    let (ctx, s2p) = setup(12, 60, 7);
    let store = ManagedStore::full(&ctx);
    let mut scratch = ScoreScratch::new(&ctx);
    let mut partials = AttachmentPartials::empty();
    let n_sites = s2p.len();
    let codes: Vec<u8> = (0..n_sites).map(|i| ((i * 5 + 1) % 4) as u8).collect();
    let edges: Vec<_> = ctx.tree().all_edges().take(4).collect();

    // Pin every tested orientation once, then warm up all code paths so
    // the reusable buffers reach their steady-state capacity.
    let dirs: Vec<DirEdgeId> =
        edges.iter().flat_map(|&e| [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).collect();
    let prepared = store.prepare(&ctx, &dirs).unwrap();
    for &e in &edges {
        attachment_partials_into(&ctx, &store, e, 0.37, &mut scratch, &mut partials);
        score_thorough(&ctx, &store, e, &s2p, &codes, 2, &mut scratch).unwrap();
    }

    // Steady state: the same evaluations must not allocate at all.
    let mut lls = Vec::with_capacity(edges.len());
    let before = ALLOCS.load(Ordering::SeqCst);
    for &e in &edges {
        attachment_partials_into(&ctx, &store, e, 0.62, &mut scratch, &mut partials);
        let sp = score_thorough(&ctx, &store, e, &s2p, &codes, 2, &mut scratch).unwrap();
        lls.push(sp.log_likelihood);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "steady-state scoring allocated {} times", after - before);
    // Sanity: the scores are real likelihoods, not garbage.
    for ll in lls {
        assert!(ll.is_finite() && ll < 0.0, "implausible log-likelihood {ll}");
    }
    store.release(prepared);
}
