//! Candidate selection between the prescore and thorough phases.

use phylo_tree::EdgeId;

/// Selects the branches each query is thoroughly re-scored on: the top
/// `max(min_candidates, ceil(fraction · branches))` by prescore.
///
/// `prescores` is the per-branch prescore row of one query.
pub fn select_candidates(prescores: &[f64], fraction: f64, min_candidates: usize) -> Vec<EdgeId> {
    let n = prescores.len();
    let k = ((n as f64 * fraction).ceil() as usize).max(min_candidates).min(n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Descending prescore, ties broken by ascending branch id — the
    // tie-break keeps the result deterministic regardless of how the
    // selection partitions equal keys.
    let by_score_then_id = |&a: &u32, &b: &u32| {
        prescores[b as usize]
            .partial_cmp(&prescores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    };
    // Partial selection: O(n) to isolate the top k, then sort only that
    // prefix. With per-query candidate fractions of a few percent this
    // beats the full O(n log n) sort the prescore phase used to pay.
    if k < n {
        order.select_nth_unstable_by(k, by_score_then_id);
        order.truncate(k);
    }
    order.sort_unstable_by(by_score_then_id);
    order.into_iter().map(EdgeId).collect()
}

/// Groups (query, branch) candidate pairs by branch, so thorough scoring
/// touches each branch's CLVs once per chunk. Returns `(branch, query
/// indices)` sorted by branch id — the "branch block" iteration order.
pub fn group_by_branch(per_query: &[Vec<EdgeId>]) -> Vec<(EdgeId, Vec<usize>)> {
    let mut map: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for (q, edges) in per_query.iter().enumerate() {
        for &e in edges {
            map.entry(e.0).or_default().push(q);
        }
    }
    map.into_iter().map(|(e, qs)| (EdgeId(e), qs)).collect()
}

/// As [`group_by_branch`], but ordered by the given branch ranking
/// (typically a DFS edge order) so slot-managed thorough scoring walks
/// topologically adjacent branches.
pub fn group_by_branch_ranked(
    per_query: &[Vec<EdgeId>],
    rank: &[u32],
) -> Vec<(EdgeId, Vec<usize>)> {
    let mut grouped = group_by_branch(per_query);
    grouped.sort_by_key(|&(e, _)| rank[e.idx()]);
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_top_fraction() {
        let scores = vec![-10.0, -1.0, -5.0, -2.0, -20.0, -3.0, -7.0, -4.0, -6.0, -8.0];
        let picked = select_candidates(&scores, 0.2, 1);
        assert_eq!(picked, vec![EdgeId(1), EdgeId(3)]);
    }

    #[test]
    fn respects_minimum() {
        let scores = vec![-1.0, -2.0, -3.0];
        let picked = select_candidates(&scores, 0.0, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], EdgeId(0));
    }

    #[test]
    fn min_clamped_to_branch_count() {
        let scores = vec![-1.0, -2.0];
        let picked = select_candidates(&scores, 0.0, 10);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let scores = vec![-1.0, -1.0, -1.0];
        let picked = select_candidates(&scores, 0.0, 2);
        assert_eq!(picked, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        // The select-then-sort fast path must agree with a plain full sort
        // for every k, including heavy ties.
        let scores: Vec<f64> = (0..97).map(|i| -(((i * 31 + 7) % 13) as f64)).collect();
        let full = |k: usize| -> Vec<EdgeId> {
            let mut order: Vec<u32> = (0..scores.len() as u32).collect();
            order.sort_by(|&a, &b| {
                scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
            });
            order.truncate(k);
            order.into_iter().map(EdgeId).collect()
        };
        for min in [0usize, 1, 5, 13, 96, 97, 200] {
            let got = select_candidates(&scores, 0.0, min);
            assert_eq!(got, full(min.min(scores.len())), "min={min}");
        }
    }

    #[test]
    fn grouping_inverts_candidates() {
        let per_query =
            vec![vec![EdgeId(3), EdgeId(1)], vec![EdgeId(1)], vec![EdgeId(2), EdgeId(3)]];
        let grouped = group_by_branch(&per_query);
        assert_eq!(
            grouped,
            vec![(EdgeId(1), vec![0, 1]), (EdgeId(2), vec![2]), (EdgeId(3), vec![0, 2]),]
        );
    }
}
