//! Error type for the placement pipeline.

use std::fmt;

/// Errors raised while configuring or running placement.
#[derive(Debug)]
pub enum PlaceError {
    /// The memory budget cannot hold even the mandatory structures; the
    /// message suggests the smallest workable budget and a smaller chunk.
    BudgetTooSmall {
        /// The requested budget.
        budget_bytes: usize,
        /// The smallest feasible budget at this chunk size.
        required_bytes: usize,
        /// The chunk size the requirement was computed for.
        chunk_size: usize,
    },
    /// A query sequence's aligned length differs from the reference.
    QueryLength {
        /// The query's name.
        name: String,
        /// The reference alignment width.
        expected: usize,
        /// The query's aligned length.
        found: usize,
    },
    /// No queries were supplied.
    NoQueries,
    /// The slot count leaves too little headroom above the traversal
    /// floor to pin even a one-branch block. The memory planner always
    /// reserves this headroom; the error guards hand-built slot counts.
    SlotHeadroomTooSmall {
        /// The slot count actually configured.
        slots: usize,
        /// The `⌈log₂ n⌉ + 2` traversal floor that must stay unpinned.
        min_slots: usize,
        /// Slots a single block needs on top of the floor.
        needed: usize,
    },
    /// A configuration field is out of range.
    BadConfig(String),
    /// A worker or prefetch thread panicked. The panic was contained at
    /// the thread boundary: in-flight leases are drained before this is
    /// surfaced, so the store remains usable.
    WorkerPanicked {
        /// Which thread panicked and the panic payload, if printable.
        context: String,
    },
    /// A likelihood evaluated to NaN or ±∞. With the scaled kernels this
    /// is a numeric failure (corrupted CLV data or scaler underflow),
    /// never a property of the input, so it is surfaced instead of
    /// silently mis-ranking placements.
    NonFiniteLikelihood {
        /// The query being scored.
        query: String,
        /// The branch it was scored on.
        edge: u32,
    },
    /// Writing the jplace output failed.
    OutputIo(std::io::Error),
    /// Propagated engine/AMC failure.
    Engine(phylo_engine::EngineError),
    /// Checkpoint journal failure: an append could not be made durable,
    /// or a `--resume` directory failed validation (missing/mismatched
    /// manifest, frame that contradicts the current run's chunking).
    Journal(phylo_journal::JournalError),
}

impl PlaceError {
    /// True when this error is the cooperative-cancellation signal
    /// ([`phylo_amc::AmcError::Cancelled`]) surfacing through the
    /// engine, possibly via a scoring worker. Not a failure: the
    /// orchestrator unwinds cleanly, keeps every chunk journaled so
    /// far, and reports a partial result.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            PlaceError::Engine(phylo_engine::EngineError::Amc(phylo_amc::AmcError::Cancelled))
        )
    }
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::BudgetTooSmall { budget_bytes, required_bytes, chunk_size } => write!(
                f,
                "--maxmem budget of {budget_bytes} B cannot hold mandatory structures \
                 ({required_bytes} B at chunk size {chunk_size}); raise the budget or \
                 lower the chunk size"
            ),
            PlaceError::QueryLength { name, expected, found } => write!(
                f,
                "query {name:?} has aligned length {found}, reference alignment has {expected} sites"
            ),
            PlaceError::NoQueries => write!(f, "no query sequences supplied"),
            PlaceError::SlotHeadroomTooSmall { slots, min_slots, needed } => write!(
                f,
                "{slots} slots leave no headroom for branch blocks: the traversal floor is \
                 {min_slots} slots and each block pins {needed} more; raise the budget"
            ),
            PlaceError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            PlaceError::WorkerPanicked { context } => {
                write!(f, "worker thread panicked: {context}")
            }
            PlaceError::NonFiniteLikelihood { query, edge } => write!(
                f,
                "non-finite likelihood for query {query:?} on edge {edge}: numeric failure \
                 in the kernel"
            ),
            PlaceError::OutputIo(e) => write!(f, "could not write placement output: {e}"),
            PlaceError::Engine(e) => write!(f, "engine error: {e}"),
            PlaceError::Journal(e) => write!(f, "checkpoint journal: {e}"),
        }
    }
}

impl std::error::Error for PlaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlaceError::Engine(e) => Some(e),
            PlaceError::OutputIo(e) => Some(e),
            PlaceError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<phylo_engine::EngineError> for PlaceError {
    fn from(e: phylo_engine::EngineError) -> Self {
        PlaceError::Engine(e)
    }
}

impl From<phylo_journal::JournalError> for PlaceError {
    fn from(e: phylo_journal::JournalError) -> Self {
        PlaceError::Journal(e)
    }
}
