//! Placement run configuration (the `EPA-NG` command line surface).

use phylo_amc::StrategyKind;

/// Whether to build the preplacement lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreplacementMode {
    /// Build it when the memory plan says it fits (paper recommendation:
    /// "this lookup table should be used whenever the memory constraints
    /// allow for it").
    #[default]
    Auto,
    /// Never build it (exposes the slow path for ablation).
    Off,
}

/// Tunables of a placement run. `Default` mirrors EPA-NG's defaults as
/// described in the paper (chunk size 5 000, automatic memory limit off,
/// best-candidate re-scoring at 1%).
#[derive(Debug, Clone)]
pub struct EpaConfig {
    /// Memory budget in bytes (`--maxmem`); `None` disables AMC entirely
    /// (full CLV layout + lookup table).
    pub max_memory: Option<usize>,
    /// Queries per chunk (`5 000` default; the paper's Fig. 4 uses `500`).
    pub chunk_size: usize,
    /// Worker threads for (QS × branch) scoring. `1` = serial.
    pub threads: usize,
    /// Branches per block when CLVs must be recomputed under AMC.
    pub block_size: usize,
    /// Replacement strategy for the slot manager.
    pub strategy: StrategyKind,
    /// Preplacement lookup-table mode.
    pub preplacement: PreplacementMode,
    /// Fraction of branches re-scored thoroughly per query.
    pub thorough_fraction: f64,
    /// Minimum number of thoroughly scored branches per query.
    pub thorough_min: usize,
    /// Overlap next-block CLV precomputation with current-block placement
    /// on a dedicated thread (the paper's adapted parallelization).
    pub async_prefetch: bool,
    /// Across-site threads for CLV recomputation (the paper's Fig. 7
    /// experimental mode); `1` = serial kernels.
    pub sitepar_threads: usize,
    /// Iterations of pendant/position refinement in thorough scoring.
    pub blo_iterations: usize,
    /// Kernel tier request (`--kernel-tier`): `Auto` resolves from
    /// `PHYLO_KERNEL_TIER` and runtime CPU detection; explicit choices
    /// pin the reference / fixed / SIMD implementations.
    pub kernel_tier: phylo_kernel::TierChoice,
    /// Watchdog deadline for publish-latch waits; `None` keeps the
    /// manager's default (60 s). A lost or stalled publish then surfaces
    /// as [`phylo_amc::AmcError::SlotWaitTimeout`] instead of hanging.
    pub slot_wait_timeout: Option<std::time::Duration>,
    /// Demotion storage tiers for evicted CLVs (`--storage-tiers`):
    /// eviction becomes demotion into these tiers (in order of
    /// preference) and misses try a tier reload before recomputing.
    /// `None` keeps the paper's pure recompute-on-miss AMC.
    pub tiers: Option<phylo_amc::tier::TierConfig>,
}

impl Default for EpaConfig {
    fn default() -> Self {
        EpaConfig {
            max_memory: None,
            chunk_size: 5000,
            threads: 1,
            block_size: 64,
            strategy: StrategyKind::CostBased,
            preplacement: PreplacementMode::Auto,
            thorough_fraction: 0.01,
            thorough_min: 2,
            async_prefetch: true,
            sitepar_threads: 1,
            blo_iterations: 2,
            kernel_tier: phylo_kernel::TierChoice::Auto,
            slot_wait_timeout: None,
            tiers: None,
        }
    }
}

impl EpaConfig {
    /// Validates field ranges.
    pub fn validate(&self) -> Result<(), crate::error::PlaceError> {
        use crate::error::PlaceError::BadConfig;
        if self.chunk_size == 0 {
            return Err(BadConfig("chunk_size must be at least 1".into()));
        }
        if self.block_size == 0 {
            return Err(BadConfig("block_size must be at least 1".into()));
        }
        if self.threads == 0 {
            return Err(BadConfig("threads must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.thorough_fraction) {
            return Err(BadConfig(format!(
                "thorough_fraction must be in [0, 1], got {}",
                self.thorough_fraction
            )));
        }
        if self.thorough_min == 0 {
            return Err(BadConfig("thorough_min must be at least 1".into()));
        }
        if self.slot_wait_timeout.is_some_and(|d| d.is_zero()) {
            return Err(BadConfig("slot_wait_timeout must be non-zero".into()));
        }
        if let Some(tiers) = &self.tiers {
            tiers.validate().map_err(|e| BadConfig(e.to_string()))?;
        }
        Ok(())
    }

    /// Convenience: a budget expressed in MiB.
    ///
    /// # Panics
    /// On a budget the checked conversion rejects (NaN, negative, or
    /// beyond the address space) — programmatic callers should pass a
    /// sane constant; the CLI path surfaces the typed error instead.
    pub fn with_maxmem_mib(mut self, mib: f64) -> Self {
        self.max_memory =
            Some(phylo_amc::budget::mib_to_bytes(mib).expect("invalid MiB budget in config"));
        self
    }

    /// Convenience: demotion tiers from a `--storage-tiers` style spec.
    pub fn with_tiers(mut self, cfg: phylo_amc::tier::TierConfig) -> Self {
        self.tiers = Some(cfg);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        EpaConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_values_rejected() {
        let mut c = EpaConfig::default();
        c.chunk_size = 0;
        assert!(c.validate().is_err());
        let mut c = EpaConfig::default();
        c.thorough_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = EpaConfig::default();
        c.threads = 0;
        assert!(c.validate().is_err());
        let mut c = EpaConfig::default();
        c.thorough_min = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn maxmem_mib_helper() {
        let c = EpaConfig::default().with_maxmem_mib(2.0);
        assert_eq!(c.max_memory, Some(2 * 1024 * 1024));
    }
}
