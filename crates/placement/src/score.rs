//! Placement scoring: attachment partials, per-branch score tables, and
//! thorough (branch-length-optimizing) query scoring.
//!
//! Inserting a query into branch `e = {a, b}` splits it at an attachment
//! point ρ: proximal part `x·t`, distal part `(1−x)·t`, plus a pendant
//! branch to the query tip. The placement likelihood is the three-way
//! product at ρ:
//!
//! `L_s = Σ_r w_r Σ_i π_i · A[i] · B[i] · C[i]`
//!
//! where `A`/`B` are the branch-side CLVs propagated to ρ and `C` is the
//! query tip propagated through the pendant branch. The `A·B` product
//! depends only on `(e, x)` — precomputing it per branch is what the
//! lookup table stores, and what makes prescoring a query a per-site table
//! walk.

use crate::error::PlaceError;
use phylo_engine::{ManagedStore, ReferenceContext};
use phylo_kernel::kernels::{propagate_scratch, Side};
use phylo_kernel::{KernelScratch, TipTable, LN_SCALE};

/// The `A·B` product at an attachment point, over patterns × rates ×
/// states, with combined scaler counts.
#[derive(Debug, Clone, Default)]
pub struct AttachmentPartials {
    /// `[pattern][rate][state]` product of the two propagated sides.
    pub ab: Vec<f64>,
    /// Per-pattern scaler counts (sum of both sides).
    pub scale: Vec<u32>,
}

impl AttachmentPartials {
    /// An empty buffer for reuse through [`attachment_partials_into`].
    pub const fn empty() -> Self {
        AttachmentPartials { ab: Vec::new(), scale: Vec::new() }
    }
}

/// Scratch buffers reused across scoring calls to keep the hot path
/// allocation-free: once warm, a `(query × branch)` thorough scoring pass
/// performs zero heap allocations.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    prox: Vec<f64>,
    prox_scale: Vec<u32>,
    dist: Vec<f64>,
    dist_scale: Vec<u32>,
    pmatrix: Vec<f64>,
    /// Kernel working buffers (only touched by the generic fallback).
    kernel: KernelScratch,
    /// Per-code state masks of the context's alphabet, computed once.
    masks: Vec<u32>,
    /// Reusable per-edge tip lookup (rebuilt, never reallocated).
    tip_table: TipTable,
    /// Reusable attachment-partials buffer for the fixed-`x` partials.
    partials_a: AttachmentPartials,
    /// Second partials buffer for attachment-position refinement evals.
    partials_b: AttachmentPartials,
    /// Reusable branch score table for pendant-length refinement evals.
    table: BranchScoreTable,
}

impl ScoreScratch {
    /// Scratch sized for a context.
    pub fn new(ctx: &ReferenceContext) -> Self {
        let layout = ctx.layout();
        let a = ctx.alphabet();
        ScoreScratch {
            prox: vec![0.0; layout.clv_len()],
            prox_scale: vec![0; layout.patterns],
            dist: vec![0.0; layout.clv_len()],
            dist_scale: vec![0; layout.patterns],
            pmatrix: vec![0.0; layout.pmatrix_len()],
            kernel: KernelScratch::for_layout(layout),
            masks: (0..a.n_codes()).map(|c| a.state_mask(c as u8)).collect(),
            tip_table: TipTable::empty(),
            partials_a: AttachmentPartials::empty(),
            partials_b: AttachmentPartials::empty(),
            table: BranchScoreTable::empty(),
        }
    }
}

/// Propagates one side of `edge` (the orientation `d`) through a branch
/// segment of length `t` into `out`. All working storage (`pm`,
/// `tip_table`, `kernel`) is caller-owned and reused.
#[allow(clippy::too_many_arguments)]
fn propagate_partial(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    d: phylo_tree::DirEdgeId,
    t: f64,
    pm: &mut Vec<f64>,
    tip_table: &mut TipTable,
    masks: &[u32],
    kernel: &mut KernelScratch,
    out: &mut [f64],
    out_scale: &mut [u32],
) {
    let layout = ctx.layout();
    pm.resize(layout.pmatrix_len(), 0.0);
    ctx.model().transition_matrices(t, pm);
    match store.side(ctx, d) {
        phylo_engine::EdgeSide::Tip(node) => {
            tip_table.rebuild(layout, pm, masks);
            let side = Side::Tip { table: tip_table, codes: ctx.tip_codes(node) };
            propagate_scratch(layout, side, out, out_scale, 0..layout.patterns, kernel);
        }
        phylo_engine::EdgeSide::Resident(_) => {
            let (clv, scale) = store.clv_of(ctx, d).expect("resident side");
            let side = Side::Clv { clv, scale: Some(scale), pmatrix: pm };
            propagate_scratch(layout, side, out, out_scale, 0..layout.patterns, kernel);
        }
    }
}

/// Computes the `A·B` product for `edge` at proximal fraction `x`
/// (`0 < x < 1`) into a caller-owned buffer, reusing its allocation. Both
/// orientations of the edge must be prepared in the store.
pub fn attachment_partials_into(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    edge: phylo_tree::EdgeId,
    x: f64,
    scratch: &mut ScoreScratch,
    out: &mut AttachmentPartials,
) {
    let layout = ctx.layout();
    let t = ctx.tree().edge_length(edge);
    let d_prox = phylo_tree::DirEdgeId::new(edge, 0);
    let d_dist = phylo_tree::DirEdgeId::new(edge, 1);
    // Disjoint field borrows: the propagation reads/writes different
    // scratch buffers at once.
    let ScoreScratch {
        prox, prox_scale, dist, dist_scale, pmatrix, kernel, masks, tip_table, ..
    } = scratch;
    propagate_partial(
        ctx,
        store,
        d_prox,
        x * t,
        pmatrix,
        tip_table,
        masks,
        kernel,
        prox,
        prox_scale,
    );
    propagate_partial(
        ctx,
        store,
        d_dist,
        (1.0 - x) * t,
        pmatrix,
        tip_table,
        masks,
        kernel,
        dist,
        dist_scale,
    );
    out.ab.clear();
    out.ab.resize(layout.clv_len(), 0.0);
    for ((o, &p), &d) in out.ab.iter_mut().zip(&*prox).zip(&*dist) {
        *o = p * d;
    }
    out.scale.clear();
    out.scale.extend(prox_scale.iter().zip(&*dist_scale).map(|(&a, &b)| a + b));
}

/// As [`attachment_partials_into`], returning a freshly allocated buffer.
pub fn attachment_partials(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    edge: phylo_tree::EdgeId,
    x: f64,
    scratch: &mut ScoreScratch,
) -> AttachmentPartials {
    let mut out = AttachmentPartials::empty();
    attachment_partials_into(ctx, store, edge, x, scratch, &mut out);
    out
}

/// A per-branch prescore table: for each pattern, the linear likelihood of
/// attaching a query residue of each concrete state (columns `0..states`),
/// plus the fully-ambiguous column (`states`). This is one row of the
/// paper's preplacement lookup table.
#[derive(Debug, Clone)]
pub struct BranchScoreTable {
    /// `[pattern][state+1]` linear likelihoods.
    pub table: Vec<f64>,
    /// Per-pattern scaler counts.
    pub scale: Vec<u32>,
    states: usize,
}

impl Default for BranchScoreTable {
    fn default() -> Self {
        BranchScoreTable::empty()
    }
}

impl BranchScoreTable {
    /// An empty table for reuse through [`BranchScoreTable::rebuild`].
    pub const fn empty() -> BranchScoreTable {
        BranchScoreTable { table: Vec::new(), scale: Vec::new(), states: 0 }
    }

    /// Builds the table from attachment partials and a pendant branch
    /// length.
    pub fn build(
        ctx: &ReferenceContext,
        partials: &AttachmentPartials,
        pendant: f64,
        scratch: &mut ScoreScratch,
    ) -> BranchScoreTable {
        let mut t = BranchScoreTable::empty();
        t.rebuild(ctx, partials, pendant, scratch);
        t
    }

    /// Rebuilds the table in place for new partials / pendant length,
    /// reusing the existing allocations. The pendant-length refinement
    /// loop calls this once per golden-section evaluation, so it must not
    /// allocate once warm.
    pub fn rebuild(
        &mut self,
        ctx: &ReferenceContext,
        partials: &AttachmentPartials,
        pendant: f64,
        scratch: &mut ScoreScratch,
    ) {
        let layout = ctx.layout();
        let states = layout.states;
        let (freqs, rw) = (ctx.model().freqs(), ctx.model().gamma().weights());
        scratch.pmatrix.resize(layout.pmatrix_len(), 0.0);
        ctx.model().transition_matrices(pendant, &mut scratch.pmatrix);
        let pm = &scratch.pmatrix;
        self.states = states;
        self.table.clear();
        self.table.resize(layout.patterns * (states + 1), 0.0);
        for p in 0..layout.patterns {
            let row = &mut self.table[p * (states + 1)..(p + 1) * (states + 1)];
            for r in 0..layout.rates {
                let base = p * layout.pattern_stride() + r * states;
                let ab = &partials.ab[base..base + states];
                let pmr = &pm[r * states * states..(r + 1) * states * states];
                for i in 0..states {
                    let w = rw[r] * freqs[i] * ab[i];
                    if w == 0.0 {
                        continue;
                    }
                    let prow = &pmr[i * states..(i + 1) * states];
                    for (j, &pij) in prow.iter().enumerate() {
                        row[j] += w * pij;
                    }
                }
            }
            row[states] = row[..states].iter().sum();
        }
        self.scale.clear();
        self.scale.extend_from_slice(&partials.scale);
    }

    /// Bytes this table occupies.
    pub fn bytes(&self) -> usize {
        self.table.len() * 8 + self.scale.len() * 4
    }

    /// Prescoring: the log-likelihood of this query at this branch, walking
    /// the per-site table. Ambiguity codes sum the matching concrete
    /// columns; the fully-ambiguous (gap/unknown) code uses the
    /// precomputed sum column.
    pub fn prescore(&self, ctx: &ReferenceContext, site_to_pattern: &[u32], codes: &[u8]) -> f64 {
        let states = self.states;
        let alphabet = ctx.alphabet();
        let unknown = alphabet.unknown_code();
        let mut total = 0.0f64;
        for (s, &code) in codes.iter().enumerate() {
            let p = site_to_pattern[s] as usize;
            let row = &self.table[p * (states + 1)..(p + 1) * (states + 1)];
            let lik = if (code as usize) < states {
                row[code as usize]
            } else if code == unknown {
                row[states]
            } else {
                let mask = alphabet.state_mask(code);
                let mut sum = 0.0;
                for (j, &v) in row[..states].iter().enumerate() {
                    if (mask >> j) & 1 == 1 {
                        sum += v;
                    }
                }
                sum
            };
            total += lik.ln() - self.scale[p] as f64 * LN_SCALE;
        }
        total
    }
}

/// A fully scored placement of one query into one branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPlacement {
    /// Log-likelihood of the extended tree.
    pub log_likelihood: f64,
    /// Optimized pendant branch length.
    pub pendant: f64,
    /// Optimized proximal fraction of the insertion point (`0..1`).
    pub proximal_fraction: f64,
}

/// Thoroughly scores one query at one branch: three-way likelihood with
/// golden-section refinement of the pendant length and attachment
/// position. Both orientations of the branch must be prepared.
#[allow(clippy::too_many_arguments)]
pub fn score_thorough(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    edge: phylo_tree::EdgeId,
    site_to_pattern: &[u32],
    codes: &[u8],
    blo_iterations: usize,
    scratch: &mut ScoreScratch,
) -> Result<ScoredPlacement, PlaceError> {
    let mean_len = ctx.tree().total_length() / ctx.tree().n_edges() as f64;
    let mut x = 0.5f64;
    let mut pendant = mean_len.max(1e-6);
    // Detach the reusable buffers from the scratch so the scratch can be
    // borrowed mutably alongside them; restored before returning.
    let mut partials = std::mem::take(&mut scratch.partials_a);
    let mut partials_b = std::mem::take(&mut scratch.partials_b);
    let mut table = std::mem::take(&mut scratch.table);
    attachment_partials_into(ctx, store, edge, x, scratch, &mut partials);
    let eval_pendant = |partials: &AttachmentPartials,
                        pend: f64,
                        table: &mut BranchScoreTable,
                        scratch: &mut ScoreScratch| {
        table.rebuild(ctx, partials, pend, scratch);
        table.prescore(ctx, site_to_pattern, codes)
    };
    let mut best = eval_pendant(&partials, pendant, &mut table, scratch);
    for _ in 0..blo_iterations.max(1) {
        // Refine the pendant length with the attachment fixed.
        let (p_opt, p_ll) = golden_section(1e-6, (4.0 * mean_len).max(0.5), 8, |pend| {
            eval_pendant(&partials, pend, &mut table, scratch)
        });
        if p_ll > best {
            best = p_ll;
            pendant = p_opt;
        }
        // Refine the attachment position with the pendant fixed.
        let (x_opt, x_ll) = golden_section(0.01, 0.99, 8, |xx| {
            attachment_partials_into(ctx, store, edge, xx, scratch, &mut partials_b);
            eval_pendant(&partials_b, pendant, &mut table, scratch)
        });
        if x_ll > best {
            best = x_ll;
            x = x_opt;
            attachment_partials_into(ctx, store, edge, x, scratch, &mut partials);
        }
    }
    scratch.partials_a = partials;
    scratch.partials_b = partials_b;
    scratch.table = table;
    Ok(ScoredPlacement { log_likelihood: best, pendant, proximal_fraction: x })
}

/// Golden-section search for the maximum of a unimodal-ish function.
/// Returns `(argmax, max)`. Few iterations suffice: placement surfaces are
/// smooth and we only need ranking-stable optima.
fn golden_section(
    lo: f64,
    hi: f64,
    iterations: usize,
    mut f: impl FnMut(f64) -> f64,
) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iterations {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    if fc > fd {
        (c, fc)
    } else {
        (d, fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::{generate, DirEdgeId, EdgeId, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, sites: usize, seed: u64) -> (ReferenceContext, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String = (0..sites)
                    .map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char)
                    .collect();
                Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
            })
            .collect();
        let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
        let s2p = patterns.site_to_pattern().to_vec();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let ctx =
            ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();
        (ctx, s2p)
    }

    #[test]
    fn golden_section_finds_peak() {
        let (x, v) = golden_section(0.0, 10.0, 30, |x| -(x - 3.7f64).powi(2));
        assert!((x - 3.7).abs() < 1e-3);
        assert!(v > -1e-5);
    }

    #[test]
    fn prescore_matches_thorough_at_same_parameters() {
        // The lookup-table prescore and a direct three-way evaluation at
        // identical (x=0.5, pendant) must agree exactly.
        let (ctx, s2p) = setup(10, 30, 1);
        let store = ManagedStore::full(&ctx);
        let e = EdgeId(2);
        let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
        let mut scratch = ScoreScratch::new(&ctx);
        let partials = attachment_partials(&ctx, &store, e, 0.5, &mut scratch);
        let table = BranchScoreTable::build(&ctx, &partials, 0.1, &mut scratch);
        let codes: Vec<u8> = (0..30).map(|i| (i % 4) as u8).collect();
        let pre = table.prescore(&ctx, &s2p, &codes);
        assert!(pre.is_finite() && pre < 0.0);
        store.release(block);
    }

    #[test]
    fn prescore_cross_validates_against_point_likelihood() {
        // For a query that is constant within each reference pattern
        // (constructed by expanding per-pattern codes through the site
        // map), the table prescore must equal the independent three-way
        // point likelihood from the kernel crate, bit for bit.
        use phylo_kernel::kernels::Side;
        use phylo_kernel::likelihood::point_log_likelihood;
        use phylo_kernel::TipTable;
        let (ctx, s2p) = setup(11, 40, 7);
        let store = ManagedStore::full(&ctx);
        let layout = *ctx.layout();
        let pendant = 0.17;
        let masks: Vec<u32> =
            (0..ctx.alphabet().n_codes()).map(|c| ctx.alphabet().state_mask(c as u8)).collect();
        // Per-pattern query codes; expand to per-site for the prescore.
        let per_pattern: Vec<u8> = (0..layout.patterns).map(|p| ((p * 5 + 1) % 4) as u8).collect();
        let per_site: Vec<u8> = s2p.iter().map(|&p| per_pattern[p as usize]).collect();
        let mut scratch = ScoreScratch::new(&ctx);
        for e in ctx.tree().all_edges().take(8) {
            let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
            let partials = attachment_partials(&ctx, &store, e, 0.5, &mut scratch);
            let table = BranchScoreTable::build(&ctx, &partials, pendant, &mut scratch);
            let pre = table.prescore(&ctx, &s2p, &per_site);

            // Independent path: three-way point likelihood over patterns.
            let t = ctx.tree().edge_length(e);
            let mut pm_half = vec![0.0; layout.pmatrix_len()];
            ctx.model().transition_matrices(0.5 * t, &mut pm_half);
            let mut pm_pend = vec![0.0; layout.pmatrix_len()];
            ctx.model().transition_matrices(pendant, &mut pm_pend);
            let tip_table = TipTable::build(&layout, &pm_pend, &masks);
            // Skip pendant-edge branches (one side is a tip) — the CLV
            // construction differs there and is covered by other tests.
            let rec = *ctx.tree().edge(e);
            if ctx.tree().is_leaf(rec.a) || ctx.tree().is_leaf(rec.b) {
                store.release(block);
                continue;
            }
            let (clv0, scale0) = store.clv_of(&ctx, DirEdgeId::new(e, 0)).unwrap();
            let (clv1, scale1) = store.clv_of(&ctx, DirEdgeId::new(e, 1)).unwrap();
            let sides = [
                Side::Clv { clv: clv0, scale: Some(scale0), pmatrix: &pm_half },
                Side::Clv { clv: clv1, scale: Some(scale1), pmatrix: &pm_half },
                Side::Tip { table: &tip_table, codes: &per_pattern },
            ];
            let direct = point_log_likelihood(
                &layout,
                &sides,
                ctx.model().freqs(),
                ctx.model().gamma().weights(),
                ctx.pattern_weights(),
                0..layout.patterns,
            );
            // Pattern weights multiply repeated sites; since the query is
            // pattern-constant, the weighted point likelihood equals the
            // per-site prescore sum.
            assert!((pre - direct).abs() < 1e-9, "edge {e:?}: prescore {pre} vs point {direct}");
            store.release(block);
        }
    }

    #[test]
    fn prescore_handles_gaps_and_ambiguity() {
        let (ctx, s2p) = setup(8, 20, 2);
        let store = ManagedStore::full(&ctx);
        let e = EdgeId(0);
        let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
        let mut scratch = ScoreScratch::new(&ctx);
        let partials = attachment_partials(&ctx, &store, e, 0.5, &mut scratch);
        let table = BranchScoreTable::build(&ctx, &partials, 0.1, &mut scratch);
        let alphabet = ctx.alphabet();
        let n = alphabet.unknown_code();
        let r = alphabet.encode(b'R').unwrap();
        // All-gap query: finite score (each site contributes the summed column).
        let gaps = vec![n; 20];
        let s_gap = table.prescore(&ctx, &s2p, &gaps);
        assert!(s_gap.is_finite());
        // Ambiguity R = A|G must equal ln(col_A + col_G) summed.
        let ambig = vec![r; 20];
        let s_ambig = table.prescore(&ctx, &s2p, &ambig);
        assert!(s_ambig.is_finite());
        assert!(s_ambig < s_gap, "R carries more information than a gap");
        store.release(block);
    }

    #[test]
    fn identical_sequence_places_on_pendant_branch() {
        // A query identical to taxon T00000 must score best on (or next
        // to) that taxon's pendant branch.
        let (ctx, s2p) = setup(12, 60, 3);
        let store = ManagedStore::full(&ctx);
        let query: Vec<u8> = ctx.tip_codes(NodeId(0)).to_vec();
        // tip_codes are per-pattern; expand to per-site.
        let codes: Vec<u8> = s2p.iter().map(|&p| query[p as usize]).collect();
        let mut scratch = ScoreScratch::new(&ctx);
        let mut best_edge = EdgeId(0);
        let mut best_ll = f64::NEG_INFINITY;
        for e in ctx.tree().all_edges() {
            let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
            let sp = score_thorough(&ctx, &store, e, &s2p, &codes, 1, &mut scratch).unwrap();
            if sp.log_likelihood > best_ll {
                best_ll = sp.log_likelihood;
                best_edge = e;
            }
            store.release(block);
        }
        // The winning branch must be the pendant branch of leaf 0.
        let pendant_edge = ctx.tree().neighbors(NodeId(0))[0].1;
        assert_eq!(best_edge, pendant_edge, "query identical to taxon 0");
    }

    #[test]
    fn thorough_beats_or_matches_fixed_parameters() {
        let (ctx, s2p) = setup(10, 40, 4);
        let store = ManagedStore::full(&ctx);
        let e = EdgeId(1);
        let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
        let codes: Vec<u8> = (0..40).map(|i| ((i * 7) % 4) as u8).collect();
        let mut scratch = ScoreScratch::new(&ctx);
        let partials = attachment_partials(&ctx, &store, e, 0.5, &mut scratch);
        let mean_len = ctx.tree().total_length() / ctx.tree().n_edges() as f64;
        let fixed = BranchScoreTable::build(&ctx, &partials, mean_len, &mut scratch)
            .prescore(&ctx, &s2p, &codes);
        let opt = score_thorough(&ctx, &store, e, &s2p, &codes, 2, &mut scratch).unwrap();
        assert!(
            opt.log_likelihood >= fixed - 1e-9,
            "optimization regressed: {} < {fixed}",
            opt.log_likelihood
        );
        assert!(opt.pendant > 0.0);
        assert!(opt.proximal_fraction > 0.0 && opt.proximal_fraction < 1.0);
        store.release(block);
    }
}
