//! EPA-NG-style maximum-likelihood phylogenetic placement with Active
//! Management of CLVs.
//!
//! Given a fixed reference tree, a reference alignment, and a stream of
//! aligned query sequences (QS), the placer finds, for every query, the
//! reference branches where inserting the query maximizes the tree
//! likelihood. The pipeline mirrors EPA-NG as described in the paper:
//!
//! 1. **Memory planning** ([`memplan`]) — the `--maxmem` budget is turned
//!    into a concrete plan: how many CLV slots, whether the preplacement
//!    lookup table fits, and how large the per-chunk result buffers are.
//! 2. **Preplacement** ([`lookup`]) — a per-branch, per-pattern, per-state
//!    table of insertion likelihoods lets every (QS × branch) pair be
//!    *prescored* without touching a single CLV. When the budget cannot
//!    hold the table, prescoring falls back to recomputing branch CLVs
//!    block by block — the paper's ~23× cliff.
//! 3. **Thorough placement** ([`score`]) — each query's best candidate
//!    branches are re-scored with full three-way likelihoods and
//!    branch-length optimization of the pendant and insertion position.
//! 4. **Chunked, blocked, parallel execution** ([`run`]) — queries stream
//!    through in chunks; branches are processed in blocks whose CLVs are
//!    prepared under the slot budget (optionally prefetched
//!    asynchronously, optionally with across-site parallel kernels); a
//!    worker pool scores (QS × branch) pairs.
//!
//! Results are exported in the `jplace`-compatible format ([`result`]).

pub mod candidates;
pub mod config;
pub mod error;
pub mod lookup;
pub mod memplan;
pub mod queries;
pub mod result;
pub mod run;
pub mod score;

pub use config::{EpaConfig, PreplacementMode};
pub use error::PlaceError;
pub use memplan::{AmcMode, MemoryPlan};
pub use queries::QueryBatch;
pub use result::{PlacementEntry, PlacementResult, RunReport};
pub use run::{HeartbeatEvent, PlaceOutcome, Placer, RunControl, WarmStore};
