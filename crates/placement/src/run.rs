//! The placement orchestrator: chunks × branch blocks × worker threads.

use crate::candidates::{group_by_branch_ranked, select_candidates};
use crate::config::EpaConfig;
use crate::error::PlaceError;
use crate::lookup::LookupTable;
use crate::memplan::{self, BlockPlan, MemoryPlan};
use crate::queries::{EncodedQuery, QueryBatch};
use crate::result::{DegradationStats, PlacementEntry, PlacementResult, RunReport};
use crate::score::{attachment_partials, score_thorough, BranchScoreTable, ScoreScratch};
use phylo_amc::CancelToken;
use phylo_engine::{ManagedStore, PreparedBlock, ReferenceContext};
use phylo_journal::{ChunkFrame, ChunkStats, PlacementRecord, QueryRecord, RunJournal};
use phylo_tree::{DirEdgeId, EdgeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Atomic tallies for the degradation ladder; workers and the prefetch
/// thread bump them concurrently, [`Placer::place`] snapshots them into
/// the run report.
#[derive(Default)]
struct DegradationCounters {
    prefetch_disabled: AtomicU64,
    block_clamped: AtomicU64,
    flush_retries: AtomicU64,
}

impl DegradationCounters {
    fn snapshot(&self) -> DegradationStats {
        DegradationStats {
            prefetch_disabled: self.prefetch_disabled.load(Ordering::Relaxed),
            block_clamped: self.block_clamped.load(Ordering::Relaxed),
            flush_retries: self.flush_retries.load(Ordering::Relaxed),
        }
    }
}

/// One progress beat of a run, handed to [`RunControl::heartbeat`] at
/// run start (once the chunk geometry is known) and after every chunk
/// boundary — freshly computed *or* restored from a resumed journal.
/// Chunk boundaries are the run's natural liveness granularity: every
/// beat corresponds to durable progress, so a supervisor that stops
/// seeing beats knows the worker is dead, hung, or starved — never
/// merely "between reporting intervals".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatEvent {
    /// Chunks finished so far (restored chunks count).
    pub chunks_done: usize,
    /// Total chunks this run will process.
    pub n_chunks: usize,
    /// Queries with final results so far.
    pub queries_done: usize,
    /// Total queries in the batch.
    pub n_queries: usize,
}

/// Chunk-boundary progress callback (see [`HeartbeatEvent`]).
pub type HeartbeatFn = Box<dyn Fn(HeartbeatEvent) + Send + Sync>;

/// Run-lifecycle hooks for [`Placer::place_run`]: cooperative
/// cancellation plus optional chunk-journal checkpointing. The default
/// is inert (never cancelled, no journal), which is exactly what
/// [`Placer::place`] runs under.
#[derive(Default)]
pub struct RunControl {
    /// Cooperative shutdown flag, polled at chunk boundaries and per
    /// Felsenstein op inside the engine. Arm it from a signal handler
    /// watchdog or a deadline timer; the run breaks with bounded
    /// latency, flushes nothing mid-chunk, and reports a partial
    /// outcome instead of an error.
    pub cancel: CancelToken,
    /// Durable chunk journal. Frames replayed by
    /// [`phylo_journal::RunJournal::resume`] are restored instead of
    /// recomputed; every freshly completed chunk is appended (durably)
    /// before the orchestrator advances to the next one.
    pub journal: Option<RunJournal>,
    /// Slot-access trace recorder (`--slot-trace`): armed on the slot
    /// manager before any CLV traffic, with the run's metadata (slot
    /// count, strategy, slot size, cost table) filled in. The caller
    /// snapshots it after the run for the offline replay lab
    /// (`phylo-replay`).
    pub slot_trace: Option<std::sync::Arc<phylo_obs::slottrace::SlotTrace>>,
    /// Progress heartbeat, invoked at run start and per chunk boundary
    /// (see [`HeartbeatEvent`]). The shard coordinator's workers pipe
    /// these beats to their supervisor for liveness and straggler
    /// detection; `None` costs nothing.
    pub heartbeat: Option<HeartbeatFn>,
}

/// What a crash-safe run produced: the placements for every finished
/// query, the run report, and how far the run got.
#[derive(Debug)]
pub struct PlaceOutcome {
    /// Per-query results in batch order, truncated to the completed
    /// chunk prefix when the run was cancelled.
    pub results: Vec<PlacementResult>,
    /// The run report ([`RunReport::resumed_chunks`] counts replayed
    /// frames; timings cover only the work this process did).
    pub report: RunReport,
    /// False when the run was cancelled before placing every query.
    pub completed: bool,
    /// Queries with final, durable results (`== n_queries` iff
    /// `completed`).
    pub queries_done: usize,
}

/// Reference-side engine state that outlives a single run: the CLV slot
/// arena (internally synchronized — `&self` end to end) and the
/// preplacement lookup table, built once by [`Placer::warm_up`] and
/// shared across every subsequent [`Placer::place_warm`] call. This is
/// the paper's "expensive to build, cheap to reuse" state made explicit:
/// a long-lived service pays the arena allocation and the lookup build
/// exactly once instead of per request.
pub struct WarmStore {
    store: ManagedStore,
    lookup: Option<LookupTable>,
    dfs_rank: Vec<u32>,
    chunk_size: usize,
    slots: usize,
    use_lookup: bool,
    peak_memory: usize,
}

impl WarmStore {
    /// Slots the warm arena holds.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether the preplacement lookup table was built.
    pub fn use_lookup(&self) -> bool {
        self.use_lookup
    }

    /// Cumulative slot traffic over every run served so far.
    pub fn slot_stats(&self) -> phylo_amc::SlotStats {
        self.store.stats()
    }
}

/// A configured placement engine over one reference.
pub struct Placer {
    ctx: ReferenceContext,
    site_to_pattern: Vec<u32>,
    cfg: EpaConfig,
}

impl Placer {
    /// Builds a placer. `site_to_pattern` is the site→pattern map of the
    /// compressed reference alignment
    /// ([`phylo_seq::PatternMsa::site_to_pattern`]).
    pub fn new(
        mut ctx: ReferenceContext,
        site_to_pattern: Vec<u32>,
        cfg: EpaConfig,
    ) -> Result<Self, PlaceError> {
        cfg.validate()?;
        // Pin the kernel tier before any store is built from the context
        // so every CLV and likelihood of the run uses one implementation
        // (`Auto` re-resolves env + CPU detection, a no-op override).
        ctx.set_kernel_tier(cfg.kernel_tier);
        Ok(Placer { ctx, site_to_pattern, cfg })
    }

    /// The reference context.
    pub fn ctx(&self) -> &ReferenceContext {
        &self.ctx
    }

    /// The active configuration.
    pub fn config(&self) -> &EpaConfig {
        &self.cfg
    }

    /// The memory plan this placer would run under for a given batch.
    pub fn memory_plan(&self, batch: &QueryBatch) -> Result<MemoryPlan, PlaceError> {
        memplan::plan(&self.ctx, &self.cfg, batch.len(), batch.n_sites())
    }

    /// The degradation ladder ([`memplan::effective_block_size`]) with
    /// each rung that fired tallied into `deg` and marked on the trace.
    fn plan_block(&self, slots: usize, deg: &DegradationCounters) -> Result<BlockPlan, PlaceError> {
        let plan = memplan::effective_block_size(&self.ctx, &self.cfg, slots)?;
        if plan.prefetch_disabled {
            deg.prefetch_disabled.fetch_add(1, Ordering::Relaxed);
            phylo_obs::trace::mark("degrade.prefetch_disabled", "degrade");
        }
        if plan.block_clamped {
            deg.block_clamped.fetch_add(1, Ordering::Relaxed);
            phylo_obs::trace::mark("degrade.block_clamped", "degrade");
        }
        Ok(plan)
    }

    /// Places every query of the batch; returns per-query results (in
    /// batch order) and the run report. Equivalent to [`Placer::place_run`]
    /// under inert [`RunControl`] (never cancelled, no journal).
    pub fn place(
        &self,
        batch: &QueryBatch,
    ) -> Result<(Vec<PlacementResult>, RunReport), PlaceError> {
        let outcome = self.place_run(batch, RunControl::default())?;
        debug_assert!(outcome.completed, "an inert token can never cancel the run");
        Ok((outcome.results, outcome.report))
    }

    /// Places the batch under run-lifecycle control: chunks replayed from
    /// a resumed journal are restored instead of recomputed, every fresh
    /// chunk is journaled durably before the run advances, and a cancelled
    /// token turns into a clean partial [`PlaceOutcome`] (never an error)
    /// at the next chunk boundary — mid-chunk work is abandoned, so the
    /// journal only ever holds complete chunks.
    ///
    /// Determinism contract: finalization (candidate sorting + LWR) is a
    /// pure function of the per-chunk scores, the journal round-trips
    /// floats as exact bit patterns, and chunk boundaries are pinned by
    /// the manifest — so crash → resume produces output byte-identical to
    /// the uninterrupted run.
    pub fn place_run(
        &self,
        batch: &QueryBatch,
        mut control: RunControl,
    ) -> Result<PlaceOutcome, PlaceError> {
        let t_total = Instant::now();
        let ctx = &self.ctx;
        let cfg = &self.cfg;
        let plan = self.memory_plan(batch)?;
        let n_chunks = batch.len().div_ceil(plan.chunk_size.max(1));
        // Frames recovered by `RunJournal::resume`: a contiguous,
        // CRC-validated prefix `0..replayed_chunks`.
        let replayed = control.journal.as_mut().map(|j| j.take_replayed()).unwrap_or_default();
        let replayed_chunks = replayed.len().min(n_chunks);
        let cancel = control.cancel.clone();
        let heartbeat = control.heartbeat.take();
        let beat = |chunks_done: usize| {
            if let Some(hb) = &heartbeat {
                hb(HeartbeatEvent {
                    chunks_done,
                    n_chunks,
                    queries_done: (chunks_done * plan.chunk_size).min(batch.len()),
                    n_queries: batch.len(),
                });
            }
        };
        let mut report = RunReport {
            n_queries: batch.len(),
            used_lookup: plan.use_lookup,
            slots: plan.slots,
            peak_memory: plan.tracker.peak(),
            resumed_chunks: replayed_chunks,
            ..Default::default()
        };
        // Live probes are process-global and monotonic; the per-run view
        // in `report.metrics` is the delta against this baseline. The
        // slot and degradation counters are re-injected from their
        // authoritative per-run sources below, so those stay exact even
        // when concurrent runs share the registry.
        let obs_base = phylo_obs::snapshot();
        let mut store = ManagedStore::with_slots(ctx, plan.slots, cfg.strategy)?;
        store.set_compute_threads(cfg.sitepar_threads.max(1));
        if let Some(timeout) = cfg.slot_wait_timeout {
            store.set_wait_timeout(timeout);
        }
        // Cancellation reaches every layer from here on: the engine
        // polls per Felsenstein op, slot waits poll while blocked, and
        // the chunk loop below polls at chunk boundaries.
        store.set_cancel_token(&cancel);
        // Tiered CLV storage: evicted slot payloads demote to the
        // configured colder tiers instead of being dropped, and slot
        // misses probe the tiers before falling back to recomputation.
        // The shared tracker starts from the plan's accounting so the
        // compressed-tier / disk-tier rows sit next to the static rows
        // and `peak_memory` stays truthful under tier growth.
        let tier_tracker = cfg
            .tiers
            .as_ref()
            .map(|_| std::sync::Arc::new(std::sync::Mutex::new(plan.tracker.clone())));
        let tier_store = match &cfg.tiers {
            None => None,
            Some(tcfg) => {
                let tiers = phylo_amc::TieredStore::new(
                    tcfg,
                    ctx.tree().n_dir_edges(),
                    ctx.layout().clv_len(),
                    ctx.layout().patterns,
                    ctx.cost_table(),
                    tier_tracker.clone(),
                )
                .map_err(phylo_engine::EngineError::Amc)?;
                store.arena().set_tiers(std::sync::Arc::clone(&tiers));
                Some(tiers)
            }
        };
        // Arm the slot-access trace before the lookup build below — the
        // build already drives slot traffic that the run report counts,
        // and the replay contract is "trace == everything the counters
        // saw".
        if let Some(trace) = &control.slot_trace {
            trace.set_meta(phylo_obs::slottrace::TraceMeta {
                n_clvs: ctx.tree().n_dir_edges() as u32,
                n_slots: store.n_slots() as u32,
                strategy: cfg.strategy.to_string(),
                bytes_per_slot: phylo_amc::SlotArena::bytes_per_slot(
                    ctx.layout().clv_len(),
                    ctx.layout().patterns,
                ) as u64,
                // Always embedded (not only for cost-aware runs) so a
                // trace captured under any policy can replay the
                // cost-aware ones too.
                costs: ctx.cost_table(),
            });
            store.set_slot_trace(std::sync::Arc::clone(trace));
        }

        let store = store; // sharing starts here; the store is internally synchronized
                           // A fully-replayed run has nothing left to compute — skip the
                           // expensive lookup build so resuming after a crash between the
                           // final chunk and the output write is near-instant.
                           // Cancellation during the build (a pre-armed token, a signal
                           // landing this early) is a graceful empty run, not a failure:
                           // fall through with no table — the chunk loop below sees the
                           // cancelled token immediately and emits the partial outcome.
        let lookup = if plan.use_lookup && replayed_chunks < n_chunks && !cancel.is_cancelled() {
            let t = Instant::now();
            let span = phylo_obs::trace::span("preplacement.build", "phase");
            match LookupTable::build(ctx, &store, cfg) {
                Ok(table) => {
                    drop(span);
                    report.lookup_time = t.elapsed();
                    Some(table)
                }
                Err(e) if e.is_cancellation() => {
                    drop(span);
                    None
                }
                Err(e) => return Err(e),
            }
        } else {
            None
        };

        let branches = ctx.tree().n_edges();
        // Rank branches by DFS order once; thorough blocks follow it.
        let mut dfs_rank = vec![0u32; branches];
        for (i, e) in phylo_tree::traversal::edge_dfs_order(ctx.tree()).into_iter().enumerate() {
            dfs_rank[e.idx()] = i as u32;
        }
        let mut results: Vec<PlacementResult> = batch
            .queries()
            .iter()
            .map(|q| PlacementResult { name: q.name.clone(), placements: Vec::new() })
            .collect();
        let mut prescores = vec![0.0f64; plan.chunk_size * branches];
        let mut completed = true;
        let mut chunks_done = 0usize;

        // The run-start beat: tells a supervisor the chunk geometry and
        // that the (possibly expensive) setup phase is behind us.
        beat(0);
        for (chunk_idx, chunk) in batch.chunks(plan.chunk_size).enumerate() {
            let qoff = chunk_idx * plan.chunk_size;
            if chunk_idx < replayed_chunks {
                restore_chunk(&replayed[chunk_idx], chunk, qoff, &mut results, &mut report)?;
                chunks_done = chunk_idx + 1;
                beat(chunks_done);
                continue;
            }
            if cancel.is_cancelled() {
                completed = false;
                break;
            }
            let mat = &mut prescores[..chunk.len() * branches];
            match self.compute_chunk(
                &store,
                &lookup,
                &dfs_rank,
                chunk,
                chunk_idx,
                qoff,
                mat,
                branches,
                &mut results,
                &mut report,
            ) {
                Ok(stats) => {
                    if let Some(journal) = control.journal.as_mut() {
                        // Durable before advancing: once append returns,
                        // this chunk survives process death.
                        let span = phylo_obs::trace::span("checkpoint", "phase");
                        let frame = frame_of(chunk_idx, stats, &results[qoff..qoff + chunk.len()]);
                        journal.append(&frame)?;
                        drop(span);
                    }
                    chunks_done = chunk_idx + 1;
                    // Beat only after the chunk is durable: a supervisor
                    // may treat every reported chunk as safe to skip on
                    // resume.
                    beat(chunks_done);
                }
                // Cancellation surfacing through a worker/prefetch/slot
                // wait is a graceful break, not a failure: the chunk is
                // abandoned (not journaled, not counted) and the partial
                // prefix below is still valid.
                Err(e) if e.is_cancellation() => {
                    completed = false;
                    break;
                }
                Err(e) => return Err(e),
            }
            // Deterministic mid-run shutdown for the crash/resume test
            // matrix: cancels the token after chunk `chunk_idx` is
            // durable, exactly like a deadline firing at this boundary.
            if phylo_faults::fire("place::cancel_after_chunk") {
                cancel.cancel();
            }
        }

        let queries_done =
            if completed { batch.len() } else { (chunks_done * plan.chunk_size).min(batch.len()) };
        if !completed {
            // Queries past the last completed chunk may hold partial
            // placements from the abandoned chunk; drop them so the
            // outcome is exactly the durable prefix.
            results.truncate(queries_done);
            phylo_obs::counter("place.cancelled_runs").inc();
        }
        for r in &mut results {
            r.finalize();
        }
        report.slot_stats = store.stats();
        if let Some(tiers) = &tier_store {
            // Settle in-flight writebacks so the stats and the tracker
            // rows describe the run's final tier state, not a snapshot
            // racing the writeback worker.
            tiers.drain();
            report.tier_stats = Some(tiers.stats());
        }
        if let Some(tracker) = &tier_tracker {
            let peak = tracker.lock().unwrap_or_else(|e| e.into_inner()).peak();
            report.peak_memory = report.peak_memory.max(peak);
        }
        report.total_time = t_total.elapsed();
        report.metrics = run_metrics(
            &report,
            &obs_base,
            ctx.layout().tier(),
            store.sitepar_stats(),
            tier_store.as_deref(),
        );
        Ok(PlaceOutcome { results, report, completed, queries_done })
    }

    /// Builds the reusable warm state for service mode: the slot arena
    /// sized by the memory plan (at the configured chunk size) and the
    /// preplacement lookup table. One call amortizes over arbitrarily
    /// many [`Placer::place_warm`] runs.
    ///
    /// Tiered CLV storage is a batch-mode feature (its writeback worker
    /// and disk arena are scoped to one run); a config that asks for
    /// both is refused rather than silently ignored.
    pub fn warm_up(&self) -> Result<WarmStore, PlaceError> {
        if self.cfg.tiers.is_some() {
            return Err(PlaceError::BadConfig(
                "tiered CLV storage is not supported for warm (service-mode) stores".into(),
            ));
        }
        let ctx = &self.ctx;
        let cfg = &self.cfg;
        let n_sites = self.site_to_pattern.len();
        // Plan for a full chunk of queries: the per-request batches the
        // service runs are at most one chunk's worth each anyway.
        let plan = memplan::plan(ctx, cfg, cfg.chunk_size, n_sites)?;
        let mut store = ManagedStore::with_slots(ctx, plan.slots, cfg.strategy)?;
        store.set_compute_threads(cfg.sitepar_threads.max(1));
        if let Some(timeout) = cfg.slot_wait_timeout {
            store.set_wait_timeout(timeout);
        }
        let lookup =
            if plan.use_lookup { Some(LookupTable::build(ctx, &store, cfg)?) } else { None };
        let branches = ctx.tree().n_edges();
        let mut dfs_rank = vec![0u32; branches];
        for (i, e) in phylo_tree::traversal::edge_dfs_order(ctx.tree()).into_iter().enumerate() {
            dfs_rank[e.idx()] = i as u32;
        }
        Ok(WarmStore {
            store,
            lookup,
            dfs_rank,
            chunk_size: plan.chunk_size,
            slots: plan.slots,
            use_lookup: plan.use_lookup,
            peak_memory: plan.tracker.peak(),
        })
    }

    /// Places one request's batch against a shared [`WarmStore`]: the
    /// chunk loop of [`Placer::place_run`] minus the per-run setup —
    /// no arena allocation, no lookup build, no journal. Per-query
    /// results are bit-identical to a cold [`Placer::place_run`] of the
    /// same queries (results are independent of chunking and of what
    /// other requests the arena served before; the existing
    /// chunking/threading equivalence tests pin that contract).
    ///
    /// `cancel` is request-scoped: a deadline or client cancellation
    /// unwinds at the next cancellation point and yields a clean
    /// partial outcome (`completed == false`), exactly like batch mode.
    /// Runs against one store must be issued sequentially — the store
    /// is internally synchronized, but the cancel token is store-wide.
    pub fn place_warm(
        &self,
        warm: &WarmStore,
        batch: &QueryBatch,
        cancel: &CancelToken,
    ) -> Result<PlaceOutcome, PlaceError> {
        let t_total = Instant::now();
        let ctx = &self.ctx;
        warm.store.set_cancel_token(cancel);
        let slot_base = warm.store.stats();
        let obs_base = phylo_obs::snapshot();
        let branches = ctx.tree().n_edges();
        let chunk_size = warm.chunk_size.min(batch.len().max(1));
        let mut report = RunReport {
            n_queries: batch.len(),
            used_lookup: warm.use_lookup,
            slots: warm.slots,
            peak_memory: warm.peak_memory,
            ..Default::default()
        };
        let mut results: Vec<PlacementResult> = batch
            .queries()
            .iter()
            .map(|q| PlacementResult { name: q.name.clone(), placements: Vec::new() })
            .collect();
        let mut prescores = vec![0.0f64; chunk_size * branches];
        let mut completed = true;
        let mut chunks_done = 0usize;
        for (chunk_idx, chunk) in batch.chunks(chunk_size).enumerate() {
            if cancel.is_cancelled() {
                completed = false;
                break;
            }
            let qoff = chunk_idx * chunk_size;
            let mat = &mut prescores[..chunk.len() * branches];
            match self.compute_chunk(
                &warm.store,
                &warm.lookup,
                &warm.dfs_rank,
                chunk,
                chunk_idx,
                qoff,
                mat,
                branches,
                &mut results,
                &mut report,
            ) {
                Ok(_) => chunks_done = chunk_idx + 1,
                Err(e) if e.is_cancellation() => {
                    completed = false;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let queries_done =
            if completed { batch.len() } else { (chunks_done * chunk_size).min(batch.len()) };
        if !completed {
            results.truncate(queries_done);
            phylo_obs::counter("place.cancelled_runs").inc();
        }
        for r in &mut results {
            r.finalize();
        }
        // Slot traffic attributed to *this* run, not the store's whole
        // life — the arena is shared, the report is per-request.
        report.slot_stats = warm.store.stats().delta(&slot_base);
        report.total_time = t_total.elapsed();
        report.metrics =
            run_metrics(&report, &obs_base, ctx.layout().tier(), warm.store.sitepar_stats(), None);
        Ok(PlaceOutcome { results, report, completed, queries_done })
    }

    /// One chunk of the run: prescore, candidate selection, thorough
    /// scoring. Returns the chunk's journal-frame stats.
    #[allow(clippy::too_many_arguments)]
    fn compute_chunk(
        &self,
        store: &ManagedStore,
        lookup: &Option<LookupTable>,
        dfs_rank: &[u32],
        chunk: &[EncodedQuery],
        chunk_idx: usize,
        qoff: usize,
        mat: &mut [f64],
        branches: usize,
        results: &mut Vec<PlacementResult>,
        report: &mut RunReport,
    ) -> Result<ChunkStats, PlaceError> {
        let ctx = &self.ctx;
        let cfg = &self.cfg;
        // Ladder counters are per chunk and merged into the report at
        // the end of each chunk, so a run that degrades on every chunk
        // reports every step — not just the final chunk's. They also
        // ride in the chunk's journal frame, which is how a resumed
        // run's report still covers the pre-crash chunks.
        let deg = DegradationCounters::default();
        let chunk_span = phylo_obs::trace::span(&format!("chunk {chunk_idx}"), "chunk");
        phylo_obs::counter("place.chunks").inc();
        phylo_obs::gauge("place.chunk.current").set(chunk_idx as i64);
        phylo_obs::trace::mark("chunk.heartbeat", "chunk");

        // ---- Phase 1: prescore every (query, branch) pair. ----
        let t = Instant::now();
        let phase_span = phylo_obs::trace::span("prescore", "phase");
        match lookup {
            Some(table) => {
                prescore_with_lookup(
                    ctx,
                    table,
                    &self.site_to_pattern,
                    chunk,
                    mat,
                    branches,
                    cfg.threads,
                );
            }
            None => {
                self.prescore_blocked(ctx, store, chunk, mat, branches, &deg)?;
            }
        }
        drop(phase_span);
        let n_prescored = (chunk.len() * branches) as u64;
        report.n_prescored += n_prescored;
        report.prescore_time += t.elapsed();
        // NaN never ranks correctly in candidate selection (every
        // comparison is false), so a kernel numeric failure here would
        // otherwise silently drop branches from consideration.
        if let Some(bad) = mat.iter().position(|v| v.is_nan()) {
            return Err(PlaceError::NonFiniteLikelihood {
                query: chunk[bad / branches].name.clone(),
                edge: (bad % branches) as u32,
            });
        }

        // ---- Candidate selection. ----
        let cand: Vec<Vec<EdgeId>> = mat
            .chunks(branches)
            .map(|row| select_candidates(row, cfg.thorough_fraction, cfg.thorough_min))
            .collect();

        // ---- Phase 2: thorough scoring, grouped by branch. ----
        let t = Instant::now();
        let phase_span = phylo_obs::trace::span("thorough", "phase");
        let grouped = group_by_branch_ranked(&cand, dfs_rank);
        let n_thorough = grouped.iter().map(|(_, qs)| qs.len() as u64).sum::<u64>();
        report.n_thorough += n_thorough;
        self.thorough_blocked(ctx, store, chunk, &grouped, qoff, results, &deg)?;
        drop(phase_span);
        report.thorough_time += t.elapsed();
        let snap = deg.snapshot();
        report.degradation.merge(snap);
        drop(chunk_span);
        Ok(ChunkStats {
            prefetch_disabled: snap.prefetch_disabled,
            block_clamped: snap.block_clamped,
            flush_retries: snap.flush_retries,
            n_prescored,
            n_thorough,
        })
    }

    /// Prescoring without the lookup table: branch blocks are prepared
    /// under the slot budget (optionally prefetched asynchronously) and a
    /// transient score table is built per branch — the paper's expensive
    /// path.
    fn prescore_blocked(
        &self,
        ctx: &ReferenceContext,
        store: &ManagedStore,
        chunk: &[EncodedQuery],
        mat: &mut [f64],
        branches: usize,
        deg: &DegradationCounters,
    ) -> Result<(), PlaceError> {
        let cfg = &self.cfg;
        let plan = self.plan_block(store.n_slots(), deg)?;
        // DFS order keeps consecutive blocks topologically adjacent, so
        // AMC reuses most subtree CLVs between blocks.
        let all_edges: Vec<EdgeId> = phylo_tree::traversal::edge_dfs_order(ctx.tree());
        let blocks: Vec<Vec<EdgeId>> =
            all_edges.chunks(plan.block_size).map(|b| b.to_vec()).collect();
        let s2p = &self.site_to_pattern;
        let pendant = (ctx.tree().total_length() / branches as f64).max(1e-6);
        let mut mat_cell = RowMatrix { data: mat, width: branches };
        run_blocks(ctx, store, &blocks, plan.async_prefetch, deg, |block| {
            // Build the block's transient tables; the block's CLVs are
            // pinned and published, so reads need no lock.
            let tables: Vec<BranchScoreTable> = {
                let mut scratch = ScoreScratch::new(ctx);
                block
                    .iter()
                    .map(|&e| {
                        let partials = attachment_partials(ctx, store, e, 0.5, &mut scratch);
                        BranchScoreTable::build(ctx, &partials, pendant, &mut scratch)
                    })
                    .collect()
            };
            // Score the chunk against the block, parallel over queries.
            mat_cell.with_rows(chunk.len(), cfg.threads, |q_range, rows| {
                for (local, row) in q_range.clone().zip(rows.chunks_mut(branches)) {
                    let codes = &chunk[local].codes;
                    for (bi, &e) in block.iter().enumerate() {
                        row[e.idx()] = tables[bi].prescore(ctx, s2p, codes);
                    }
                }
            });
            Ok(())
        })
    }

    /// Thorough scoring of the candidate (query, branch) pairs, processed
    /// in branch blocks.
    fn thorough_blocked(
        &self,
        ctx: &ReferenceContext,
        store: &ManagedStore,
        chunk: &[EncodedQuery],
        grouped: &[(EdgeId, Vec<usize>)],
        qoff: usize,
        results: &mut Vec<PlacementResult>,
        deg: &DegradationCounters,
    ) -> Result<(), PlaceError> {
        let cfg = &self.cfg;
        let s2p = &self.site_to_pattern;
        let plan = self.plan_block(store.n_slots(), deg)?;
        let blocks: Vec<Vec<EdgeId>> =
            grouped.chunks(plan.block_size).map(|g| g.iter().map(|&(e, _)| e).collect()).collect();
        // Blocks may be re-split under slot pressure, so group membership
        // is looked up per edge rather than tracked by a cursor.
        let group_of: std::collections::HashMap<u32, &Vec<usize>> =
            grouped.iter().map(|(e, qs)| (e.0, qs)).collect();
        run_blocks(ctx, store, &blocks, plan.async_prefetch, deg, |block| {
            // Flatten to (edge, query) work items and strip across threads.
            let items: Vec<(EdgeId, usize)> =
                block.iter().flat_map(|e| group_of[&e.0].iter().map(move |&q| (*e, q))).collect();
            let n_threads = cfg.threads.min(items.len().max(1));
            let mut outputs: Vec<Vec<(usize, PlacementEntry)>> = Vec::new();
            let mut failed: Option<PlaceError> = None;
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..n_threads {
                    let items = &items;
                    handles.push(s.spawn(
                        move || -> Result<Vec<(usize, PlacementEntry)>, PlaceError> {
                            if phylo_faults::fire("place::worker_panic") {
                                panic!("injected thorough-worker panic");
                            }
                            let mut out = Vec::new();
                            let mut scratch = ScoreScratch::new(ctx);
                            let mut k = t;
                            while k < items.len() {
                                let (e, q) = items[k];
                                let sp = score_thorough(
                                    ctx,
                                    store,
                                    e,
                                    s2p,
                                    &chunk[q].codes,
                                    cfg.blo_iterations,
                                    &mut scratch,
                                )?;
                                if !sp.log_likelihood.is_finite() {
                                    return Err(PlaceError::NonFiniteLikelihood {
                                        query: chunk[q].name.clone(),
                                        edge: e.0,
                                    });
                                }
                                let t_len = ctx.tree().edge_length(e);
                                out.push((
                                    q,
                                    PlacementEntry {
                                        edge: e,
                                        log_likelihood: sp.log_likelihood,
                                        like_weight_ratio: 0.0,
                                        pendant_length: sp.pendant,
                                        distal_length: sp.proximal_fraction * t_len,
                                    },
                                ));
                                k += n_threads;
                            }
                            Ok(out)
                        },
                    ));
                }
                // Join every worker even after a panic or error: the scope
                // must not re-raise, and the surviving workers' leases must
                // drain before the error surfaces.
                for h in handles {
                    match h.join() {
                        Ok(Ok(out)) => outputs.push(out),
                        Ok(Err(e)) => {
                            failed.get_or_insert(e);
                        }
                        Err(payload) => {
                            failed = Some(PlaceError::WorkerPanicked {
                                context: format!(
                                    "thorough scoring worker: {}",
                                    panic_message(payload.as_ref())
                                ),
                            });
                        }
                    }
                }
            });
            if let Some(e) = failed {
                return Err(e);
            }
            for out in outputs {
                for (q, entry) in out {
                    results[qoff + q].placements.push(entry);
                }
            }
            Ok(())
        })
    }
}

/// Restores one replayed journal frame into the results vector and the
/// report. The manifest already pinned the inputs and chunk geometry,
/// so a mismatch here means a corrupted-but-CRC-valid journal or a bug
/// — surfaced as a typed error, never merged silently.
fn restore_chunk(
    frame: &ChunkFrame,
    chunk: &[EncodedQuery],
    qoff: usize,
    results: &mut [PlacementResult],
    report: &mut RunReport,
) -> Result<(), PlaceError> {
    if frame.queries.len() != chunk.len() {
        return Err(phylo_journal::JournalError::FrameMismatch {
            chunk: frame.chunk_index,
            detail: format!(
                "frame holds {} queries, this run's chunk holds {}",
                frame.queries.len(),
                chunk.len()
            ),
        }
        .into());
    }
    for (local, q) in frame.queries.iter().enumerate() {
        if q.name != chunk[local].name {
            return Err(phylo_journal::JournalError::FrameMismatch {
                chunk: frame.chunk_index,
                detail: format!(
                    "query {} is {:?} in the frame but {:?} in this run",
                    qoff + local,
                    q.name,
                    chunk[local].name
                ),
            }
            .into());
        }
        // LWR is left 0.0: finalization recomputes it from the exact
        // log-likelihood bits, identically to the uninterrupted run.
        results[qoff + local].placements = q
            .placements
            .iter()
            .map(|p| PlacementEntry {
                edge: EdgeId(p.edge),
                log_likelihood: p.log_likelihood,
                like_weight_ratio: 0.0,
                pendant_length: p.pendant_length,
                distal_length: p.distal_length,
            })
            .collect();
    }
    report.n_prescored += frame.stats.n_prescored;
    report.n_thorough += frame.stats.n_thorough;
    report.degradation.merge(DegradationStats {
        prefetch_disabled: frame.stats.prefetch_disabled,
        block_clamped: frame.stats.block_clamped,
        flush_retries: frame.stats.flush_retries,
    });
    phylo_obs::counter("journal.chunks_restored").inc();
    Ok(())
}

/// Serializes one completed chunk's results into a journal frame.
fn frame_of(chunk_idx: usize, stats: ChunkStats, slice: &[PlacementResult]) -> ChunkFrame {
    ChunkFrame {
        chunk_index: chunk_idx as u32,
        stats,
        queries: slice
            .iter()
            .map(|r| QueryRecord {
                name: r.name.clone(),
                placements: r
                    .placements
                    .iter()
                    .map(|p| PlacementRecord {
                        edge: p.edge.0,
                        log_likelihood: p.log_likelihood,
                        pendant_length: p.pendant_length,
                        distal_length: p.distal_length,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Builds the per-run metrics snapshot: the delta of the live registry
/// against the run's baseline, with the slot-traffic and degradation
/// counters injected from their authoritative per-run sources
/// ([`RunReport::slot_stats`] and [`RunReport::degradation`]). The
/// injected counters are exact regardless of the `obs` feature or of
/// concurrent runs sharing the global registry. The selected kernel
/// tier is exported as exactly one `kernel.tier.<name>` gauge (the
/// invariant the observability suite checks), alongside the
/// site-parallel pool counters.
fn run_metrics(
    report: &RunReport,
    base: &phylo_obs::Snapshot,
    tier: phylo_kernel::KernelTier,
    pool: phylo_kernel::sitepar::PoolStats,
    tiers: Option<&phylo_amc::TieredStore>,
) -> phylo_obs::Snapshot {
    let mut m = phylo_obs::snapshot().delta(base);
    m.set_gauge(&format!("kernel.tier.{}", tier.name()), 1);
    m.set_gauge("sitepar.pool.workers", pool.workers as i64);
    m.set_gauge("sitepar.pool.parked", pool.parked as i64);
    m.set_gauge("sitepar.pool.queue_depth", pool.queue_depth as i64);
    m.set_counter("sitepar.pool.jobs", pool.jobs);
    m.set_counter("sitepar.pool.tasks", pool.tasks);
    let s = &report.slot_stats;
    m.set_counter("slot.hits", s.hits);
    m.set_counter("slot.misses", s.misses);
    m.set_counter("slot.evictions", s.evictions);
    m.set_counter("slot.installs", s.installs);
    m.set_counter("slot.acquires", s.acquires);
    m.set_counter("slot.poisoned", s.poisoned);
    m.set_counter("slot.reclaimed", s.reclaimed);
    let d = &report.degradation;
    m.set_counter("place.degrade.prefetch_disabled", d.prefetch_disabled);
    m.set_counter("place.degrade.block_clamped", d.block_clamped);
    m.set_counter("place.degrade.flush_retries", d.flush_retries);
    if let Some(t) = &report.tier_stats {
        m.set_counter("tier.demotions", t.demotions);
        m.set_counter("tier.writebacks", t.writebacks);
        m.set_counter("tier.writeback_lost", t.writeback_lost);
        m.set_counter("tier.drops_cost", t.drops_cost);
        m.set_counter("tier.drops_budget", t.drops_budget);
        m.set_counter("tier.reloads", t.reloads);
        m.set_counter("tier.reload_misses", t.reload_misses);
        m.set_counter("tier.corrupt", t.corrupt);
        m.set_counter("tier.prefetches", t.prefetches);
    }
    if let Some(tiers) = tiers {
        for (name, bytes, entries) in tiers.occupancy() {
            m.set_gauge(&format!("tier.{name}.bytes"), bytes as i64);
            m.set_gauge(&format!("tier.{name}.entries"), entries as i64);
        }
    }
    m
}

/// Shared-nothing row access: hands disjoint row ranges of a flat matrix
/// to worker threads.
struct RowMatrix<'a> {
    data: &'a mut [f64],
    width: usize,
}

impl<'a> RowMatrix<'a> {
    fn with_rows(
        &mut self,
        n_rows: usize,
        n_threads: usize,
        work: impl Fn(std::ops::Range<usize>, &mut [f64]) + Sync,
    ) {
        let width = self.width;
        let n_threads = n_threads.max(1).min(n_rows.max(1));
        let rows_per = n_rows.div_ceil(n_threads);
        std::thread::scope(|s| {
            let mut rest: &mut [f64] = self.data;
            let mut start = 0usize;
            while start < n_rows {
                let take = rows_per.min(n_rows - start);
                let (head, tail) = rest.split_at_mut(take * width);
                rest = tail;
                let range = start..start + take;
                let work = &work;
                s.spawn(move || work(range, head));
                start += take;
            }
        });
    }
}

/// Phase-1 prescoring against the lookup table, parallel over queries.
fn prescore_with_lookup(
    ctx: &ReferenceContext,
    table: &LookupTable,
    s2p: &[u32],
    chunk: &[EncodedQuery],
    mat: &mut [f64],
    branches: usize,
    n_threads: usize,
) {
    let mut m = RowMatrix { data: mat, width: branches };
    m.with_rows(chunk.len(), n_threads, |q_range, rows| {
        for (local, row) in q_range.clone().zip(rows.chunks_mut(branches)) {
            let codes = &chunk[local].codes;
            for e in ctx.tree().all_edges() {
                row[e.idx()] = table.prescore(ctx, e, s2p, codes);
            }
        }
    });
}

/// Runs `scorer` over branch blocks whose CLVs are prepared under the slot
/// budget. With `async_prefetch`, the next block's CLVs are computed on a
/// dedicated thread while the current block is scored — the paper's
/// adapted parallelization. There is no store-wide lock: the prefetch
/// thread plans under the store's internal plan lock (held only during
/// planning) and then executes lock-free under its execution pins, so
/// scoring readers of the current block's pinned, published slots never
/// block on it (see DESIGN.md §6).
///
/// Degrades gracefully under slot pressure: if a block's targets cannot
/// all be pinned at once ([`phylo_amc::AmcError::AllSlotsPinned`]), the
/// block is recursively split and prepared synchronously, and prefetching
/// resumes at the next block.
fn run_blocks(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    blocks: &[Vec<EdgeId>],
    async_prefetch: bool,
    deg: &DegradationCounters,
    mut scorer: impl FnMut(&[EdgeId]) -> Result<(), PlaceError>,
) -> Result<(), PlaceError> {
    if blocks.is_empty() {
        return Ok(());
    }
    if !async_prefetch {
        for block in blocks {
            prepare_split(ctx, store, block, deg, &mut scorer)?;
        }
        return Ok(());
    }
    let mut next: Option<PreparedBlock> = try_prepare(ctx, store, &blocks[0])?;
    for k in 0..blocks.len() {
        match next.take() {
            Some(prepared) => {
                let mut prefetched: Option<PreparedBlock> = None;
                let mut prefetch_result: Result<(), PlaceError> = Ok(());
                let mut scorer_result: Result<(), PlaceError> = Ok(());
                if k + 1 < blocks.len() {
                    let next_dirs = dirs_of(&blocks[k + 1]);
                    // The traversal schedule names next block's CLVs in
                    // advance — stage any demoted copies (disk reads off
                    // the critical path) before the slot planner asks.
                    if let Some(tiers) = store.arena().tiers() {
                        let keys: Vec<phylo_amc::ClvKey> =
                            next_dirs.iter().map(|d| phylo_amc::ClvKey(d.0)).collect();
                        tiers.prefetch(&keys);
                    }
                    let pref_slot = &mut prefetched;
                    let pref_err = &mut prefetch_result;
                    std::thread::scope(|s| {
                        let handle = s.spawn(|| -> Result<Option<PreparedBlock>, PlaceError> {
                            let _span = phylo_obs::trace::span("prefetch", "prefetch");
                            if phylo_faults::fire("place::prefetch_panic") {
                                // Fires before any pins are taken, so the
                                // contained panic leaves nothing to drain.
                                panic!("injected prefetch panic");
                            }
                            let mut pending = match store.plan_prepare(ctx, &next_dirs) {
                                Ok(p) => p,
                                Err(e) if is_pin_exhaustion(&e) => return Ok(None),
                                Err(e) => return Err(e.into()),
                            };
                            loop {
                                match store.execute_one(ctx, &mut pending) {
                                    Ok(true) => {}
                                    Ok(false) => break,
                                    Err(e) => {
                                        // The failed step left unpublished
                                        // targets; drop them so the store
                                        // stays usable for whoever handles
                                        // the error.
                                        store.abandon(pending);
                                        return Err(e.into());
                                    }
                                }
                            }
                            Ok(Some(pending.into_prepared()))
                        });
                        scorer_result = scorer(&blocks[k]);
                        match handle.join() {
                            Ok(Ok(opt)) => *pref_slot = opt,
                            Ok(Err(e)) => *pref_err = Err(e),
                            Err(payload) => {
                                *pref_err = Err(PlaceError::WorkerPanicked {
                                    context: format!(
                                        "prefetch thread: {}",
                                        panic_message(payload.as_ref())
                                    ),
                                });
                            }
                        }
                    });
                } else {
                    scorer_result = scorer(&blocks[k]);
                }
                store.release(prepared);
                scorer_result?;
                prefetch_result?;
                next = prefetched;
            }
            None => {
                // This block could not be prefetched whole: prepare it
                // synchronously, splitting as needed, then resume
                // prefetching from the next block.
                prepare_split(ctx, store, &blocks[k], deg, &mut scorer)?;
                if k + 1 < blocks.len() {
                    next = try_prepare(ctx, store, &blocks[k + 1])?;
                }
            }
        }
    }
    Ok(())
}

/// Renders a caught panic payload for [`PlaceError::WorkerPanicked`].
/// `panic!` payloads are `&str` or `String` in practice; anything else is
/// reported opaquely rather than re-thrown.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn dirs_of(block: &[EdgeId]) -> Vec<DirEdgeId> {
    block.iter().flat_map(|&e| [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).collect()
}

fn is_pin_exhaustion(e: &phylo_engine::EngineError) -> bool {
    matches!(e, phylo_engine::EngineError::Amc(phylo_amc::AmcError::AllSlotsPinned { .. }))
}

/// Prepares a block, scoring and releasing it; on pin exhaustion the block
/// is split in half recursively (a single branch always fits: two target
/// pins plus the `⌈log₂ n⌉ + 2` traversal floor).
fn prepare_split(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    block: &[EdgeId],
    deg: &DegradationCounters,
    scorer: &mut impl FnMut(&[EdgeId]) -> Result<(), PlaceError>,
) -> Result<(), PlaceError> {
    match store.prepare(ctx, &dirs_of(block)) {
        Ok(prepared) => {
            let r = scorer(block);
            store.release(prepared);
            r
        }
        Err(e) if is_pin_exhaustion(&e) && block.len() > 1 => {
            let mid = block.len() / 2;
            prepare_split(ctx, store, &block[..mid], deg, scorer)?;
            prepare_split(ctx, store, &block[mid..], deg, scorer)
        }
        Err(e) if is_pin_exhaustion(&e) => {
            // Even a single branch can exhaust the pins when the plan
            // references many *cached* dependencies (each gets pinned for
            // the pass). Flush the cache and retry over a clean slate,
            // where the pin demand is bounded by the traversal floor.
            // Concurrent planners can race us to the freed slots, so back
            // off exponentially (capped, jittered so racing threads
            // desynchronize) between a few attempts before giving up —
            // the ladder's last rung.
            let mut backoff =
                phylo_amc::Backoff::new(Duration::from_millis(1), Duration::from_millis(8));
            let mut last = e;
            for attempt in 0..4 {
                if attempt > 0 {
                    std::thread::sleep(backoff.next_delay());
                }
                deg.flush_retries.fetch_add(1, Ordering::Relaxed);
                store.flush_cache();
                match store.prepare(ctx, &dirs_of(block)) {
                    Ok(prepared) => {
                        let r = scorer(block);
                        store.release(prepared);
                        return r;
                    }
                    Err(e) if is_pin_exhaustion(&e) => last = e,
                    Err(e) => return Err(e.into()),
                }
            }
            Err(last.into())
        }
        Err(e) => Err(e.into()),
    }
}

/// Prefetch-style preparation that treats pin exhaustion as "not now"
/// rather than an error.
fn try_prepare(
    ctx: &ReferenceContext,
    store: &ManagedStore,
    block: &[EdgeId],
) -> Result<Option<PreparedBlock>, PlaceError> {
    match store.prepare(ctx, &dirs_of(block)) {
        Ok(p) => Ok(Some(p)),
        Err(e) if is_pin_exhaustion(&e) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PreplacementMode;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::{generate, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(
        n: usize,
        sites: usize,
        n_queries: usize,
        seed: u64,
    ) -> (ReferenceContext, Vec<u32>, QueryBatch) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String = (0..sites)
                    .map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char)
                    .collect();
                Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
            })
            .collect();
        let msa = Msa::new(rows).unwrap();
        let patterns = compress(&msa).unwrap();
        let s2p = patterns.site_to_pattern().to_vec();
        // Queries: mutated copies of random reference rows.
        let queries: Vec<Sequence> = (0..n_queries)
            .map(|i| {
                let src = msa.row(rng.gen_range(0..n)).codes().to_vec();
                let mutated: Vec<u8> = src
                    .iter()
                    .map(|&c| if rng.gen_bool(0.05) { rng.gen_range(0..4) } else { c })
                    .collect();
                Sequence::from_codes(format!("q{i}"), AlphabetKind::Dna, mutated).unwrap()
            })
            .collect();
        let batch = QueryBatch::new(&queries, sites).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let ctx =
            ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();
        (ctx, s2p, batch)
    }

    fn best_edges(results: &[PlacementResult]) -> Vec<u32> {
        results.iter().map(|r| r.best().unwrap().edge.0).collect()
    }

    #[test]
    fn default_run_places_everything() {
        let (ctx, s2p, batch) = setup(12, 60, 8, 1);
        let placer = Placer::new(ctx, s2p, EpaConfig::default()).unwrap();
        let (results, report) = placer.place(&batch).unwrap();
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(!r.placements.is_empty());
            let lwr: f64 = r.placements.iter().map(|p| p.like_weight_ratio).sum();
            assert!((lwr - 1.0).abs() < 1e-9);
        }
        assert!(report.used_lookup);
        assert!(report.n_prescored >= (8 * 21) as u64);
        assert!(report.total_time.as_nanos() > 0);
    }

    #[test]
    fn amc_and_full_agree_on_best_placements() {
        let (ctx, s2p, batch) = setup(16, 80, 10, 2);
        let full = Placer::new(ctx, s2p.clone(), EpaConfig::default()).unwrap();
        let (r_full, rep_full) = full.place(&batch).unwrap();

        let (ctx2, _, _) = setup(16, 80, 10, 2);
        let tight_cfg = EpaConfig {
            max_memory: Some(rep_full.peak_memory), // plenty: same layout
            ..Default::default()
        };
        let tight = Placer::new(ctx2, s2p, tight_cfg).unwrap();
        let (r_tight, _) = tight.place(&batch).unwrap();
        assert_eq!(best_edges(&r_full), best_edges(&r_tight));
        for (a, b) in r_full.iter().zip(&r_tight) {
            assert!(
                (a.best().unwrap().log_likelihood - b.best().unwrap().log_likelihood).abs() < 1e-9
            );
        }
    }

    #[test]
    fn no_lookup_path_matches_lookup_path() {
        let (ctx, s2p, batch) = setup(12, 50, 6, 3);
        let with = Placer::new(ctx, s2p.clone(), EpaConfig::default()).unwrap();
        let (r_with, rep_with) = with.place(&batch).unwrap();
        assert!(rep_with.used_lookup);

        let (ctx2, _, _) = setup(12, 50, 6, 3);
        let cfg = EpaConfig { preplacement: PreplacementMode::Off, ..Default::default() };
        let without = Placer::new(ctx2, s2p, cfg).unwrap();
        let (r_without, rep_without) = without.place(&batch).unwrap();
        assert!(!rep_without.used_lookup);
        assert_eq!(best_edges(&r_with), best_edges(&r_without));
    }

    #[test]
    fn parallel_matches_serial() {
        let (ctx, s2p, batch) = setup(14, 60, 9, 4);
        let serial =
            Placer::new(ctx, s2p.clone(), EpaConfig { threads: 1, ..Default::default() }).unwrap();
        let (r1, _) = serial.place(&batch).unwrap();
        let (ctx2, _, _) = setup(14, 60, 9, 4);
        let par = Placer::new(ctx2, s2p, EpaConfig { threads: 4, ..Default::default() }).unwrap();
        let (r2, _) = par.place(&batch).unwrap();
        assert_eq!(best_edges(&r1), best_edges(&r2));
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.placements.len(), b.placements.len());
            for (x, y) in a.placements.iter().zip(&b.placements) {
                assert_eq!(x.edge, y.edge);
                assert_eq!(x.log_likelihood.to_bits(), y.log_likelihood.to_bits());
            }
        }
    }

    #[test]
    fn async_prefetch_matches_sync() {
        let (ctx, s2p, batch) = setup(14, 50, 6, 5);
        let cfg_sync = EpaConfig {
            preplacement: PreplacementMode::Off,
            async_prefetch: false,
            block_size: 4,
            ..Default::default()
        };
        let sync = Placer::new(ctx, s2p.clone(), cfg_sync).unwrap();
        let (r1, _) = sync.place(&batch).unwrap();
        let (ctx2, _, _) = setup(14, 50, 6, 5);
        let cfg_async = EpaConfig {
            preplacement: PreplacementMode::Off,
            async_prefetch: true,
            block_size: 4,
            threads: 2,
            ..Default::default()
        };
        let asy = Placer::new(ctx2, s2p, cfg_async).unwrap();
        let (r2, _) = asy.place(&batch).unwrap();
        assert_eq!(best_edges(&r1), best_edges(&r2));
    }

    #[test]
    fn small_chunks_match_large_chunks() {
        let (ctx, s2p, batch) = setup(12, 40, 10, 6);
        let big = Placer::new(ctx, s2p.clone(), EpaConfig::default()).unwrap();
        let (r1, _) = big.place(&batch).unwrap();
        let (ctx2, _, _) = setup(12, 40, 10, 6);
        let small =
            Placer::new(ctx2, s2p, EpaConfig { chunk_size: 3, ..Default::default() }).unwrap();
        let (r2, _) = small.place(&batch).unwrap();
        assert_eq!(best_edges(&r1), best_edges(&r2));
    }

    #[test]
    fn tight_memory_recomputes_more() {
        let (ctx, s2p, batch) = setup(24, 60, 6, 7);
        // Baseline: unlimited.
        let off = Placer::new(ctx, s2p.clone(), EpaConfig::default()).unwrap();
        let (_, rep_off) = off.place(&batch).unwrap();
        // Tight: minimum feasible slots (floor budget), no lookup.
        let (ctx2, _, _) = setup(24, 60, 6, 7);
        let slot_bytes =
            phylo_amc::SlotArena::bytes_per_slot(ctx2.layout().clv_len(), ctx2.layout().patterns);
        let floor = ctx2.approx_bytes()
            + memplan::chunk_bytes(&ctx2, 2, batch.n_sites())
            + (ctx2.min_slots() + 4) * slot_bytes;
        let cfg = EpaConfig {
            preplacement: PreplacementMode::Off,
            max_memory: Some(floor),
            chunk_size: 2,
            block_size: 8,
            async_prefetch: false,
            ..Default::default()
        };
        let tight = Placer::new(ctx2, s2p, cfg).unwrap();
        let (_, rep_tight) = tight.place(&batch).unwrap();
        assert!(
            rep_tight.slot_stats.misses > rep_off.slot_stats.misses,
            "no-lookup chunked runs must recompute more CLVs: {:?} vs {:?}",
            rep_tight.slot_stats,
            rep_off.slot_stats
        );
    }

    #[test]
    fn block_plan_walks_the_degradation_ladder() {
        let (ctx, s2p, _) = setup(12, 40, 1, 9);
        let floor = ctx.min_slots();
        let sync_cfg = EpaConfig { async_prefetch: false, ..Default::default() };
        let placer = Placer::new(ctx, s2p.clone(), sync_cfg).unwrap();
        let deg = DegradationCounters::default();
        // Bottom rung: a sync block pins 2 slots; one spare slot cannot
        // carry even a one-branch block and must be rejected, not silently
        // deadlocked at prepare time.
        assert!(matches!(
            placer.plan_block(floor + 1, &deg),
            Err(PlaceError::SlotHeadroomTooSmall { needed: 2, .. })
        ));
        let plan = placer.plan_block(floor + 2, &deg).unwrap();
        assert_eq!(plan.block_size, 1);
        assert!(!plan.async_prefetch);
        assert!(plan.block_clamped && !plan.prefetch_disabled);
        assert_eq!(deg.snapshot().block_clamped, 1);

        // Async prefetch keeps two blocks pinned (4 slots per branch);
        // with less spare than that the ladder falls back to synchronous
        // preparation instead of erroring out.
        let (ctx2, _, _) = setup(12, 40, 1, 9);
        let async_cfg = EpaConfig { async_prefetch: true, ..Default::default() };
        let async_placer = Placer::new(ctx2, s2p, async_cfg).unwrap();
        let deg = DegradationCounters::default();
        let plan = async_placer.plan_block(floor + 3, &deg).unwrap();
        assert_eq!(plan.block_size, 1);
        assert!(!plan.async_prefetch && plan.prefetch_disabled);
        assert_eq!(deg.snapshot().prefetch_disabled, 1);
        let plan = async_placer.plan_block(floor + 4, &deg).unwrap();
        assert_eq!(plan.block_size, 1);
        assert!(plan.async_prefetch && !plan.prefetch_disabled);
        // Only one spare slot is fatal even after dropping prefetch.
        assert!(matches!(
            async_placer.plan_block(floor + 1, &deg),
            Err(PlaceError::SlotHeadroomTooSmall { needed: 2, .. })
        ));
    }

    #[test]
    fn identical_queries_place_at_their_taxon() {
        let (ctx, s2p, _) = setup(10, 100, 1, 8);
        // Build queries identical to the first three taxa.
        let queries: Vec<Sequence> = (0..3)
            .map(|i| {
                let per_pattern = ctx.tip_codes(NodeId(i as u32)).to_vec();
                let codes: Vec<u8> = s2p.iter().map(|&p| per_pattern[p as usize]).collect();
                Sequence::from_codes(format!("taxon-copy-{i}"), AlphabetKind::Dna, codes).unwrap()
            })
            .collect();
        let batch = QueryBatch::new(&queries, 100).unwrap();
        let pendant_edges: Vec<u32> =
            (0..3).map(|i| ctx.tree().neighbors(NodeId(i as u32))[0].1 .0).collect();
        let placer = Placer::new(ctx, s2p, EpaConfig::default()).unwrap();
        let (results, _) = placer.place(&batch).unwrap();
        for (r, expect) in results.iter().zip(pendant_edges) {
            assert_eq!(r.best().unwrap().edge.0, expect, "query {}", r.name);
        }
    }

    /// Bit-exact equality of full placement lists — the service-mode
    /// byte-identity contract at the results layer.
    fn assert_bit_identical(a: &[PlacementResult], b: &[PlacementResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.placements.len(), y.placements.len());
            for (p, q) in x.placements.iter().zip(&y.placements) {
                assert_eq!(p.edge, q.edge);
                assert_eq!(p.log_likelihood.to_bits(), q.log_likelihood.to_bits());
                assert_eq!(p.like_weight_ratio.to_bits(), q.like_weight_ratio.to_bits());
                assert_eq!(p.pendant_length.to_bits(), q.pendant_length.to_bits());
                assert_eq!(p.distal_length.to_bits(), q.distal_length.to_bits());
            }
        }
    }

    #[test]
    fn warm_runs_match_cold_runs_bit_exactly_and_reuse_the_arena() {
        let (ctx, s2p, batch) = setup(14, 60, 9, 11);
        let placer = Placer::new(ctx, s2p, EpaConfig::default()).unwrap();
        let (cold, _) = placer.place(&batch).unwrap();
        let warm = placer.warm_up().unwrap();
        assert!(warm.use_lookup());
        let token = CancelToken::new();
        // Two consecutive runs over the same store: both must match the
        // cold run bit-exactly — the second proves that residue from
        // the first (resident CLVs, strategy state) cannot change
        // results, only hit rates.
        let one = placer.place_warm(&warm, &batch, &token).unwrap();
        assert!(one.completed);
        assert_bit_identical(&cold, &one.results);
        let base = warm.slot_stats();
        let two = placer.place_warm(&warm, &batch, &token).unwrap();
        assert_bit_identical(&cold, &two.results);
        let delta = warm.slot_stats().delta(&base);
        assert_eq!(two.report.slot_stats, delta, "report must cover only its own run");
        assert!(
            delta.misses < base.misses,
            "a warm rerun must recompute fewer CLVs than the first run ({} vs {})",
            delta.misses,
            base.misses,
        );
    }

    #[test]
    fn warm_run_subsets_match_their_own_cold_runs() {
        // The daemon serves per-request subsets against one shared
        // store; each subset's results must equal a dedicated cold run
        // of just that subset.
        let (ctx, s2p, batch) = setup(14, 60, 8, 12);
        let placer = Placer::new(ctx, s2p, EpaConfig::default()).unwrap();
        let warm = placer.warm_up().unwrap();
        let token = CancelToken::new();
        let queries = batch.queries();
        for range in [0..3usize, 3..8usize] {
            let subset: Vec<Sequence> = queries[range.clone()]
                .iter()
                .map(|q| {
                    Sequence::from_codes(q.name.clone(), AlphabetKind::Dna, q.codes.clone())
                        .unwrap()
                })
                .collect();
            let sub_batch = QueryBatch::new(&subset, 60).unwrap();
            let cold = self::setup(14, 60, 8, 12);
            let cold_placer = Placer::new(cold.0, cold.1, EpaConfig::default()).unwrap();
            let (cold_results, _) = cold_placer.place(&sub_batch).unwrap();
            let out = placer.place_warm(&warm, &sub_batch, &token).unwrap();
            assert_bit_identical(&cold_results, &out.results);
        }
    }

    #[test]
    fn cancelled_warm_run_is_clean_and_store_stays_usable() {
        let (ctx, s2p, batch) = setup(12, 50, 6, 13);
        let placer =
            Placer::new(ctx, s2p, EpaConfig { chunk_size: 2, ..Default::default() }).unwrap();
        let warm = placer.warm_up().unwrap();
        let armed = CancelToken::new();
        armed.cancel();
        let out = placer.place_warm(&warm, &batch, &armed).unwrap();
        assert!(!out.completed);
        assert_eq!(out.queries_done, 0);
        assert!(out.results.is_empty());
        // The pre-armed token must not poison the store for the next
        // request: a fresh token serves normally.
        let fresh = CancelToken::new();
        let ok = placer.place_warm(&warm, &batch, &fresh).unwrap();
        assert!(ok.completed);
        assert_eq!(ok.results.len(), 6);
    }

    #[test]
    fn warm_up_refuses_tiered_storage() {
        let (ctx, s2p, _) = setup(10, 40, 2, 14);
        let cfg = EpaConfig {
            tiers: Some(phylo_amc::TierConfig::parse("compressed").unwrap()),
            ..Default::default()
        };
        let placer = Placer::new(ctx, s2p, cfg).unwrap();
        assert!(matches!(placer.warm_up(), Err(PlaceError::BadConfig(_))));
    }
}
