//! Placement results and `jplace` export.

use phylo_amc::SlotStats;
use phylo_tree::{EdgeId, Tree};
use std::time::Duration;

/// One scored insertion of a query into a branch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementEntry {
    /// The reference branch.
    pub edge: EdgeId,
    /// Log-likelihood of the extended tree.
    pub log_likelihood: f64,
    /// Likelihood weight ratio across this query's scored candidates.
    pub like_weight_ratio: f64,
    /// Optimized pendant branch length.
    pub pendant_length: f64,
    /// Optimized distal (from the edge's `a` endpoint) attachment length.
    pub distal_length: f64,
}

/// All scored placements of one query, best first.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// Query name.
    pub name: String,
    /// Scored candidate branches, sorted by descending log-likelihood.
    pub placements: Vec<PlacementEntry>,
}

impl PlacementResult {
    /// The best placement (highest likelihood), if any candidate scored.
    pub fn best(&self) -> Option<&PlacementEntry> {
        self.placements.first()
    }

    /// Sorts candidates and fills in likelihood weight ratios:
    /// `lwr_i = exp(ll_i − ll_max) / Σ_j exp(ll_j − ll_max)`.
    pub fn finalize(&mut self) {
        self.placements.sort_by(|a, b| {
            b.log_likelihood
                .partial_cmp(&a.log_likelihood)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.edge.0.cmp(&b.edge.0))
        });
        let Some(max) = self.placements.first().map(|p| p.log_likelihood) else { return };
        let mut total = 0.0;
        for p in &mut self.placements {
            p.like_weight_ratio = (p.log_likelihood - max).exp();
            total += p.like_weight_ratio;
        }
        if total > 0.0 {
            for p in &mut self.placements {
                p.like_weight_ratio /= total;
            }
        }
    }
}

/// Counters and timings of a full placement run (the measurements every
/// experiment harness reads).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Wall-clock time of the whole run.
    pub total_time: Duration,
    /// Time building the lookup table (zero when disabled).
    pub lookup_time: Duration,
    /// Time in the prescore phase.
    pub prescore_time: Duration,
    /// Time in the thorough phase.
    pub thorough_time: Duration,
    /// Queries placed.
    pub n_queries: usize,
    /// (query, branch) pairs prescored.
    pub n_prescored: u64,
    /// (query, branch) pairs thoroughly scored.
    pub n_thorough: u64,
    /// CLV slot traffic accumulated over the run.
    pub slot_stats: SlotStats,
    /// Accounted peak memory (bytes).
    pub peak_memory: usize,
    /// Whether the lookup table was used.
    pub used_lookup: bool,
    /// Slots allocated.
    pub slots: usize,
    /// How often the run had to step down the degradation ladder.
    pub degradation: DegradationStats,
    /// Chunks restored from a resumed checkpoint journal instead of
    /// recomputed (zero on a fresh run). Their stats are folded into
    /// the counters above; the timings cover only this process's work.
    pub resumed_chunks: usize,
    /// Storage-tier traffic (`None` unless the run was configured with
    /// tiered CLV storage via `EpaConfig::tiers`).
    pub tier_stats: Option<phylo_amc::TierStats>,
    /// Per-run observability snapshot: the slot-traffic and degradation
    /// counters are always folded in; with the `obs` feature enabled it
    /// additionally carries every live probe recorded during the run
    /// (kernel timings, wait-latency histograms, scratch-pool churn).
    /// Export with [`phylo_obs::Snapshot::to_json`].
    pub metrics: phylo_obs::Snapshot,
}

/// Counters for the graceful-degradation ladder the orchestrator walks
/// under slot pressure instead of aborting (see DESIGN.md §7): disable
/// async prefetch, shrink the branch block, flush the CLV cache and
/// retry with backoff. All zeros on an unpressured run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Times async prefetch was disabled because the spare slots could
    /// only carry one pinned block.
    pub prefetch_disabled: u64,
    /// Times the branch block size was clamped below the configured one.
    pub block_clamped: u64,
    /// Cache flush-and-retry attempts after pin exhaustion on a
    /// single-branch block.
    pub flush_retries: u64,
}

impl DegradationStats {
    /// Folds one chunk's counters into a running total. The orchestrator
    /// accumulates per-chunk stats through this, so the final
    /// [`RunReport::degradation`] covers every chunk of the run, not just
    /// the last one.
    pub fn merge(&mut self, other: DegradationStats) {
        self.prefetch_disabled += other.prefetch_disabled;
        self.block_clamped += other.block_clamped;
        self.flush_retries += other.flush_retries;
    }
}

/// Serializes results in the `jplace` (v3) format. The tree string carries
/// `{edge}` numbers matching [`PlacementEntry::edge`].
pub fn to_jplace(tree: &Tree, results: &[PlacementResult]) -> String {
    to_jplace_with(tree, results, true)
}

/// As [`to_jplace`], marking the run's completion state in the metadata:
/// a cancelled (deadline/SIGINT) run emits its durable prefix with
/// `"completed": false` so downstream tooling can distinguish a partial
/// result from a finished one.
pub fn to_jplace_with(tree: &Tree, results: &[PlacementResult], completed: bool) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"version\": 3,\n  \"tree\": \"");
    out.push_str(&newick_with_edge_numbers(tree));
    out.push_str("\",\n  \"fields\": [\"edge_num\", \"likelihood\", \"like_weight_ratio\", \"distal_length\", \"pendant_length\"],\n  \"placements\": [\n");
    for (qi, r) in results.iter().enumerate() {
        out.push_str("    {\"p\": [");
        for (i, p) in r.placements.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "[{}, {:.6}, {:.6}, {:.6}, {:.6}]",
                p.edge.0, p.log_likelihood, p.like_weight_ratio, p.distal_length, p.pendant_length
            ));
        }
        out.push_str(&format!("], \"n\": [{:?}]}}", r.name));
        out.push_str(if qi + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str(&format!(
        "  ],\n  \"metadata\": {{\"software\": \"phyloplace\", \"completed\": {completed}}}\n}}\n"
    ));
    out
}

/// Writes jplace output crash-atomically *and durably*: the contents go
/// to `<path>.tmp` first, are fsynced, renamed into place, and the
/// parent directory is fsynced so the rename itself survives power
/// loss. An interrupted run leaves either the previous output or none —
/// never a truncated file a downstream parser would choke on, and never
/// a rename that evaporates with the directory's dirty page.
pub fn write_jplace_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    phylo_journal::write_text_atomic_probed(path, contents, "place::jplace_io")
}

/// Newick with `{edge_id}` annotations after each branch length (the
/// jplace convention).
fn newick_with_edge_numbers(tree: &Tree) -> String {
    fn write_subtree(
        tree: &Tree,
        node: phylo_tree::NodeId,
        from: phylo_tree::NodeId,
        out: &mut String,
    ) {
        if tree.is_leaf(node) {
            out.push_str(tree.taxon(node));
            return;
        }
        out.push('(');
        let mut first = true;
        for &(w, e) in tree.neighbors(node) {
            if w == from {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write_subtree(tree, w, node, out);
            out.push_str(&format!(":{}{{{}}}", tree.edge_length(e), e.0));
        }
        out.push(')');
    }
    let leaf0 = phylo_tree::NodeId(0);
    let (anchor, e0) = tree.neighbors(leaf0)[0];
    let mut out = String::new();
    out.push('(');
    out.push_str(tree.taxon(leaf0));
    out.push_str(&format!(":{}{{{}}}", tree.edge_length(e0), e0.0));
    for &(w, e) in tree.neighbors(anchor) {
        if w == leaf0 {
            continue;
        }
        out.push(',');
        write_subtree(tree, w, anchor, &mut out);
        out.push_str(&format!(":{}{{{}}}", tree.edge_length(e), e.0));
    }
    out.push_str(");");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_tree::tree::tripod;

    fn entry(edge: u32, ll: f64) -> PlacementEntry {
        PlacementEntry {
            edge: EdgeId(edge),
            log_likelihood: ll,
            like_weight_ratio: 0.0,
            pendant_length: 0.1,
            distal_length: 0.05,
        }
    }

    #[test]
    fn finalize_sorts_and_normalizes() {
        let mut r = PlacementResult {
            name: "q".into(),
            placements: vec![entry(0, -10.0), entry(1, -8.0), entry(2, -12.0)],
        };
        r.finalize();
        assert_eq!(r.best().unwrap().edge, EdgeId(1));
        let total: f64 = r.placements.iter().map(|p| p.like_weight_ratio).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(r.placements[0].like_weight_ratio > r.placements[1].like_weight_ratio);
    }

    #[test]
    fn lwr_reflects_likelihood_gaps() {
        let mut r = PlacementResult {
            name: "q".into(),
            placements: vec![entry(0, -5.0), entry(1, -5.0 + (0.25f64).ln())],
        };
        r.finalize();
        // Second entry has likelihood ratio 1/4 of the first.
        let ratio = r.placements[1].like_weight_ratio / r.placements[0].like_weight_ratio;
        assert!((ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jplace_is_wellformed() {
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let mut r = PlacementResult { name: "query1".into(), placements: vec![entry(0, -3.0)] };
        r.finalize();
        let j = to_jplace(&tree, &[r]);
        assert!(j.contains("\"version\": 3"));
        assert!(j.contains("{0}"));
        assert!(j.contains("query1"));
        assert!(j.contains("edge_num"));
        // Every edge id annotated exactly once in the tree string.
        for e in tree.all_edges() {
            assert!(j.contains(&format!("{{{}}}", e.0)));
        }
    }
}
