//! Turning a `--maxmem` budget into a concrete memory plan.
//!
//! Priority order (mirroring EPA-NG's behavior in the paper):
//!
//! 1. mandatory structures: static reference data, per-chunk query bytes,
//!    and the per-chunk (QS × branch) result matrix — the structure whose
//!    `chunk_size` proportionality sets the minimum possible footprint
//!    (paper §V-A and Fig. 4);
//! 2. the preplacement lookup table, if it fits alongside the minimum slot
//!    count — losing it is the paper's sharp execution-time cliff;
//! 3. every remaining byte goes to CLV slots, clamped to
//!    `[⌈log₂ n⌉ + 2 + pin headroom, 3(n−2)]`.

use crate::config::{EpaConfig, PreplacementMode};
use crate::error::PlaceError;
use phylo_amc::budget::{slots_for_budget, MemCategory, MemoryTracker};
use phylo_amc::SlotArena;
use phylo_engine::ReferenceContext;

/// Whether active CLV management is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmcMode {
    /// No memory limit: full CLV layout, lookup table on (paper "off").
    Off,
    /// Slot-managed CLVs under a byte budget.
    Amc,
}

impl std::fmt::Display for AmcMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmcMode::Off => write!(f, "off"),
            AmcMode::Amc => write!(f, "amc"),
        }
    }
}

/// The resolved memory plan for a run.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// AMC on or off.
    pub mode: AmcMode,
    /// CLV slots to allocate.
    pub slots: usize,
    /// Whether the preplacement lookup table is built.
    pub use_lookup: bool,
    /// Effective chunk size.
    pub chunk_size: usize,
    /// Accounted bytes at plan time (peak estimate).
    pub tracker: MemoryTracker,
}

impl MemoryPlan {
    /// Total planned bytes.
    pub fn planned_bytes(&self) -> usize {
        self.tracker.total()
    }
}

/// Bytes of the lookup table for this reference: per branch, per pattern,
/// `states + 1` linear-likelihood columns plus a scaler count.
pub fn lookup_bytes(ctx: &ReferenceContext) -> usize {
    let branches = ctx.tree().n_edges();
    let patterns = ctx.layout().patterns;
    let states = ctx.layout().states;
    branches * patterns * ((states + 1) * 8 + 4)
}

/// Bytes of the per-chunk (QS × branch) prescore matrix plus per-chunk
/// query storage.
pub fn chunk_bytes(ctx: &ReferenceContext, chunk_size: usize, n_sites: usize) -> usize {
    let branches = ctx.tree().n_edges();
    chunk_size * branches * 8 + chunk_size * n_sites
}

/// Derives the plan from the configuration and reference shape.
pub fn plan(
    ctx: &ReferenceContext,
    cfg: &EpaConfig,
    n_queries: usize,
    n_sites: usize,
) -> Result<MemoryPlan, PlaceError> {
    cfg.validate()?;
    let layout = ctx.layout();
    let slot_bytes = SlotArena::bytes_per_slot(layout.clv_len(), layout.patterns);
    let chunk_size = cfg.chunk_size.min(n_queries.max(1));
    let static_bytes = ctx.approx_bytes();
    let chunk_buf = chunk_bytes(ctx, chunk_size, n_sites);
    let lookup = lookup_bytes(ctx);
    let min_slots = ctx.min_slots() + pin_headroom(ctx);
    let max_slots = ctx.max_slots().max(ctx.min_slots());
    let want_lookup = cfg.preplacement == PreplacementMode::Auto;

    let mut tracker = MemoryTracker::new();
    tracker.allocate(MemCategory::StaticData, static_bytes);
    tracker.allocate(MemCategory::ChunkBuffers, chunk_buf);

    let Some(budget) = cfg.max_memory else {
        // Unlimited: EPA-NG default mode.
        tracker.allocate(MemCategory::ClvSlots, max_slots * slot_bytes);
        if want_lookup {
            tracker.allocate(MemCategory::LookupTable, lookup);
        }
        return Ok(MemoryPlan {
            mode: AmcMode::Off,
            slots: max_slots,
            use_lookup: want_lookup,
            chunk_size,
            tracker,
        });
    };

    let fixed = static_bytes + chunk_buf;
    if budget < fixed + min_slots * slot_bytes {
        return Err(PlaceError::BudgetTooSmall {
            budget_bytes: budget,
            required_bytes: fixed + min_slots * slot_bytes,
            chunk_size,
        });
    }
    let remaining = budget - fixed;
    let (use_lookup, slots) = if want_lookup && remaining >= lookup + min_slots * slot_bytes {
        let slots = slots_for_budget(remaining - lookup, slot_bytes, min_slots, max_slots)
            .expect("budget checked above");
        (true, slots)
    } else {
        let slots = slots_for_budget(remaining, slot_bytes, min_slots, max_slots)
            .expect("budget checked above");
        (false, slots)
    };
    tracker.allocate(MemCategory::ClvSlots, slots * slot_bytes);
    if use_lookup {
        tracker.allocate(MemCategory::LookupTable, lookup);
    }
    Ok(MemoryPlan { mode: AmcMode::Amc, slots, use_lookup, chunk_size, tracker })
}

/// How one scoring pass runs branch blocks after the degradation ladder
/// ([`effective_block_size`]) has fitted the configured block size and
/// prefetch mode to a slot budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    /// Branches per block, ≥ 1 whenever planning succeeds.
    pub block_size: usize,
    /// Whether the next block is prefetched on a dedicated thread.
    pub async_prefetch: bool,
    /// Ladder rung 1 fired: async prefetch was requested but the spare
    /// slots can only carry one pinned block.
    pub prefetch_disabled: bool,
    /// Ladder rung 2 fired: the block size was clamped below the
    /// configured one.
    pub block_clamped: bool,
}

/// The degradation ladder: fits the configured block size and prefetch
/// mode to `slots` instead of aborting. Each block pins two CLVs per
/// branch (both orientations), async prefetch keeps two blocks pinned at
/// once, and `⌈log₂ n⌉ + 2` slots must stay unpinned for the traversal
/// itself.
///
/// Rungs, in order: (1) disable async prefetch when the spare slots can
/// only carry one pinned block; (2) clamp the block size to what the
/// remaining spare supports — never below one branch. The bottom rung —
/// not even a one-branch synchronous block fits — is a hard
/// [`PlaceError::SlotHeadroomTooSmall`], never a degenerate zero-size
/// block: blocks of zero branches would spin forever and blocks of one
/// branch without headroom would still exhaust the pins at prepare time,
/// only later and less explicably. [`plan`] always reserves this headroom
/// ([`pin_headroom`]), so the error only fires for hand-built slot counts.
pub fn effective_block_size(
    ctx: &ReferenceContext,
    cfg: &EpaConfig,
    slots: usize,
) -> Result<BlockPlan, PlaceError> {
    // A full store holds every CLV: nothing is ever evicted, block pins
    // cost no headroom, and blocks can be as large as requested. (Tiny
    // trees can have fewer total slots than floor + headroom.)
    if slots >= ctx.max_slots() {
        return Ok(BlockPlan {
            block_size: cfg.block_size,
            async_prefetch: cfg.async_prefetch,
            prefetch_disabled: false,
            block_clamped: false,
        });
    }
    let spare = slots.saturating_sub(ctx.min_slots());
    let mut async_prefetch = cfg.async_prefetch;
    let prefetch_disabled = async_prefetch && spare < 4;
    if prefetch_disabled {
        async_prefetch = false;
    }
    let per_block = if async_prefetch { 4 } else { 2 };
    if spare < per_block {
        return Err(PlaceError::SlotHeadroomTooSmall {
            slots,
            min_slots: ctx.min_slots(),
            needed: per_block,
        });
    }
    let block_size = (spare / per_block).min(cfg.block_size);
    Ok(BlockPlan {
        block_size,
        async_prefetch,
        prefetch_disabled,
        block_clamped: block_size < cfg.block_size,
    })
}

/// Parses the `MemAvailable` line of `/proc/meminfo`-formatted text into
/// bytes. Exposed for testing; use [`detect_available_memory`] at runtime.
pub fn parse_meminfo_available(text: &str) -> Option<usize> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            let mut parts = rest.split_whitespace();
            let value: usize = parts.next()?.parse().ok()?;
            return match parts.next() {
                Some("kB") | None => Some(value * 1024),
                Some(unit) => {
                    debug_assert!(false, "unexpected meminfo unit {unit}");
                    Some(value * 1024)
                }
            };
        }
    }
    None
}

/// Detects the memory currently available on this machine (Linux:
/// `/proc/meminfo` `MemAvailable`). The paper's EPA-NG determines its
/// default memory limit automatically this way; pair with
/// `EpaConfig { max_memory: detect_available_memory(), .. }`.
pub fn detect_available_memory() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    parse_meminfo_available(&text)
}

/// The smallest feasible `--maxmem` for this configuration: mandatory
/// structures plus the minimum slot count, **without** the lookup table —
/// the paper's "fullest memory saving" (F) operating point.
pub fn floor_budget(
    ctx: &ReferenceContext,
    cfg: &EpaConfig,
    n_queries: usize,
    n_sites: usize,
) -> usize {
    let layout = ctx.layout();
    let slot_bytes = SlotArena::bytes_per_slot(layout.clv_len(), layout.patterns);
    let chunk_size = cfg.chunk_size.min(n_queries.max(1));
    ctx.approx_bytes()
        + chunk_bytes(ctx, chunk_size, n_sites)
        + (ctx.min_slots() + pin_headroom(ctx)) * slot_bytes
}

/// The smallest `--maxmem` at which the lookup table still fits (with the
/// minimum slot count) — the paper's "intermediate" (I) operating point,
/// just above the execution-time cliff.
pub fn lookup_floor_budget(
    ctx: &ReferenceContext,
    cfg: &EpaConfig,
    n_queries: usize,
    n_sites: usize,
) -> usize {
    floor_budget(ctx, cfg, n_queries, n_sites) + lookup_bytes(ctx)
}

/// Extra slots reserved so cross-block pinning and the prefetched block
/// never push the unpinned count below the FPA floor.
pub fn pin_headroom(ctx: &ReferenceContext) -> usize {
    // Two resident block targets (current + prefetch) of two dirs each.
    4 + (ctx.tree().n_leaves() > 1000) as usize * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::generate;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx(n: usize, sites: usize) -> ReferenceContext {
        let mut rng = StdRng::seed_from_u64(5);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String = (0..sites)
                    .map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char)
                    .collect();
                Sequence::from_text(
                    tree.taxon(phylo_tree::NodeId(i as u32)),
                    AlphabetKind::Dna,
                    &text,
                )
                .unwrap()
            })
            .collect();
        let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap()
    }

    #[test]
    fn unlimited_is_off_mode() {
        let ctx = ctx(16, 40);
        let plan = plan(&ctx, &EpaConfig::default(), 100, 40).unwrap();
        assert_eq!(plan.mode, AmcMode::Off);
        assert_eq!(plan.slots, ctx.max_slots());
        assert!(plan.use_lookup);
    }

    #[test]
    fn generous_budget_keeps_lookup() {
        let c = ctx(16, 40);
        let cfg = EpaConfig { max_memory: Some(64 * 1024 * 1024), ..Default::default() };
        let plan = plan(&c, &cfg, 100, 40).unwrap();
        assert_eq!(plan.mode, AmcMode::Amc);
        assert!(plan.use_lookup);
        assert_eq!(plan.slots, c.max_slots());
    }

    #[test]
    fn tight_budget_drops_lookup_then_slots() {
        let c = ctx(64, 200);
        let slot_bytes = SlotArena::bytes_per_slot(c.layout().clv_len(), c.layout().patterns);
        let fixed = c.approx_bytes() + chunk_bytes(&c, 10, 200);
        // Budget: fixed + min slots + lookup - 1 → lookup cannot fit.
        let min_slots = c.min_slots() + 4;
        let budget = fixed + min_slots * slot_bytes + lookup_bytes(&c) - 1;
        let cfg = EpaConfig { max_memory: Some(budget), chunk_size: 10, ..Default::default() };
        let p = plan(&c, &cfg, 10, 200).unwrap();
        assert!(!p.use_lookup, "lookup must be dropped at this budget");
        assert!(p.slots >= min_slots);
        // One byte above the full requirement → lookup fits with min slots.
        let budget2 = fixed + min_slots * slot_bytes + lookup_bytes(&c);
        let cfg2 = EpaConfig { max_memory: Some(budget2), chunk_size: 10, ..Default::default() };
        let p2 = plan(&c, &cfg2, 10, 200).unwrap();
        assert!(p2.use_lookup);
        assert_eq!(p2.slots, min_slots);
    }

    #[test]
    fn impossible_budget_errors() {
        let c = ctx(32, 100);
        let cfg = EpaConfig { max_memory: Some(1000), ..Default::default() };
        let err = plan(&c, &cfg, 100, 100).unwrap_err();
        assert!(matches!(err, PlaceError::BudgetTooSmall { .. }));
    }

    #[test]
    fn smaller_chunk_lowers_floor() {
        let c = ctx(64, 200);
        // Find the minimal feasible budget for two chunk sizes.
        let floor = |chunk: usize| {
            let slot_bytes = SlotArena::bytes_per_slot(c.layout().clv_len(), c.layout().patterns);
            c.approx_bytes() + chunk_bytes(&c, chunk, 200) + (c.min_slots() + 4) * slot_bytes
        };
        assert!(floor(500) < floor(5000), "chunk 500 must allow a lower floor");
        // And the planner agrees: the chunk-500 floor budget fails at 5000.
        let cfg =
            EpaConfig { max_memory: Some(floor(500)), chunk_size: 5000, ..Default::default() };
        assert!(plan(&c, &cfg, 10_000, 200).is_err());
        let cfg = EpaConfig { max_memory: Some(floor(500)), chunk_size: 500, ..Default::default() };
        assert!(plan(&c, &cfg, 10_000, 200).is_ok());
    }

    #[test]
    fn chunk_clamped_to_query_count() {
        let c = ctx(16, 40);
        let p = plan(&c, &EpaConfig::default(), 7, 40).unwrap();
        assert_eq!(p.chunk_size, 7);
    }

    #[test]
    fn meminfo_parsing() {
        let text = "MemTotal:       16280456 kB\nMemFree:         1304028 kB\nMemAvailable:    8123456 kB\n";
        assert_eq!(parse_meminfo_available(text), Some(8_123_456 * 1024));
        assert_eq!(parse_meminfo_available("MemTotal: 1 kB\n"), None);
        assert_eq!(parse_meminfo_available(""), None);
    }

    #[test]
    fn detect_available_memory_on_linux() {
        // On Linux this must return a sane positive value.
        if std::path::Path::new("/proc/meminfo").exists() {
            let mem = detect_available_memory().expect("MemAvailable present");
            assert!(mem > 1024 * 1024, "unreasonably small: {mem}");
        }
    }

    #[test]
    fn effective_block_size_boundary_never_degenerates() {
        let c = ctx(24, 60);
        let cfg = EpaConfig { async_prefetch: false, block_size: 64, ..Default::default() };
        // Exactly ⌈log₂ n⌉ + 2 traversal slots plus one block of pin
        // headroom: must plan, with a non-degenerate block.
        let floor_slots = c.min_slots() + pin_headroom(&c);
        assert!(floor_slots < c.max_slots(), "boundary must exercise the AMC path");
        let p = effective_block_size(&c, &cfg, floor_slots).unwrap();
        assert!(p.block_size >= 1, "zero-size blocks would spin forever: {p:?}");
        assert!(p.block_clamped, "64-branch blocks cannot fit the floor");
        assert!(!p.async_prefetch);
        // One slot of spare below a synchronous block's demand: a typed
        // headroom error, not a zero-size block.
        let err = effective_block_size(&c, &cfg, c.min_slots() + 1).unwrap_err();
        assert!(matches!(err, PlaceError::SlotHeadroomTooSmall { needed: 2, .. }), "{err:?}");
        // Async demands four spare slots; three spare falls back to sync.
        let acfg = EpaConfig { async_prefetch: true, block_size: 64, ..Default::default() };
        let p = effective_block_size(&c, &acfg, c.min_slots() + 3).unwrap();
        assert!(p.prefetch_disabled && !p.async_prefetch && p.block_size == 1, "{p:?}");
    }

    #[test]
    fn floor_budget_is_an_exact_boundary() {
        let c = ctx(24, 60);
        let cfg = EpaConfig {
            preplacement: PreplacementMode::Off,
            async_prefetch: false,
            block_size: 64,
            ..Default::default()
        };
        let floor = floor_budget(&c, &cfg, 10, 60);
        // At exactly the floor the plan succeeds with the minimum slot
        // count, and that count supports a real (≥ 1 branch) block.
        let cfg_at = EpaConfig { max_memory: Some(floor), ..cfg.clone() };
        let p = plan(&c, &cfg_at, 10, 60).unwrap();
        assert_eq!(p.slots, c.min_slots() + pin_headroom(&c));
        let bp = effective_block_size(&c, &cfg_at, p.slots).unwrap();
        assert!(bp.block_size >= 1);
        // One byte under the floor must be rejected outright.
        let cfg_under = EpaConfig { max_memory: Some(floor - 1), ..cfg };
        let err = plan(&c, &cfg_under, 10, 60).unwrap_err();
        assert!(matches!(err, PlaceError::BudgetTooSmall { .. }), "{err:?}");
    }

    #[test]
    fn preplacement_off_never_builds_lookup() {
        let c = ctx(16, 40);
        let cfg = EpaConfig { preplacement: PreplacementMode::Off, ..Default::default() };
        let p = plan(&c, &cfg, 100, 40).unwrap();
        assert!(!p.use_lookup);
    }
}
