//! The preplacement lookup table.
//!
//! "EPA-NG utilizes additional memoization techniques […] a lookup table
//! that contains constant, precomputed placement results for every branch
//! that allow to rapidly pre-score putative placements" (paper, §II). The
//! table holds, for every reference branch, a [`BranchScoreTable`]: the
//! linear likelihood of attaching each possible query residue at the
//! branch midpoint, per site pattern. Prescoring a query against a branch
//! is then a table walk over its sites — no CLV access at all.
//!
//! The table's footprint (`branches × patterns × (states+1) × 8 B`) is the
//! single allocation whose fit decides between the fast path and the
//! paper's ~23× slowdown cliff.

use crate::config::EpaConfig;
use crate::error::PlaceError;
use crate::score::{attachment_partials_into, AttachmentPartials, BranchScoreTable, ScoreScratch};
use phylo_engine::{ManagedStore, ReferenceContext};
use phylo_tree::{DirEdgeId, EdgeId};

/// Per-branch prescore tables for the whole reference tree.
pub struct LookupTable {
    tables: Vec<BranchScoreTable>,
    pendant: f64,
}

impl LookupTable {
    /// Builds the table with one sweep over all branches, processing them
    /// in blocks under whatever slot budget the store enforces.
    ///
    /// The pendant length used for prescoring is the tree's mean branch
    /// length (EPA-NG's default heuristic).
    pub fn build(
        ctx: &ReferenceContext,
        store: &ManagedStore,
        cfg: &EpaConfig,
    ) -> Result<LookupTable, PlaceError> {
        let pendant = (ctx.tree().total_length() / ctx.tree().n_edges() as f64).max(1e-6);
        let mut tables = Vec::with_capacity(ctx.tree().n_edges());
        let mut scratch = ScoreScratch::new(ctx);
        // DFS order: consecutive branches share subtree CLVs, so the slot
        // manager's working set stays hot during the sweep.
        let edges = phylo_tree::traversal::edge_dfs_order(ctx.tree());
        let mut slots: Vec<Option<BranchScoreTable>> = Vec::new();
        slots.resize_with(ctx.tree().n_edges(), || None);
        // One partials buffer serves the whole sweep; only the stored
        // tables themselves are allocated per branch.
        let mut partials = AttachmentPartials::empty();
        for block in edges.chunks(cfg.block_size.max(1)) {
            for &e in block {
                let prepared = store.prepare(ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)])?;
                attachment_partials_into(ctx, store, e, 0.5, &mut scratch, &mut partials);
                slots[e.idx()] =
                    Some(BranchScoreTable::build(ctx, &partials, pendant, &mut scratch));
                store.release(prepared);
            }
        }
        for slot in slots {
            tables.push(slot.expect("DFS order covers every edge"));
        }
        Ok(LookupTable { tables, pendant })
    }

    /// The prescore of one query at one branch.
    pub fn prescore(
        &self,
        ctx: &ReferenceContext,
        edge: EdgeId,
        site_to_pattern: &[u32],
        codes: &[u8],
    ) -> f64 {
        self.tables[edge.idx()].prescore(ctx, site_to_pattern, codes)
    }

    /// The pendant length the table was built with.
    pub fn pendant(&self) -> f64 {
        self.pendant
    }

    /// Number of branch tables.
    pub fn n_branches(&self) -> usize {
        self.tables.len()
    }

    /// Total bytes (must agree with [`crate::memplan::lookup_bytes`] up to
    /// rounding).
    pub fn bytes(&self) -> usize {
        self.tables.iter().map(|t| t.bytes()).sum()
    }
}

impl std::fmt::Debug for LookupTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupTable")
            .field("branches", &self.n_branches())
            .field("pendant", &self.pendant)
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memplan;
    use phylo_amc::StrategyKind;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::{generate, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, sites: usize, seed: u64) -> (ReferenceContext, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String = (0..sites)
                    .map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char)
                    .collect();
                Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
            })
            .collect();
        let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
        let s2p = patterns.site_to_pattern().to_vec();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let ctx =
            ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();
        (ctx, s2p)
    }

    #[test]
    fn builds_one_table_per_branch() {
        let (ctx, _) = setup(10, 25, 1);
        let store = ManagedStore::full(&ctx);
        let table = LookupTable::build(&ctx, &store, &EpaConfig::default()).unwrap();
        assert_eq!(table.n_branches(), ctx.tree().n_edges());
        assert!(table.bytes() > 0);
    }

    #[test]
    fn full_and_tight_stores_build_identical_tables() {
        let (ctx, s2p) = setup(14, 30, 2);
        let full = ManagedStore::full(&ctx);
        let tight =
            ManagedStore::with_slots(&ctx, ctx.min_slots(), StrategyKind::CostBased).unwrap();
        let cfg = EpaConfig::default();
        let t_full = LookupTable::build(&ctx, &full, &cfg).unwrap();
        let t_tight = LookupTable::build(&ctx, &tight, &cfg).unwrap();
        let codes: Vec<u8> = (0..30).map(|i| ((i * 3) % 4) as u8).collect();
        for e in ctx.tree().all_edges() {
            let a = t_full.prescore(&ctx, e, &s2p, &codes);
            let b = t_tight.prescore(&ctx, e, &s2p, &codes);
            assert_eq!(a.to_bits(), b.to_bits(), "edge {e:?}");
        }
    }

    #[test]
    fn bytes_match_plan_estimate() {
        let (ctx, _) = setup(12, 40, 3);
        let store = ManagedStore::full(&ctx);
        let table = LookupTable::build(&ctx, &store, &EpaConfig::default()).unwrap();
        assert_eq!(table.bytes(), memplan::lookup_bytes(&ctx));
    }

    #[test]
    fn prescore_ranks_identical_query_highest() {
        let (ctx, s2p) = setup(12, 50, 4);
        let store = ManagedStore::full(&ctx);
        let table = LookupTable::build(&ctx, &store, &EpaConfig::default()).unwrap();
        let per_pattern = ctx.tip_codes(NodeId(0)).to_vec();
        let codes: Vec<u8> = s2p.iter().map(|&p| per_pattern[p as usize]).collect();
        let mut scored: Vec<(EdgeId, f64)> =
            ctx.tree().all_edges().map(|e| (e, table.prescore(&ctx, e, &s2p, &codes))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let pendant_edge = ctx.tree().neighbors(NodeId(0))[0].1;
        // The true branch must be among the top 2 prescored candidates.
        let rank = scored.iter().position(|&(e, _)| e == pendant_edge).unwrap();
        assert!(rank < 2, "true branch ranked {rank}");
    }
}
