//! Query sequence batches.
//!
//! Queries arrive aligned against the reference alignment (EPA-NG performs
//! or expects this alignment step; here it is a precondition). A query is
//! stored as per-*site* codes — unlike reference CLVs, queries cannot be
//! pattern-compressed because two reference-identical columns may carry
//! different query characters.

use crate::error::PlaceError;
use phylo_seq::Sequence;

/// One aligned, encoded query sequence.
#[derive(Debug, Clone)]
pub struct EncodedQuery {
    /// Query name (carried into the results).
    pub name: String,
    /// Alphabet codes per original alignment site.
    pub codes: Vec<u8>,
}

/// A set of aligned queries, streamed in chunks.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    queries: Vec<EncodedQuery>,
    n_sites: usize,
}

impl QueryBatch {
    /// Validates and encodes a set of query sequences against the
    /// reference alignment width.
    pub fn new(queries: &[Sequence], n_sites: usize) -> Result<Self, PlaceError> {
        if queries.is_empty() {
            return Err(PlaceError::NoQueries);
        }
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            if q.len() != n_sites {
                return Err(PlaceError::QueryLength {
                    name: q.name().to_string(),
                    expected: n_sites,
                    found: q.len(),
                });
            }
            out.push(EncodedQuery { name: q.name().to_string(), codes: q.codes().to_vec() });
        }
        Ok(QueryBatch { queries: out, n_sites })
    }

    /// Number of queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the batch is empty (never for a constructed batch).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Alignment width.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// All queries.
    #[inline]
    pub fn queries(&self) -> &[EncodedQuery] {
        &self.queries
    }

    /// Iterates the batch in chunks of at most `chunk_size` queries — the
    /// unit the paper's chunked processing streams through the tree.
    pub fn chunks(&self, chunk_size: usize) -> impl Iterator<Item = &[EncodedQuery]> {
        self.queries.chunks(chunk_size.max(1))
    }

    /// Bytes a chunk of this batch occupies (per-chunk accounting).
    pub fn chunk_bytes(&self, chunk_size: usize) -> usize {
        chunk_size.min(self.len()) * self.n_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_seq::alphabet::AlphabetKind;

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_text(format!("q{i}"), AlphabetKind::Dna, t).unwrap())
            .collect()
    }

    #[test]
    fn batch_builds_and_chunks() {
        let b = QueryBatch::new(&seqs(&["ACGT", "TTTT", "NNNN", "AC-T", "GGGG"]), 4).unwrap();
        assert_eq!(b.len(), 5);
        let chunks: Vec<_> = b.chunks(2).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[2].len(), 1);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = QueryBatch::new(&seqs(&["ACGT", "TTT"]), 4).unwrap_err();
        assert!(matches!(err, PlaceError::QueryLength { expected: 4, found: 3, .. }));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(QueryBatch::new(&[], 4), Err(PlaceError::NoQueries)));
    }

    #[test]
    fn gaps_become_unknown() {
        let b = QueryBatch::new(&seqs(&["A-GT"]), 4).unwrap();
        let alphabet = AlphabetKind::Dna.alphabet();
        assert_eq!(b.queries()[0].codes[1], alphabet.unknown_code());
    }
}
