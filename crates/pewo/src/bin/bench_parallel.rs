//! Thorough-phase scaling of the fine-grained slot protocol (no
//! store-wide lock): places `pro_ref` at CI scale under a **floor** AMC
//! budget with 1 and 8 worker threads, verifies the emitted jplace is
//! byte-identical across thread counts, and records the phase timings —
//! together with the host's core count, so the numbers can be read
//! honestly on any machine — in `BENCH_parallel.json`.
//!
//! Usage: `cargo run --release -p pewo-bench --bin bench_parallel -- [out.json]`

use epa_place::result::to_jplace;
use epa_place::{memplan, EpaConfig, Placer};
use pewo_bench::{build_batch, build_reference, repeat_fastest, Timed};
use phylo_datasets as datasets;
use phylo_datasets::Scale;

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let repeats: usize =
        std::env::var("BENCH_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let spec = datasets::pro_ref(Scale::Ci);
    let ds = datasets::generate(&spec);
    let batch = build_batch(&ds);
    let base = EpaConfig::default();
    let (probe, _) = build_reference(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    drop(probe);

    let mut rows = Vec::new();
    let mut jplace: Option<String> = None;
    let mut byte_identical = true;
    for threads in THREAD_COUNTS {
        let cfg =
            EpaConfig { max_memory: Some(floor), threads, async_prefetch: true, ..base.clone() };
        let run = repeat_fastest(repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid cfg");
            let (results, report) = placer.place(&batch).expect("floor-budget run");
            Timed { time: report.thorough_time, payload: (to_jplace(&ds.tree, &results), report) }
        });
        let (j, report) = run.payload;
        match &jplace {
            None => jplace = Some(j),
            Some(reference) => byte_identical &= *reference == j,
        }
        eprintln!(
            "threads={threads}: thorough {:.3}s, prescore {:.3}s, total {:.3}s",
            report.thorough_time.as_secs_f64(),
            report.prescore_time.as_secs_f64(),
            report.total_time.as_secs_f64()
        );
        rows.push((threads, report));
    }

    let t1 = rows[0].1.thorough_time.as_secs_f64();
    let t8 = rows[1].1.thorough_time.as_secs_f64();
    let speedup = t1 / t8.max(1e-12);
    let per_thread = rows
        .iter()
        .map(|(threads, r)| {
            format!(
                "    \"{threads}\": {{ \"thorough_s\": {:.6}, \"prescore_s\": {:.6}, \
                 \"total_s\": {:.6}, \"slots\": {}, \"hits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"acquires\": {}, \"flush_retries\": {} }}",
                r.thorough_time.as_secs_f64(),
                r.prescore_time.as_secs_f64(),
                r.total_time.as_secs_f64(),
                r.slots,
                r.slot_stats.hits,
                r.slot_stats.misses,
                r.slot_stats.evictions,
                r.slot_stats.acquires,
                r.degradation.flush_retries
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"dataset\": \"pro_ref\",\n  \"scale\": \"ci\",\n  \"mode\": \"amc-floor\",\n  \
         \"host_cores\": {host_cores},\n  \"repeats\": {repeats},\n  \"threads\": {{\n{per_thread}\n  }},\n  \
         \"thorough_speedup_8_vs_1\": {speedup:.3},\n  \
         \"jplace_byte_identical\": {byte_identical},\n  \
         \"note\": \"speedup is bounded by host_cores; on a single-core host the 8-thread run \
         measures protocol overhead only, not scaling\"\n}}\n"
    );
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    println!("{json}");
    eprintln!("wrote {out}");
    assert!(byte_identical, "jplace output must not depend on the worker count");
}
