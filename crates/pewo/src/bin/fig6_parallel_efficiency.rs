//! Reproduces **Fig. 6**: parallel efficiency versus thread count under
//! three memory settings per dataset —
//!
//! * **off** — no AMC (no memory limit);
//! * **full** — minimum memory (tightest feasible `--maxmem`);
//! * **maxmem** — AMC on, but with enough budget for the full slot
//!   complement (≈ the unconstrained footprint).
//!
//! `PE(r) = T(serial) / (T(r) · P(r))`, fastest of N repeats, where `P`
//! counts the extra asynchronous prefetch thread when AMC is enabled
//! (paper §V-C). Expected shape: PE degrades when AMC is on, because the
//! branch-block CLV recomputation is only parallelized as one async
//! thread.

use epa_place::{memplan, EpaConfig, Placer};
use pewo_bench::setup::thread_sweep;
use pewo_bench::{
    build_batch, build_reference, equivalent_chunk, parse_args, repeat_fastest, write_csv, Table,
    Timed,
};
use phylo_datasets as datasets;

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!(
            "Fig. 6 — parallel efficiency (scale: {}, fastest of {} runs)",
            args.scale, args.repeats
        ),
        &["dataset", "mode", "threads", "P(r)", "time (s)", "speedup", "PE"],
    );
    for spec in datasets::spec::all(args.scale) {
        let ds = datasets::generate(&spec);
        let batch = build_batch(&ds);
        let chunk = equivalent_chunk(paper_queries(spec.name), 5000, batch.len());
        let base = EpaConfig { chunk_size: chunk, ..Default::default() };
        let (probe, _) = build_reference(&ds);
        let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
        // "maxmem": budget generous enough for all slots + lookup.
        let plenty = memplan::lookup_floor_budget(&probe, &base, batch.len(), batch.n_sites())
            + probe.max_slots()
                * phylo_amc::SlotArena::bytes_per_slot(
                    probe.layout().clv_len(),
                    probe.layout().patterns,
                );
        drop(probe);

        for (mode, maxmem) in [("off", None), ("full", Some(floor)), ("maxmem", Some(plenty))] {
            // Serial baseline for this mode (async prefetch disabled to
            // mirror the paper's dedicated serial build).
            let serial_cfg =
                EpaConfig { max_memory: maxmem, threads: 1, async_prefetch: false, ..base.clone() };
            let serial = repeat_fastest(args.repeats, || {
                let (ctx, s2p) = build_reference(&ds);
                let placer = Placer::new(ctx, s2p, serial_cfg.clone()).expect("valid cfg");
                let (_, report) = placer.place(&batch).expect("serial run");
                Timed { time: report.total_time, payload: () }
            });
            let t_serial = serial.time.as_secs_f64();

            for threads in thread_sweep(args.max_threads) {
                let amc_on = maxmem.is_some();
                let cfg = EpaConfig {
                    max_memory: maxmem,
                    threads,
                    async_prefetch: amc_on,
                    ..base.clone()
                };
                let run = repeat_fastest(args.repeats, || {
                    let (ctx, s2p) = build_reference(&ds);
                    let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid cfg");
                    let (_, report) = placer.place(&batch).expect("parallel run");
                    Timed { time: report.total_time, payload: () }
                });
                // AMC runs use one extra async precompute thread.
                let p = threads + usize::from(amc_on);
                let speedup = t_serial / run.time.as_secs_f64();
                table.row(&[
                    spec.name.to_string(),
                    mode.to_string(),
                    threads.to_string(),
                    p.to_string(),
                    format!("{:.2}", run.time.as_secs_f64()),
                    format!("{speedup:.2}"),
                    format!("{:.3}", speedup / p as f64),
                ]);
            }
        }
    }
    print!("{}", table.render());
    let path = write_csv(&format!("fig6_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}

fn paper_queries(name: &str) -> usize {
    match name {
        "neotrop" => 95_417,
        "serratus" => 136,
        "pro_ref" => 3_333,
        _ => unreachable!("unknown dataset {name}"),
    }
}
