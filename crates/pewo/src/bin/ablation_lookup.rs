//! Ablation: the preplacement lookup table under AMC.
//!
//! "executing EPA-NG with AMC, using this lookup table improves execution
//! times by up to ≈23 times (neotrop data)" (paper §II). This harness
//! runs each dataset at the intermediate budget (lookup fits) and at the
//! same slot budget with the lookup forcibly disabled, isolating the
//! memoization's effect from the slot count's.

use epa_place::{memplan, EpaConfig, Placer, PreplacementMode};
use pewo_bench::{
    build_batch, build_reference, equivalent_chunk, parse_args, repeat_mean, write_csv, Table,
    Timed,
};
use phylo_datasets as datasets;

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!(
            "Ablation — lookup table on/off under AMC (scale: {}, repeats: {})",
            args.scale, args.repeats
        ),
        &["dataset", "lookup", "time (s)", "speedup from lookup", "recomputes"],
    );
    for spec in datasets::spec::all(args.scale) {
        let ds = datasets::generate(&spec);
        let batch = build_batch(&ds);
        let chunk = equivalent_chunk(paper_queries(spec.name), 5000, batch.len());
        let base = EpaConfig { chunk_size: chunk, threads: 1, ..Default::default() };
        let (probe, _) = build_reference(&ds);
        let budget = memplan::lookup_floor_budget(&probe, &base, batch.len(), batch.n_sites());
        drop(probe);

        let mut times = [0.0f64; 2];
        let mut recomputes = [0u64; 2];
        for (i, preplacement) in
            [PreplacementMode::Auto, PreplacementMode::Off].into_iter().enumerate()
        {
            let cfg = EpaConfig { max_memory: Some(budget), preplacement, ..base.clone() };
            let run = repeat_mean(args.repeats, || {
                let (ctx, s2p) = build_reference(&ds);
                let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid cfg");
                let (_, report) = placer.place(&batch).expect("ablation run");
                Timed { time: report.total_time, payload: report.slot_stats.misses }
            });
            times[i] = run.time.as_secs_f64();
            recomputes[i] = run.payload;
        }
        for (i, label) in ["on", "off"].into_iter().enumerate() {
            table.row(&[
                spec.name.to_string(),
                label.to_string(),
                format!("{:.2}", times[i]),
                if i == 1 { format!("{:.1}x", times[1] / times[0]) } else { "1.0x".into() },
                recomputes[i].to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    let path = write_csv(&format!("ablation_lookup_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}

fn paper_queries(name: &str) -> usize {
    match name {
        "neotrop" => 95_417,
        "serratus" => 136,
        "pro_ref" => 3_333,
        _ => unreachable!("unknown dataset {name}"),
    }
}
