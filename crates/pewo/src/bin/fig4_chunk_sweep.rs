//! Reproduces **Fig. 4**: the Fig. 3 sweep repeated with chunk size =
//! 500-equivalent.
//!
//! A smaller chunk shrinks the per-chunk (QS × branch) result buffers, so
//! the minimum possible memory footprint drops (the paper reports ~25 %
//! floors for neotrop and pro_ref); the price is more sweeps over the
//! tree, so the no-lookup slowdown grows (pro_ref: ~49× at chunk 5 000 →
//! ~90× at chunk 500 in the paper).

use pewo_bench::{parse_args, sweeps};

fn main() {
    let args = parse_args();
    sweeps::run_sweep(500, "fig4", &args);
}
