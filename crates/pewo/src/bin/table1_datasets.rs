//! Reproduces **Table I**: the characteristics of the three evaluation
//! datasets (leaves, sites, #QS, data type), at the selected scale,
//! together with the derived quantities that drive the memory model
//! (patterns after compression, CLV bytes, full-layout bytes, lookup-table
//! bytes, minimum slots).

use pewo_bench::{build_reference, parse_args, write_csv, Table};
use phylo_amc::budget::mib;
use phylo_datasets as datasets;

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!("Table I — dataset characteristics (scale: {})", args.scale),
        &[
            "dataset",
            "leaves",
            "sites",
            "#QS",
            "type",
            "patterns",
            "clv KiB",
            "full-layout MiB",
            "lookup MiB",
            "min slots",
        ],
    );
    for spec in datasets::spec::all(args.scale) {
        let ds = datasets::generate(&spec);
        let (ctx, _) = build_reference(&ds);
        let clv_bytes = ctx.layout().clv_bytes();
        let full_bytes = ctx.max_slots() * (clv_bytes + ctx.layout().scaler_bytes());
        let lookup = epa_place::memplan::lookup_bytes(&ctx);
        table.row(&[
            spec.name.to_string(),
            spec.leaves.to_string(),
            spec.sites.to_string(),
            spec.n_queries.to_string(),
            spec.alphabet.to_string(),
            ctx.layout().patterns.to_string(),
            format!("{:.1}", clv_bytes as f64 / 1024.0),
            format!("{:.1}", mib(full_bytes)),
            format!("{:.1}", mib(lookup)),
            ctx.min_slots().to_string(),
        ]);
    }
    print!("{}", table.render());
    let path = write_csv(&format!("table1_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}
