//! Ablation: replacement strategies under a tight slot budget.
//!
//! The paper ships the cost-based default and names "different (e.g.
//! adaptive or machine learning based) replacement strategies" as future
//! work (§VI). This harness sweeps the implemented policies (cost-based,
//! LRU, MRU, FIFO, random) at the minimum-memory operating point and
//! reports run time and CLV recomputation counts — the recomputation
//! column is the policy-quality signal.

use epa_place::{memplan, EpaConfig, Placer, PreplacementMode};
use pewo_bench::{
    build_batch, build_reference, equivalent_chunk, parse_args, repeat_mean, write_csv, Table,
    Timed,
};
use phylo_amc::StrategyKind;
use phylo_datasets as datasets;

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!(
            "Ablation — replacement strategies at minimum memory (scale: {}, repeats: {})",
            args.scale, args.repeats
        ),
        &["dataset", "strategy", "time (s)", "recomputes", "evictions", "hit rate"],
    );
    for spec in datasets::spec::all(args.scale) {
        let ds = datasets::generate(&spec);
        let batch = build_batch(&ds);
        let chunk = equivalent_chunk(paper_queries(spec.name), 500, batch.len());
        // Disable the lookup table so the slot manager is actually
        // exercised by the prescore phase.
        let base = EpaConfig {
            chunk_size: chunk,
            threads: 1,
            preplacement: PreplacementMode::Off,
            async_prefetch: false,
            ..Default::default()
        };
        let (probe, _) = build_reference(&ds);
        let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
        drop(probe);
        for strategy in StrategyKind::all() {
            let cfg = EpaConfig { max_memory: Some(floor), strategy, ..base.clone() };
            let run = repeat_mean(args.repeats, || {
                let (ctx, s2p) = build_reference(&ds);
                let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid cfg");
                let (_, report) = placer.place(&batch).expect("ablation run");
                Timed { time: report.total_time, payload: report.slot_stats }
            });
            let stats = run.payload;
            let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
            table.row(&[
                spec.name.to_string(),
                strategy.to_string(),
                format!("{:.2}", run.time.as_secs_f64()),
                stats.misses.to_string(),
                stats.evictions.to_string(),
                format!("{hit_rate:.3}"),
            ]);
        }
    }
    print!("{}", table.render());
    let path = write_csv(&format!("ablation_strategies_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}

fn paper_queries(name: &str) -> usize {
    match name {
        "neotrop" => 95_417,
        "serratus" => 136,
        "pro_ref" => 3_333,
        _ => unreachable!("unknown dataset {name}"),
    }
}
