//! Reproduces **Fig. 5**: EPA-NG versus pplacer on the two
//! highest-footprint datasets (serratus, pro_ref), each with memory saving
//! disabled and enabled.
//!
//! Expected shape (paper §V-B): EPA-NG beats pplacer on both axes in both
//! modes; pplacer's file backing cuts its memory a lot at a moderate time
//! cost, yet its saved footprint remains well above EPA-NG with AMC
//! *off*; EPA-NG's AMC slowdown is much larger on pro_ref than on
//! serratus.

use epa_place::{memplan, EpaConfig, Placer};
use pewo_bench::{
    build_batch, build_reference, equivalent_chunk, parse_args, repeat_mean, write_csv, Table,
    Timed,
};
use phylo_amc::budget::mib;
use phylo_datasets as datasets;
use pplacer_mmap::{Backing, PplacerConfig, PplacerLike};

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!("Fig. 5 — EPA-NG vs pplacer (scale: {}, repeats: {})", args.scale, args.repeats),
        &["dataset", "tool", "memsave", "time (s)", "memory (MiB)"],
    );
    for spec in [datasets::serratus(args.scale), datasets::pro_ref(args.scale)] {
        let ds = datasets::generate(&spec);
        let batch = build_batch(&ds);
        // The paper limits EPA-NG's chunk size to 500 in this comparison.
        let chunk = equivalent_chunk(paper_queries(spec.name), 500, batch.len());

        // EPA-NG, memory saving off.
        let cfg_off = EpaConfig { chunk_size: chunk, threads: 1, ..Default::default() };
        let run = repeat_mean(args.repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let placer = Placer::new(ctx, s2p, cfg_off.clone()).expect("valid cfg");
            let (_, report) = placer.place(&batch).expect("EPA off run");
            Timed { time: report.total_time, payload: report.peak_memory }
        });
        push(&mut table, spec.name, "epa-ng", "off", &run);

        // EPA-NG, fullest AMC.
        let (probe, _) = build_reference(&ds);
        let floor = memplan::floor_budget(&probe, &cfg_off, batch.len(), batch.n_sites());
        drop(probe);
        let cfg_on = EpaConfig { max_memory: Some(floor), ..cfg_off.clone() };
        let run = repeat_mean(args.repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let placer = Placer::new(ctx, s2p, cfg_on.clone()).expect("valid cfg");
            let (_, report) = placer.place(&batch).expect("EPA AMC run");
            Timed { time: report.total_time, payload: report.peak_memory }
        });
        push(&mut table, spec.name, "epa-ng", "on", &run);

        // pplacer, RAM.
        let run = repeat_mean(args.repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let mut pp =
                PplacerLike::build(ctx, s2p, PplacerConfig::default()).expect("pplacer build");
            let (_, report) = pp.place(&batch).expect("pplacer RAM run");
            Timed { time: report.build_time + report.place_time, payload: report.peak_memory }
        });
        push(&mut table, spec.name, "pplacer", "off", &run);

        // pplacer, file-backed.
        let cfg_file = PplacerConfig { backing: Backing::File, ..Default::default() };
        let run = repeat_mean(args.repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let mut pp = PplacerLike::build(ctx, s2p, cfg_file.clone()).expect("pplacer build");
            let (_, report) = pp.place(&batch).expect("pplacer file run");
            Timed { time: report.build_time + report.place_time, payload: report.peak_memory }
        });
        push(&mut table, spec.name, "pplacer", "on", &run);
    }
    print!("{}", table.render());
    let path = write_csv(&format!("fig5_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}

fn push(
    table: &mut Table,
    dataset: &str,
    tool: &str,
    memsave: &str,
    run: &pewo_bench::Timed<usize>,
) {
    table.row(&[
        dataset.to_string(),
        tool.to_string(),
        memsave.to_string(),
        format!("{:.2}", run.time.as_secs_f64()),
        format!("{:.1}", mib(run.payload)),
    ]);
}

fn paper_queries(name: &str) -> usize {
    match name {
        "serratus" => 136,
        "pro_ref" => 3_333,
        _ => unreachable!("fig5 uses serratus and pro_ref only"),
    }
}
