//! Reproduces **Table II**: absolute execution time and peak memory for
//! the three operating points per dataset —
//!
//! * **O** — reference run, memory saving disabled (no `--maxmem`);
//! * **I** — intermediate: the smallest budget at which the preplacement
//!   lookup table still fits (just above the cliff);
//! * **F** — fullest memory saving: minimum feasible budget (lookup table
//!   dropped, minimum slot count).
//!
//! One worker thread, chunk size = the paper's 5 000 translated to the
//! scaled query count (see `equivalent_chunk`).

use epa_place::{memplan, EpaConfig, Placer};
use pewo_bench::{
    build_batch, build_reference, equivalent_chunk, parse_args, repeat_mean, write_csv, Table,
    Timed,
};
use phylo_amc::budget::mib;
use phylo_datasets as datasets;

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!(
            "Table II — absolute time/memory, O/I/F (scale: {}, repeats: {})",
            args.scale, args.repeats
        ),
        &["dataset", "setting", "time (s)", "memory (MiB)", "lookup", "slots", "recomputes"],
    );
    for spec in datasets::spec::all(args.scale) {
        let ds = datasets::generate(&spec);
        let batch = build_batch(&ds);
        let chunk = equivalent_chunk(spec_paper_queries(spec.name), 5000, batch.len());
        let base_cfg = EpaConfig { chunk_size: chunk, threads: 1, ..Default::default() };

        // Probe budgets with a throwaway context (Placer consumes ctx).
        let (probe_ctx, _) = build_reference(&ds);
        let floor = memplan::floor_budget(&probe_ctx, &base_cfg, batch.len(), batch.n_sites());
        let lookup_floor =
            memplan::lookup_floor_budget(&probe_ctx, &base_cfg, batch.len(), batch.n_sites());
        drop(probe_ctx);

        for (tag, maxmem) in [("O", None), ("I", Some(lookup_floor)), ("F", Some(floor))] {
            let cfg = EpaConfig { max_memory: maxmem, ..base_cfg.clone() };
            let run = repeat_mean(args.repeats, || {
                let (ctx, s2p) = build_reference(&ds);
                let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid configuration");
                let (_, report) = placer.place(&batch).expect("placement succeeds");
                Timed { time: report.total_time, payload: report }
            });
            let rep = &run.payload;
            table.row(&[
                spec.name.to_string(),
                tag.to_string(),
                format!("{:.2}", run.time.as_secs_f64()),
                format!("{:.1}", mib(rep.peak_memory)),
                if rep.used_lookup { "yes" } else { "no" }.to_string(),
                rep.slots.to_string(),
                rep.slot_stats.misses.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    let path = write_csv(&format!("table2_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}

fn spec_paper_queries(name: &str) -> usize {
    match name {
        "neotrop" => 95_417,
        "serratus" => 136,
        "pro_ref" => 3_333,
        _ => unreachable!("unknown dataset {name}"),
    }
}
