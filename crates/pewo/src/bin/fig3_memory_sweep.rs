//! Reproduces **Fig. 3**: execution-time slowdown versus memory fraction,
//! chunk size = 5 000-equivalent.
//!
//! For each dataset, the reference run (memory saving off) anchors the
//! axes; then `--maxmem` is swept from the full footprint down to the
//! feasible floor. The expected shape: a flat region while the lookup
//! table fits, then a sharp slowdown cliff once it no longer does, and a
//! dataset-dependent memory floor.

use pewo_bench::{parse_args, sweeps};

fn main() {
    let args = parse_args();
    sweeps::run_sweep(5000, "fig3", &args);
}
