//! Reproduces **Fig. 7**: parallel efficiency on the wide-alignment
//! dataset (serratus) with the *experimental across-site* parallelization
//! of the branch-block CLV precomputation, compared against the default
//! asynchronous scheme.
//!
//! In the across-site mode the block's CLVs are computed synchronously
//! using all worker threads split over alignment sites, and placement
//! then also uses all workers — the paper's modified EPA-NG (§V-C).
//! Expected shape: a clear PE improvement over the async scheme in `full`
//! mode on this wide alignment (the paper measured ~4 % → ~16 % at 32
//! threads), with the caveat that narrow alignments do not benefit.

use epa_place::{memplan, EpaConfig, Placer};
use pewo_bench::setup::thread_sweep;
use pewo_bench::{
    build_batch, build_reference, equivalent_chunk, parse_args, repeat_fastest, write_csv, Table,
    Timed,
};
use phylo_datasets as datasets;

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        format!(
            "Fig. 7 — across-site PE on serratus (scale: {}, fastest of {} runs)",
            args.scale, args.repeats
        ),
        &["mode", "scheme", "threads", "P(r)", "time (s)", "PE"],
    );
    let spec = datasets::serratus(args.scale);
    let ds = datasets::generate(&spec);
    let batch = build_batch(&ds);
    let chunk = equivalent_chunk(136, 5000, batch.len());
    let base = EpaConfig { chunk_size: chunk, ..Default::default() };
    let (probe, _) = build_reference(&ds);
    let floor = memplan::floor_budget(&probe, &base, batch.len(), batch.n_sites());
    let plenty = memplan::lookup_floor_budget(&probe, &base, batch.len(), batch.n_sites())
        + probe.max_slots()
            * phylo_amc::SlotArena::bytes_per_slot(
                probe.layout().clv_len(),
                probe.layout().patterns,
            );
    drop(probe);

    for (mode, maxmem) in [("off", None), ("full", Some(floor)), ("maxmem", Some(plenty))] {
        let serial_cfg =
            EpaConfig { max_memory: maxmem, threads: 1, async_prefetch: false, ..base.clone() };
        let serial = repeat_fastest(args.repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let placer = Placer::new(ctx, s2p, serial_cfg.clone()).expect("valid cfg");
            let (_, report) = placer.place(&batch).expect("serial run");
            Timed { time: report.total_time, payload: () }
        });
        let t_serial = serial.time.as_secs_f64();

        for threads in thread_sweep(args.max_threads) {
            for scheme in ["async", "across-site"] {
                let amc_on = maxmem.is_some();
                let cfg = match scheme {
                    "async" => EpaConfig {
                        max_memory: maxmem,
                        threads,
                        async_prefetch: amc_on,
                        sitepar_threads: 1,
                        ..base.clone()
                    },
                    _ => EpaConfig {
                        max_memory: maxmem,
                        threads,
                        async_prefetch: false,
                        sitepar_threads: threads,
                        ..base.clone()
                    },
                };
                let run = repeat_fastest(args.repeats, || {
                    let (ctx, s2p) = build_reference(&ds);
                    let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid cfg");
                    let (_, report) = placer.place(&batch).expect("parallel run");
                    Timed { time: report.total_time, payload: () }
                });
                // The async scheme uses one extra prefetch thread; the
                // across-site scheme reuses the workers.
                let p = threads + usize::from(amc_on && scheme == "async");
                let pe = t_serial / run.time.as_secs_f64() / p as f64;
                table.row(&[
                    mode.to_string(),
                    scheme.to_string(),
                    threads.to_string(),
                    p.to_string(),
                    format!("{:.2}", run.time.as_secs_f64()),
                    format!("{pe:.3}"),
                ]);
            }
        }
    }
    print!("{}", table.render());
    let path = write_csv(&format!("fig7_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}
