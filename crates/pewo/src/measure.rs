//! Run-repetition protocol (PEWO-style).

use std::time::Duration;

/// A measured run: wall-clock time plus whatever payload the experiment
/// extracted (peak memory, slot stats, ...).
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// Wall-clock duration of the run.
    pub time: Duration,
    /// Experiment-specific payload.
    pub payload: T,
}

/// Runs `f` `repeats` times and returns the run with the **mean** time
/// (payload taken from the first run — payloads are deterministic).
///
/// This is the paper's protocol for the memory-sweep figures: "Every
/// --maxmem/dataset configuration was executed five times, and the results
/// we show are calculated as the mean of all five runs".
pub fn repeat_mean<T>(repeats: usize, mut f: impl FnMut() -> Timed<T>) -> Timed<T> {
    assert!(repeats >= 1);
    let first = f();
    let mut total = first.time;
    for _ in 1..repeats {
        total += f().time;
    }
    Timed { time: total / repeats as u32, payload: first.payload }
}

/// Runs `f` `repeats` times and returns the **fastest** run — the paper's
/// protocol for the parallel-efficiency figures ("we again choose the
/// fastest out of five runs").
pub fn repeat_fastest<T>(repeats: usize, mut f: impl FnMut() -> Timed<T>) -> Timed<T> {
    assert!(repeats >= 1);
    let mut best = f();
    for _ in 1..repeats {
        let run = f();
        if run.time < best.time {
            best = run;
        }
    }
    best
}

/// Mean of a set of durations.
pub fn mean_duration(times: &[Duration]) -> Duration {
    if times.is_empty() {
        return Duration::ZERO;
    }
    times.iter().sum::<Duration>() / times.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_protocol_averages() {
        let mut times = [30u64, 10, 20].into_iter();
        let r = repeat_mean(3, || Timed {
            time: Duration::from_millis(times.next().unwrap()),
            payload: 7u32,
        });
        assert_eq!(r.time, Duration::from_millis(20));
        assert_eq!(r.payload, 7);
    }

    #[test]
    fn fastest_protocol_takes_min() {
        let mut times = [30u64, 10, 20].into_iter();
        let r = repeat_fastest(3, || Timed {
            time: Duration::from_millis(times.next().unwrap()),
            payload: (),
        });
        assert_eq!(r.time, Duration::from_millis(10));
    }

    #[test]
    fn mean_duration_works() {
        let times = [Duration::from_secs(1), Duration::from_secs(3)];
        assert_eq!(mean_duration(&times), Duration::from_secs(2));
        assert_eq!(mean_duration(&[]), Duration::ZERO);
    }
}
