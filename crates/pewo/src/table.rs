//! Text tables and CSV output for the harness binaries.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out);
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Writes a table's CSV under `target/experiments/<name>.csv` and returns
/// the path.
pub fn write_csv(name: &str, table: &Table) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write experiment CSV");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["hello, world".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
