//! The shared `--maxmem` sweep behind Fig. 3 and Fig. 4.

use crate::{build_batch, build_reference, equivalent_chunk, repeat_mean, write_csv, Table, Timed};
use epa_place::{memplan, EpaConfig, Placer};
use phylo_amc::budget::mib;
use phylo_datasets as datasets;

/// Runs the memory sweep of Fig. 3 / Fig. 4: per dataset, one reference
/// run plus a descending-budget series, reporting slowdown and memory
/// fraction relative to the reference. `paper_chunk` is translated to the
/// scaled dataset via [`crate::equivalent_chunk`].
pub fn run_sweep(paper_chunk: usize, figure: &str, args: &crate::HarnessArgs) {
    let mut table = Table::new(
        format!(
            "{figure} — slowdown vs memory fraction, chunk {paper_chunk}-equivalent (scale: {}, repeats: {})",
            args.scale, args.repeats
        ),
        &[
            "dataset", "maxmem MiB", "mem fraction", "slowdown", "time (s)", "lookup", "slots",
            "recomputes",
        ],
    );
    for spec in datasets::spec::all(args.scale) {
        let ds = datasets::generate(&spec);
        let batch = build_batch(&ds);
        let chunk = equivalent_chunk(paper_queries(spec.name), paper_chunk, batch.len());
        let base_cfg = EpaConfig { chunk_size: chunk, threads: 1, ..Default::default() };

        // Reference run (off).
        let reference = repeat_mean(args.repeats, || {
            let (ctx, s2p) = build_reference(&ds);
            let placer = Placer::new(ctx, s2p, base_cfg.clone()).expect("valid cfg");
            let (_, report) = placer.place(&batch).expect("reference run");
            Timed { time: report.total_time, payload: report }
        });
        let ref_time = reference.time.as_secs_f64();
        let ref_mem = reference.payload.peak_memory;
        table.row(&[
            spec.name.to_string(),
            "(off)".into(),
            "1.000".into(),
            "1.00".into(),
            format!("{ref_time:.2}"),
            "yes".into(),
            reference.payload.slots.to_string(),
            reference.payload.slot_stats.misses.to_string(),
        ]);

        // Sweep budgets from the full footprint down to the floor.
        let (probe_ctx, _) = build_reference(&ds);
        let floor = memplan::floor_budget(&probe_ctx, &base_cfg, batch.len(), batch.n_sites());
        drop(probe_ctx);
        let budgets = sweep_budgets(ref_mem, floor);
        for budget in budgets {
            let cfg = EpaConfig { max_memory: Some(budget), ..base_cfg.clone() };
            let run = repeat_mean(args.repeats, || {
                let (ctx, s2p) = build_reference(&ds);
                let placer = Placer::new(ctx, s2p, cfg.clone()).expect("valid cfg");
                let (_, report) = placer.place(&batch).expect("swept run");
                Timed { time: report.total_time, payload: report }
            });
            let rep = &run.payload;
            table.row(&[
                spec.name.to_string(),
                format!("{:.1}", mib(budget)),
                format!("{:.3}", rep.peak_memory as f64 / ref_mem as f64),
                format!("{:.2}", run.time.as_secs_f64() / ref_time),
                format!("{:.2}", run.time.as_secs_f64()),
                if rep.used_lookup { "yes" } else { "no" }.to_string(),
                rep.slots.to_string(),
                rep.slot_stats.misses.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    let path = write_csv(&format!("{figure}_{}", args.scale), &table);
    eprintln!("csv: {}", path.display());
}

/// Budget points between the reference footprint and the floor: denser
/// near the floor where the cliff lives.
fn sweep_budgets(ref_mem: usize, floor: usize) -> Vec<usize> {
    let fractions = [0.85, 0.6, 0.4, 0.25, 0.12, 0.05];
    let mut out: Vec<usize> =
        fractions.iter().map(|f| (ref_mem as f64 * f) as usize).filter(|&b| b > floor).collect();
    out.push(floor + floor / 50); // just above the floor
    out.push(floor); // the floor itself
    out.dedup();
    out
}

fn paper_queries(name: &str) -> usize {
    match name {
        "neotrop" => 95_417,
        "serratus" => 136,
        "pro_ref" => 3_333,
        _ => unreachable!("unknown dataset {name}"),
    }
}
