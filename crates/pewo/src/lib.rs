//! PEWO-style experiment harness.
//!
//! The paper measures EPA-NG through the PEWO workflow: each
//! configuration is run several times, results are averaged (figures) or
//! the fastest run is taken (parallel-efficiency plots), memory is the
//! peak footprint, and the sweep axes are `--maxmem`, chunk size, thread
//! count, and dataset. This crate reproduces that protocol as a library
//! plus one binary per table/figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_datasets` | Table I (dataset characteristics) |
//! | `table2_absolute` | Table II (absolute time/memory at O/I/F) |
//! | `fig3_memory_sweep` | Fig. 3 (slowdown vs memory fraction, chunk 5000-equivalent) |
//! | `fig4_chunk_sweep` | Fig. 4 (the same with chunk 500-equivalent) |
//! | `fig5_pplacer` | Fig. 5 (EPA-NG vs pplacer, memory saving on/off) |
//! | `fig6_parallel_efficiency` | Fig. 6 (PE vs threads; off/full/maxmem) |
//! | `fig7_sitepar_efficiency` | Fig. 7 (PE with across-site precompute) |
//! | `ablation_strategies` | replacement-strategy ablation (paper §VI outlook) |
//! | `ablation_lookup` | lookup-table on/off ablation (the ≈23× effect) |
//!
//! Every binary accepts `--scale ci|bench|paper` (default `bench`) and
//! `--repeats N`, prints an aligned text table, and writes CSV to
//! `target/experiments/`.

pub mod measure;
pub mod setup;
pub mod sweeps;
pub mod table;

pub use measure::{mean_duration, repeat_fastest, repeat_mean, Timed};
pub use setup::{build_batch, build_reference, equivalent_chunk, parse_args, HarnessArgs};
pub use table::{write_csv, Table};
