//! Experiment setup shared by every harness binary.

use epa_place::QueryBatch;
use phylo_datasets::{Dataset, Scale};
use phylo_engine::ReferenceContext;
use phylo_seq::compress;

/// Builds the reference context and site→pattern map from a dataset.
pub fn build_reference(ds: &Dataset) -> (ReferenceContext, Vec<u32>) {
    let patterns = compress(&ds.reference).expect("dataset alignments are non-empty");
    let s2p = patterns.site_to_pattern().to_vec();
    let ctx = ReferenceContext::new(
        ds.tree.clone(),
        ds.model.clone(),
        ds.spec.alphabet.alphabet(),
        &patterns,
    )
    .expect("dataset taxa always have alignment rows");
    (ctx, s2p)
}

/// Builds the query batch of a dataset.
pub fn build_batch(ds: &Dataset) -> QueryBatch {
    QueryBatch::new(&ds.queries, ds.reference.n_sites())
        .expect("dataset queries are aligned to the reference")
}

/// Translates a paper-scale chunk size to the scaled dataset: the number
/// of *chunks* (sweeps over the tree) is what drives AMC recomputation
/// cost, so the equivalent chunk preserves the paper's chunk count.
///
/// E.g. neotrop: 95 417 QS at chunk 5 000 → 20 chunks; a 1 490-query
/// bench-scale instance gets chunk ⌈1490/20⌉ = 75.
pub fn equivalent_chunk(paper_queries: usize, paper_chunk: usize, actual_queries: usize) -> usize {
    let paper_chunks = paper_queries.div_ceil(paper_chunk).max(1);
    actual_queries.div_ceil(paper_chunks).max(1)
}

/// Common CLI arguments of the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset scale.
    pub scale: Scale,
    /// Repeats per configuration (paper: 5).
    pub repeats: usize,
    /// Cap on the thread sweep (PE figures).
    pub max_threads: usize,
}

/// Parses `--scale`, `--repeats`, `--max-threads` from `std::env::args`.
/// Unknown flags abort with a usage message.
pub fn parse_args() -> HarnessArgs {
    let mut args = HarnessArgs {
        scale: Scale::Bench,
        repeats: 3,
        max_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                args.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use ci|bench|paper");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                args.repeats =
                    it.next().and_then(|v| v.parse().ok()).filter(|&r| r >= 1).unwrap_or_else(
                        || {
                            eprintln!("--repeats needs a positive integer");
                            std::process::exit(2);
                        },
                    );
            }
            "--max-threads" => {
                args.max_threads =
                    it.next().and_then(|v| v.parse().ok()).filter(|&r| r >= 1).unwrap_or_else(
                        || {
                            eprintln!("--max-threads needs a positive integer");
                            std::process::exit(2);
                        },
                    );
            }
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: <bin> [--scale ci|bench|paper] [--repeats N] [--max-threads N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The thread counts a PE sweep visits (powers of two up to the cap).
pub fn thread_sweep(max_threads: usize) -> Vec<usize> {
    let mut out = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        out.push(t);
        t *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_chunk_preserves_chunk_count() {
        // neotrop paper: 20 chunks.
        assert_eq!(equivalent_chunk(95_417, 5_000, 1490), 75);
        // serratus paper: 1 chunk -> everything in one chunk.
        assert_eq!(equivalent_chunk(136, 5_000, 4), 4);
        // pro_ref at chunk 500: 7 chunks.
        let c = equivalent_chunk(3_333, 500, 52);
        assert_eq!(c, 8); // ceil(52/7)
    }

    #[test]
    fn thread_sweep_is_powers_of_two() {
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4]);
        assert_eq!(thread_sweep(1), vec![1]);
    }

    #[test]
    fn ci_dataset_reference_builds() {
        let ds = phylo_datasets::generate(&phylo_datasets::neotrop(Scale::Ci));
        let (ctx, s2p) = build_reference(&ds);
        assert_eq!(ctx.tree().n_leaves(), ds.spec.leaves);
        assert_eq!(s2p.len(), ds.spec.sites);
        let batch = build_batch(&ds);
        assert_eq!(batch.len(), ds.spec.n_queries);
    }
}
