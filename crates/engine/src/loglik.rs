//! Whole-tree log-likelihood evaluation.
//!
//! The correctness anchor of the workspace: the likelihood of a fixed tree
//! is a property of the tree alone, so it must come out identical
//! (bit-for-bit, modulo the deterministic scaling) no matter which branch
//! hosts the virtual root and which CLV storage policy is in force. The
//! tests here pin both invariances plus analytic hand-computed values.

use crate::ctx::ReferenceContext;
use crate::error::EngineError;
use crate::store::{EdgeSide, ManagedStore};
use phylo_kernel::likelihood::edge_log_likelihood;
use phylo_tree::{DirEdgeId, EdgeId};

/// Computes the tree log-likelihood with the virtual root on `edge`.
///
/// Prepares both orientations of the edge in the store (recomputing under
/// slot constraints as needed), evaluates, and releases the pins.
pub fn tree_log_likelihood(
    ctx: &ReferenceContext,
    store: &mut ManagedStore,
    edge: EdgeId,
) -> Result<f64, EngineError> {
    let d0 = DirEdgeId::new(edge, 0);
    let d1 = DirEdgeId::new(edge, 1);
    let block = store.prepare(ctx, &[d0, d1])?;
    let ll = evaluate_prepared_edge(ctx, store, edge);
    store.release(block);
    Ok(ll)
}

/// Evaluates the likelihood at `edge` assuming both orientations are
/// already prepared (inside a `prepare`/`release` window).
pub fn evaluate_prepared_edge(ctx: &ReferenceContext, store: &ManagedStore, edge: EdgeId) -> f64 {
    let mut d_u = DirEdgeId::new(edge, 0);
    let mut d_v = DirEdgeId::new(edge, 1);
    // The unpropagated `u` term must be an inner CLV; at least one side of
    // any branch is inner (leaves never share an edge when n ≥ 3).
    if matches!(store.side(ctx, d_u), EdgeSide::Tip(_)) {
        std::mem::swap(&mut d_u, &mut d_v);
    }
    let (u_clv, u_scale) =
        store.clv_of(ctx, d_u).expect("at least one side of a branch is an inner node");
    let v_side = store.kernel_side(ctx, d_v);
    let layout = ctx.layout();
    edge_log_likelihood(
        layout,
        u_clv,
        Some(u_scale),
        v_side,
        ctx.model().freqs(),
        ctx.model().gamma().weights(),
        ctx.pattern_weights(),
        0..layout.patterns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_amc::StrategyKind;
    use phylo_models::gamma::GammaMode;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::tree::{quartet, tripod};
    use phylo_tree::{generate, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx_from(
        tree: phylo_tree::Tree,
        rows: Vec<(&str, &str)>,
        gamma: DiscreteGamma,
    ) -> ReferenceContext {
        let msa = Msa::new(
            rows.into_iter()
                .map(|(n, t)| Sequence::from_text(n, AlphabetKind::Dna, t).unwrap())
                .collect(),
        )
        .unwrap();
        let patterns = compress(&msa).unwrap();
        let model = SubstModel::new(&dna::jc69(), gamma).unwrap();
        ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap()
    }

    /// Brute-force tripod likelihood: L = Σ_i π_i Π_k P(t_k)[i][obs_k].
    fn tripod_reference(lengths: [f64; 3], obs: [usize; 3]) -> f64 {
        let mut total = 0.0;
        for i in 0..4 {
            let mut term = 0.25;
            for (t, &o) in lengths.iter().zip(&obs) {
                let (same, diff) = dna::jc69_analytic(*t);
                term *= if i == o { same } else { diff };
            }
            total += term;
        }
        total.ln()
    }

    #[test]
    fn tripod_matches_brute_force() {
        let lengths = [0.1, 0.25, 0.4];
        let tree = tripod(["A", "B", "C"], lengths).unwrap();
        // Single site: A observes A, B observes C, C observes G.
        let ctx = ctx_from(tree, vec![("A", "A"), ("B", "C"), ("C", "G")], DiscreteGamma::none());
        let mut store = ManagedStore::full(&ctx);
        // The tripod's leaf edges: lengths[k] belongs to the edge of leaf k.
        let expect = tripod_reference(lengths, [0, 1, 2]);
        for e in ctx.tree().all_edges() {
            let ll = tree_log_likelihood(&ctx, &mut store, e).unwrap();
            assert!((ll - expect).abs() < 1e-12, "edge {e:?}: {ll} vs {expect}");
        }
    }

    /// Brute-force quartet likelihood summing over both internal nodes.
    fn quartet_reference(lengths: [f64; 5], obs: [usize; 4]) -> f64 {
        let p = |t: f64, i: usize, j: usize| {
            let (same, diff) = dna::jc69_analytic(t);
            if i == j {
                same
            } else {
                diff
            }
        };
        let mut total = 0.0;
        for u in 0..4 {
            for v in 0..4 {
                total += 0.25
                    * p(lengths[0], u, obs[0])
                    * p(lengths[1], u, obs[1])
                    * p(lengths[2], u, v)
                    * p(lengths[3], v, obs[2])
                    * p(lengths[4], v, obs[3]);
            }
        }
        total.ln()
    }

    #[test]
    fn quartet_matches_brute_force() {
        let lengths = [0.05, 0.2, 0.35, 0.15, 0.6];
        let tree = quartet(["a", "b", "c", "d"], lengths).unwrap();
        let ctx = ctx_from(
            tree,
            vec![("a", "AT"), ("b", "CT"), ("c", "GA"), ("d", "GC")],
            DiscreteGamma::none(),
        );
        let mut store = ManagedStore::full(&ctx);
        let expect =
            quartet_reference(lengths, [0, 1, 2, 2]) + quartet_reference(lengths, [3, 3, 0, 1]);
        for e in ctx.tree().all_edges() {
            let ll = tree_log_likelihood(&ctx, &mut store, e).unwrap();
            assert!((ll - expect).abs() < 1e-11, "edge {e:?}: {ll} vs {expect}");
        }
    }

    #[test]
    fn likelihood_invariant_across_edges_and_stores() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 24;
        let tree = generate::yule(n, 0.12, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String =
                    (0..40).map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char).collect();
                Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
            })
            .collect();
        let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
        let gamma = DiscreteGamma::new(0.7, 4, GammaMode::Mean).unwrap();
        let model = SubstModel::new(&dna::jc69(), gamma).unwrap();
        let ctx =
            ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();

        let mut full = ManagedStore::full(&ctx);
        let reference = tree_log_likelihood(&ctx, &mut full, EdgeId(0)).unwrap();
        assert!(reference.is_finite());

        for strategy in [StrategyKind::CostBased, StrategyKind::Lru] {
            let mut tight = ManagedStore::with_slots(&ctx, ctx.min_slots(), strategy).unwrap();
            for e in ctx.tree().all_edges() {
                let ll_full = tree_log_likelihood(&ctx, &mut full, e).unwrap();
                let ll_tight = tree_log_likelihood(&ctx, &mut tight, e).unwrap();
                assert_eq!(ll_full.to_bits(), ll_tight.to_bits(), "policy diff at edge {e:?}");
                assert!(
                    (ll_full - reference).abs() < 1e-9,
                    "root-position dependence at {e:?}: {ll_full} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn deep_tree_needs_and_survives_scaling() {
        // A 300-leaf caterpillar: raw partial likelihoods underflow without
        // scaling; with scaling the result must be finite and
        // virtual-root invariant.
        let mut rng = StdRng::seed_from_u64(12);
        let n = 300;
        let tree = generate::caterpillar(n, 0.3, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String =
                    (0..8).map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char).collect();
                Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
            })
            .collect();
        let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let ctx =
            ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();
        let mut store = ManagedStore::full(&ctx);
        let ll0 = tree_log_likelihood(&ctx, &mut store, EdgeId(0)).unwrap();
        assert!(ll0.is_finite() && ll0 < 0.0);
        // Scaling must actually have fired somewhere on a tree this deep.
        let central = ctx
            .tree()
            .all_edges()
            .find(|&e| {
                let rec = ctx.tree().edge(e);
                !ctx.tree().is_leaf(rec.a) && !ctx.tree().is_leaf(rec.b)
            })
            .unwrap();
        let block =
            store.prepare(&ctx, &[DirEdgeId::new(central, 0), DirEdgeId::new(central, 1)]).unwrap();
        let any_scaled = ctx.tree().all_dir_edges().any(|d| {
            store.clv_of(&ctx, d).map(|(_, scale)| scale.iter().any(|&s| s > 0)).unwrap_or(false)
        });
        store.release(block);
        assert!(any_scaled, "expected scaler activity on a 300-leaf caterpillar");
        let ll_mid = tree_log_likelihood(&ctx, &mut store, central).unwrap();
        assert!((ll0 - ll_mid).abs() < 1e-8, "{ll0} vs {ll_mid}");
    }
}
