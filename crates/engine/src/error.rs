//! Error type for engine assembly.

use std::fmt;

/// Errors raised while building or driving the likelihood engine.
#[derive(Debug)]
pub enum EngineError {
    /// A tree taxon has no matching alignment row.
    MissingSequence(String),
    /// The alignment's alphabet does not match the model's state count.
    AlphabetMismatch {
        /// States in the substitution model.
        model_states: usize,
        /// Concrete states in the alphabet.
        alphabet_states: usize,
    },
    /// Propagated from the AMC layer (slot exhaustion, budget too small).
    Amc(phylo_amc::AmcError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingSequence(name) => {
                write!(f, "tree taxon {name:?} has no row in the reference alignment")
            }
            EngineError::AlphabetMismatch { model_states, alphabet_states } => write!(
                f,
                "model has {model_states} states but the alignment alphabet has {alphabet_states}"
            ),
            EngineError::Amc(e) => write!(f, "CLV management error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Amc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<phylo_amc::AmcError> for EngineError {
    fn from(e: phylo_amc::AmcError) -> Self {
        EngineError::Amc(e)
    }
}
