//! The likelihood engine: trees × models × kernels × slot management.
//!
//! This crate assembles the substrates into a usable whole:
//!
//! * [`ctx::ReferenceContext`] — everything static about a reference
//!   analysis: the tree, the compiled substitution model, compressed site
//!   patterns, per-leaf tip encodings, per-edge transition matrices and tip
//!   lookup tables, subtree-cost and register-need tables;
//! * [`store`] — the two CLV storage policies behind one interface:
//!   [`store::FullStore`] materializes all `3(n−2)` directional CLVs
//!   (EPA-NG's default layout), while [`store::ManagedStore`] runs them
//!   through the AMC slot arena with any slot budget down to
//!   `⌈log₂ n⌉ + 2`;
//! * [`exec`] — executes the slot-constrained FPA schedules emitted by
//!   `phylo-amc` using the kernels;
//! * [`loglik`] — whole-tree log-likelihood evaluated at any branch
//!   (the correctness anchor: the value must be identical from every
//!   branch and for every storage policy).

pub mod ctx;
pub mod error;
pub mod exec;
pub mod loglik;
pub mod store;

pub use ctx::ReferenceContext;
pub use error::EngineError;
pub use store::{ClvStore, EdgeSide, FullStore, ManagedStore, PendingBlock, PreparedBlock};
