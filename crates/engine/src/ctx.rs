//! The static reference context shared by every CLV computation.

use crate::error::EngineError;
use phylo_kernel::{Layout, TipTable};
use phylo_models::SubstModel;
use phylo_seq::alphabet::Alphabet;
use phylo_seq::PatternMsa;
use phylo_tree::stats::{min_slots_bound, register_need, subtree_leaf_counts};
use phylo_tree::{EdgeId, NodeId, Tree};

/// Everything immutable a likelihood computation over the reference tree
/// needs: the tree, the compiled model, per-leaf encoded patterns, and the
/// per-edge transition machinery.
pub struct ReferenceContext {
    tree: Tree,
    model: SubstModel,
    alphabet: &'static Alphabet,
    layout: Layout,
    pattern_weights: Vec<u32>,
    /// Per leaf: encoded characters over patterns.
    tip_codes: Vec<Vec<u8>>,
    /// Per edge: per-rate transition matrices, `pmatrix_len` each.
    pmatrices: Vec<f64>,
    /// Per edge: tip lookup table if one endpoint is a leaf.
    tip_tables: Vec<Option<TipTable>>,
    /// Per directed edge: subtree leaf count (recomputation-cost proxy).
    costs: Vec<u32>,
    /// Per directed edge: Sethi–Ullman register need.
    register_need: Vec<u32>,
}

impl std::fmt::Debug for ReferenceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceContext")
            .field("n_leaves", &self.tree.n_leaves())
            .field("patterns", &self.layout.patterns)
            .field("rates", &self.layout.rates)
            .field("states", &self.layout.states)
            .finish()
    }
}

impl ReferenceContext {
    /// Assembles a context from a tree, a compiled model, and the
    /// pattern-compressed reference alignment. Every tree taxon must have
    /// an alignment row; the model's state count must match the alphabet.
    pub fn new(
        tree: Tree,
        model: SubstModel,
        alphabet: &'static Alphabet,
        patterns: &PatternMsa,
    ) -> Result<Self, EngineError> {
        if model.n_states() != alphabet.states() {
            return Err(EngineError::AlphabetMismatch {
                model_states: model.n_states(),
                alphabet_states: alphabet.states(),
            });
        }
        let layout = Layout::new(patterns.n_patterns(), model.n_rates(), model.n_states());
        // Map tree leaves to alignment rows by name.
        let mut tip_codes = Vec::with_capacity(tree.n_leaves());
        for leaf in 0..tree.n_leaves() {
            let name = tree.taxon(NodeId(leaf as u32));
            let row = patterns
                .row_by_name(name)
                .ok_or_else(|| EngineError::MissingSequence(name.to_string()))?;
            tip_codes.push(patterns.row(row).to_vec());
        }
        // Per-edge transition matrices and (for pendant edges) tip tables.
        let pm_len = layout.pmatrix_len();
        let mut pmatrices = vec![0.0; tree.n_edges() * pm_len];
        let mut tip_tables = Vec::with_capacity(tree.n_edges());
        let masks: Vec<u32> =
            (0..alphabet.n_codes()).map(|c| alphabet.state_mask(c as u8)).collect();
        for e in 0..tree.n_edges() {
            let edge = EdgeId(e as u32);
            let len = tree.edge_length(edge);
            let block = &mut pmatrices[e * pm_len..(e + 1) * pm_len];
            model.transition_matrices(len, block);
            let rec = tree.edge(edge);
            let has_leaf = tree.is_leaf(rec.a) || tree.is_leaf(rec.b);
            tip_tables.push(has_leaf.then(|| TipTable::build(&layout, block, &masks)));
        }
        let costs = subtree_leaf_counts(&tree);
        let need = register_need(&tree);
        Ok(ReferenceContext {
            tree,
            model,
            alphabet,
            layout,
            pattern_weights: patterns.weights().to_vec(),
            tip_codes,
            pmatrices,
            tip_tables,
            costs,
            register_need: need,
        })
    }

    /// Overrides the kernel tier every computation over this context
    /// dispatches to (default: auto-resolved from `PHYLO_KERNEL_TIER` and
    /// runtime CPU detection at layout construction). Call before any
    /// store is built from this context so the whole run uses one tier.
    pub fn set_kernel_tier(&mut self, choice: phylo_kernel::TierChoice) {
        self.layout = self.layout.with_tier(choice);
    }

    /// The reference tree.
    #[inline]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The compiled substitution model.
    #[inline]
    pub fn model(&self) -> &SubstModel {
        &self.model
    }

    /// The character alphabet.
    #[inline]
    pub fn alphabet(&self) -> &'static Alphabet {
        self.alphabet
    }

    /// The CLV layout (patterns × rates × states).
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Site-pattern multiplicities.
    #[inline]
    pub fn pattern_weights(&self) -> &[u32] {
        &self.pattern_weights
    }

    /// Encoded characters of a leaf over patterns.
    #[inline]
    pub fn tip_codes(&self, leaf: NodeId) -> &[u8] {
        &self.tip_codes[leaf.idx()]
    }

    /// The per-rate transition matrices of an edge.
    #[inline]
    pub fn pmatrix(&self, e: EdgeId) -> &[f64] {
        let len = self.layout.pmatrix_len();
        &self.pmatrices[e.idx() * len..(e.idx() + 1) * len]
    }

    /// The tip lookup table of a pendant edge (`None` for inner edges).
    #[inline]
    pub fn tip_table(&self, e: EdgeId) -> Option<&TipTable> {
        self.tip_tables[e.idx()].as_ref()
    }

    /// Per-directed-edge recomputation-cost proxies (subtree leaf counts),
    /// as `f64` for the cost-based strategy.
    pub fn cost_table(&self) -> Vec<f64> {
        self.costs.iter().map(|&c| c as f64).collect()
    }

    /// Per-directed-edge register need (for the constrained FPA).
    #[inline]
    pub fn register_need(&self) -> &[u32] {
        &self.register_need
    }

    /// The minimum slot count for this tree, `⌈log₂ n⌉ + 2`.
    pub fn min_slots(&self) -> usize {
        min_slots_bound(self.tree.n_leaves())
    }

    /// The full-memory slot count, `3(n − 2)`.
    pub fn max_slots(&self) -> usize {
        self.tree.n_inner_dir_edges()
    }

    /// Bytes of the static tables this context holds (for accounting).
    pub fn approx_bytes(&self) -> usize {
        self.pmatrices.len() * 8
            + self.tip_tables.iter().flatten().map(|t| t.approx_bytes()).sum::<usize>()
            + self.tip_codes.iter().map(|c| c.len()).sum::<usize>()
            + self.pattern_weights.len() * 4
            + (self.costs.len() + self.register_need.len()) * 4
    }

    /// Rebuilds the transition matrices and tip table of one edge after a
    /// branch-length change (used by branch-length optimization).
    pub fn refresh_edge(&mut self, e: EdgeId, new_length: f64) {
        self.tree
            .set_edge_length(e, new_length)
            .expect("branch-length optimizer produced an invalid length");
        let pm_len = self.layout.pmatrix_len();
        // Work around borrowck: compute into a scratch block first.
        let mut block = vec![0.0; pm_len];
        self.model.transition_matrices(new_length, &mut block);
        self.pmatrices[e.idx() * pm_len..(e.idx() + 1) * pm_len].copy_from_slice(&block);
        if self.tip_tables[e.idx()].is_some() {
            let masks: Vec<u32> =
                (0..self.alphabet.n_codes()).map(|c| self.alphabet.state_mask(c as u8)).collect();
            self.tip_tables[e.idx()] = Some(TipTable::build(&self.layout, &block, &masks));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::tree::tripod;

    fn small_ctx() -> ReferenceContext {
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let msa = Msa::new(vec![
            Sequence::from_text("A", AlphabetKind::Dna, "ACGT").unwrap(),
            Sequence::from_text("B", AlphabetKind::Dna, "ACGA").unwrap(),
            Sequence::from_text("C", AlphabetKind::Dna, "ACTT").unwrap(),
        ])
        .unwrap();
        let patterns = compress(&msa).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap()
    }

    #[test]
    fn context_builds() {
        let ctx = small_ctx();
        assert_eq!(ctx.layout().states, 4);
        assert_eq!(ctx.layout().patterns, 4);
        assert_eq!(ctx.min_slots(), 4); // ceil(log2 3) = 2, +2
        assert_eq!(ctx.max_slots(), 3);
        assert!(ctx.approx_bytes() > 0);
    }

    #[test]
    fn tip_codes_match_alignment() {
        let ctx = small_ctx();
        let a = ctx.tip_codes(NodeId(0));
        assert_eq!(a.len(), 4);
        // Leaf A's sequence is ACGT.
        assert_eq!(a, &[0, 1, 2, 3]);
    }

    #[test]
    fn pmatrices_are_stochastic() {
        let ctx = small_ctx();
        for e in ctx.tree().all_edges() {
            let pm = ctx.pmatrix(e);
            for i in 0..4 {
                let s: f64 = pm[i * 4..(i + 1) * 4].iter().sum();
                assert!((s - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn missing_taxon_rejected() {
        let tree = tripod(["A", "B", "Z"], [0.1, 0.2, 0.3]).unwrap();
        let msa = Msa::new(vec![
            Sequence::from_text("A", AlphabetKind::Dna, "AC").unwrap(),
            Sequence::from_text("B", AlphabetKind::Dna, "AC").unwrap(),
            Sequence::from_text("C", AlphabetKind::Dna, "AC").unwrap(),
        ])
        .unwrap();
        let patterns = compress(&msa).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let err = ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns)
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingSequence(name) if name == "Z"));
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let tree = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        let msa = Msa::new(vec![
            Sequence::from_text("A", AlphabetKind::Protein, "MK").unwrap(),
            Sequence::from_text("B", AlphabetKind::Protein, "MK").unwrap(),
            Sequence::from_text("C", AlphabetKind::Protein, "MR").unwrap(),
        ])
        .unwrap();
        let patterns = compress(&msa).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let err = ReferenceContext::new(tree, model, AlphabetKind::Protein.alphabet(), &patterns)
            .unwrap_err();
        assert!(matches!(err, EngineError::AlphabetMismatch { .. }));
    }

    #[test]
    fn refresh_edge_updates_pmatrix() {
        let mut ctx = small_ctx();
        let e = EdgeId(0);
        let before = ctx.pmatrix(e).to_vec();
        ctx.refresh_edge(e, 1.5);
        let after = ctx.pmatrix(e);
        assert_ne!(before.as_slice(), after);
        assert_eq!(ctx.tree().edge_length(e), 1.5);
        for i in 0..4 {
            let s: f64 = after[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }
}
