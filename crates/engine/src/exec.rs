//! Executing AMC compute schedules with the likelihood kernels.

use crate::ctx::ReferenceContext;
use phylo_amc::{DepSource, FpaOp, SlotArena, SlotId};
use phylo_kernel::kernels::{update_partials_scratch, Side};
use phylo_kernel::sitepar::update_partials_par;
use phylo_kernel::KernelScratch;

/// Executes one Felsenstein step: reads the dependency slots / tip
/// encodings named by `op` and writes the target slot. `scratch` is only
/// touched by the generic kernel fallback; the store owns one so repeated
/// recomputation allocates nothing.
pub fn execute_op(
    ctx: &ReferenceContext,
    arena: &mut SlotArena,
    op: &FpaOp,
    scratch: &mut KernelScratch,
) {
    execute_op_inner(ctx, arena, op, 1, scratch);
}

/// As [`execute_op`], splitting the pattern range over `n_threads`
/// (the paper's across-site experimental parallelization, Fig. 7).
pub fn execute_op_par(
    ctx: &ReferenceContext,
    arena: &mut SlotArena,
    op: &FpaOp,
    n_threads: usize,
    scratch: &mut KernelScratch,
) {
    execute_op_inner(ctx, arena, op, n_threads, scratch);
}

fn execute_op_inner(
    ctx: &ReferenceContext,
    arena: &mut SlotArena,
    op: &FpaOp,
    n_threads: usize,
    scratch: &mut KernelScratch,
) {
    let layout = *ctx.layout();
    let child_slots: Vec<SlotId> = op
        .deps
        .iter()
        .filter_map(|d| match d {
            DepSource::Slot(s) => Some(*s),
            DepSource::Tip(_) => None,
        })
        .collect();
    let view = arena.compute_view(op.slot, &child_slots);
    let mut next_child = 0usize;
    let mut sides: [Option<Side<'_>>; 2] = [None, None];
    for k in 0..2 {
        let edge = op.dep_edges[k].edge();
        sides[k] = Some(match op.deps[k] {
            DepSource::Tip(node) => Side::Tip {
                table: ctx
                    .tip_table(edge)
                    .expect("tip dependency edge must have a tip table"),
                codes: ctx.tip_codes(node),
            },
            DepSource::Slot(_) => {
                let (clv, scale) = view.children[next_child];
                next_child += 1;
                Side::Clv { clv, scale: Some(scale), pmatrix: ctx.pmatrix(edge) }
            }
        });
    }
    let (left, right) = (sides[0].take().unwrap(), sides[1].take().unwrap());
    if n_threads <= 1 {
        update_partials_scratch(
            &layout,
            left,
            right,
            view.target_clv,
            view.target_scale,
            0..layout.patterns,
            scratch,
        );
    } else {
        update_partials_par(&layout, left, right, view.target_clv, view.target_scale, n_threads);
    }
}

/// Executes a whole schedule in order.
pub fn execute_ops(
    ctx: &ReferenceContext,
    arena: &mut SlotArena,
    ops: &[FpaOp],
    scratch: &mut KernelScratch,
) {
    for op in ops {
        execute_op(ctx, arena, op, scratch);
    }
}

/// Executes a whole schedule with across-site parallelism per step.
pub fn execute_ops_par(
    ctx: &ReferenceContext,
    arena: &mut SlotArena,
    ops: &[FpaOp],
    n_threads: usize,
    scratch: &mut KernelScratch,
) {
    for op in ops {
        execute_op_par(ctx, arena, op, n_threads, scratch);
    }
}
