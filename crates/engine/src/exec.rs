//! Executing AMC compute schedules with the likelihood kernels.
//!
//! Execution is lock-free with respect to the slot tables: the plan that
//! produced the ops holds execution pins on every slot touched, so the
//! mappings cannot change. The only synchronization is the per-slot
//! publish latch — each step waits until its dependency slots' data is
//! published (instant unless a concurrent plan is still computing that
//! very CLV) and publishes its own target when done, which is what lets
//! distinct CLVs be recomputed concurrently by different threads.

use crate::ctx::ReferenceContext;
use crate::error::EngineError;
use phylo_amc::{DepSource, FpaOp, SlotArena, SlotId};
use phylo_kernel::kernels::{update_partials_scratch, Side};
use phylo_kernel::sitepar::SiteParPool;
use phylo_kernel::KernelScratch;

/// Executes one Felsenstein step: reads the dependency slots / tip
/// encodings named by `op` and writes the target slot. `scratch` is only
/// touched by the generic kernel fallback; the store owns a pool of them
/// so repeated recomputation allocates nothing.
///
/// The caller must hold the plan's execution pins (see
/// `phylo_amc::ensure_resident`), which make the op's slot assignments
/// stable; the target slot is published when the step completes.
pub fn execute_op(
    ctx: &ReferenceContext,
    arena: &SlotArena,
    op: &FpaOp,
    scratch: &mut KernelScratch,
) -> Result<(), EngineError> {
    execute_op_inner(ctx, arena, op, None, scratch)
}

/// As [`execute_op`], splitting the pattern range into `n_chunks` ranges
/// executed on the store's persistent [`SiteParPool`] (the paper's
/// across-site experimental parallelization, Fig. 7) — the pool outlives
/// the run, so no threads are spawned per op.
pub fn execute_op_par(
    ctx: &ReferenceContext,
    arena: &SlotArena,
    op: &FpaOp,
    pool: &SiteParPool,
    n_chunks: usize,
    scratch: &mut KernelScratch,
) -> Result<(), EngineError> {
    execute_op_inner(ctx, arena, op, Some((pool, n_chunks)), scratch)
}

/// Per-op kernel timing probes (`phylo-obs`), interned once.
fn op_probes() -> (&'static phylo_obs::Counter, &'static phylo_obs::Histogram) {
    static P: std::sync::OnceLock<(&'static phylo_obs::Counter, &'static phylo_obs::Histogram)> =
        std::sync::OnceLock::new();
    *P.get_or_init(|| (phylo_obs::counter("engine.ops"), phylo_obs::histogram("engine.op_ns")))
}

fn execute_op_inner(
    ctx: &ReferenceContext,
    arena: &SlotArena,
    op: &FpaOp,
    par: Option<(&SiteParPool, usize)>,
    scratch: &mut KernelScratch,
) -> Result<(), EngineError> {
    // Cooperative shutdown: a cancelled run stops between Felsenstein
    // steps, so even a deep recomputation schedule exits with bounded
    // latency. The caller (`ManagedStore`) aborts the schedule, which
    // releases pins and invalidates unpublished targets — the store
    // stays consistent for the partial-result flush.
    if arena.manager().cancel_token().is_cancelled() {
        return Err(EngineError::Amc(phylo_amc::AmcError::Cancelled));
    }
    let (ops_counter, op_hist) = op_probes();
    if let Some(tiers) = arena.tiers() {
        // A demoted copy of this exact CLV answers the step without the
        // kernels or the dependency slots: the op owns its unpublished
        // target exclusively (execution pins + latch down), so the
        // single-slot view is the same exclusive write access the
        // kernel path uses below.
        let view = arena.compute_view(op.slot, &[]);
        if tiers.fetch_into(phylo_amc::ClvKey(op.target.0), view.target_clv, view.target_scale) {
            arena.manager().mark_ready_at(op.slot, op.slot_version);
            return Ok(());
        }
    }
    let sw = phylo_obs::stopwatch();
    let layout = *ctx.layout();
    let child_slots: Vec<SlotId> = op
        .deps
        .iter()
        .filter_map(|d| match d {
            DepSource::Slot(s) => Some(*s),
            DepSource::Tip(_) => None,
        })
        .collect();
    // Dependencies computed earlier in this schedule are already
    // published by their own step; a wait only ever blocks on a CLV a
    // *concurrent* plan is still computing, and that plan's execution is
    // lock-free and infallible, so the wait terminates. The wait is
    // version-snapshotted: if a *later* op of this same schedule remapped
    // the dep's slot (dropping its latch at planning time), the recorded
    // bytes are still valid until that op executes, so the reader must
    // not — and does not — block on a latch only the later op would
    // publish.
    for (k, d) in op.deps.iter().enumerate() {
        if let DepSource::Slot(s) = d {
            arena.manager().wait_ready_at(*s, op.dep_versions[k])?;
        }
    }
    let view = arena.compute_view(op.slot, &child_slots);
    let mut next_child = 0usize;
    let mut sides: [Option<Side<'_>>; 2] = [None, None];
    for k in 0..2 {
        let edge = op.dep_edges[k].edge();
        sides[k] = Some(match op.deps[k] {
            DepSource::Tip(node) => Side::Tip {
                table: ctx.tip_table(edge).expect("tip dependency edge must have a tip table"),
                codes: ctx.tip_codes(node),
            },
            DepSource::Slot(_) => {
                let (clv, scale) = view.children[next_child];
                next_child += 1;
                Side::Clv { clv, scale: Some(scale), pmatrix: ctx.pmatrix(edge) }
            }
        });
    }
    let (left, right) = (sides[0].take().unwrap(), sides[1].take().unwrap());
    // Kernel wall time feeds the tier store's demote-vs-drop cost model
    // (ns per unit of recompute cost) — only measured when tiers exist.
    let tier_t0 = arena.tiers().map(|_| std::time::Instant::now());
    match par {
        None | Some((_, 0..=1)) => update_partials_scratch(
            &layout,
            left,
            right,
            view.target_clv,
            view.target_scale,
            0..layout.patterns,
            scratch,
        ),
        Some((pool, n_chunks)) => {
            pool.update_partials(&layout, left, right, view.target_clv, view.target_scale, n_chunks)
        }
    }
    if let (Some(tiers), Some(t0)) = (arena.tiers(), tier_t0) {
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        tiers.note_recompute(phylo_amc::ClvKey(op.target.0), ns);
    }
    if phylo_faults::fire("engine::kernel_nan") {
        // Simulates a kernel numeric failure (underflow past the scaler
        // thresholds). The op is still this slot's exclusive writer: the
        // slot is unpublished, so a fresh single-slot view is safe.
        arena.compute_view(op.slot, &[]).target_clv[0] = f64::NAN;
    }
    // Generation-aware publish: if a later op of this same schedule
    // already remapped the target slot, this op's bytes are a superseded
    // generation — announcing them as the new mapping's data would hand
    // concurrent plans the wrong CLV. The final-generation op publishes.
    arena.manager().mark_ready_at(op.slot, op.slot_version);
    ops_counter.inc();
    sw.record(op_hist);
    Ok(())
}

/// Executes a whole schedule in order.
pub fn execute_ops(
    ctx: &ReferenceContext,
    arena: &SlotArena,
    ops: &[FpaOp],
    scratch: &mut KernelScratch,
) -> Result<(), EngineError> {
    for op in ops {
        execute_op(ctx, arena, op, scratch)?;
    }
    Ok(())
}

/// Executes a whole schedule with across-site parallelism per step, all
/// steps sharing one persistent pool.
pub fn execute_ops_par(
    ctx: &ReferenceContext,
    arena: &SlotArena,
    ops: &[FpaOp],
    pool: &SiteParPool,
    n_chunks: usize,
    scratch: &mut KernelScratch,
) -> Result<(), EngineError> {
    for op in ops {
        execute_op_par(ctx, arena, op, pool, n_chunks, scratch)?;
    }
    Ok(())
}
